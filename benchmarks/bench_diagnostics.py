"""E8 — constraint diagnostics (Section 5 future work).

Plants jobs with known defects in a 1,000-machine pool and regenerates
the diagnostic table: every defective job must be flagged unsatisfiable
with the *correct clause* identified, and every healthy job must pass.
Also times a full diagnosis (the admin-tool latency).
"""

import time

from repro.classads import ClassAd
from repro.matchmaking import diagnose, is_unsatisfiable
from repro.sim import RngStream

from _report import rows_to_dicts, table, write_bench_json, write_report

POOL_SIZE = 1_000


def build_pool():
    rng = RngStream(42, "diag")
    ads = []
    for i in range(POOL_SIZE):
        ad = ClassAd(
            {
                "Type": "Machine",
                "Name": f"m{i}",
                "Arch": rng.choice(["INTEL", "SPARC"]),
                "OpSys": rng.choice(["SOLARIS251", "LINUX"]),
                "Memory": rng.choice([32, 64, 128]),
                "Disk": rng.randint(50_000, 500_000),
            }
        )
        ad.set_expr("Constraint", "true")
        ads.append(ad)
    return ads


def job(constraint, job_id):
    ad = ClassAd({"Type": "Job", "Owner": "alice", "JobId": job_id, "Memory": 31})
    ad.set_expr("Constraint", constraint)
    return ad


BROKEN = [
    ("bad arch", 'other.Type == "Machine" && other.Arch == "VAX"', 'other.Arch == "VAX"'),
    ("bad opsys", 'other.Type == "Machine" && other.OpSys == "VMS"', 'other.OpSys == "VMS"'),
    ("huge memory", 'other.Type == "Machine" && other.Memory >= 4096', "other.Memory >= 4096"),
    ("huge disk", 'other.Type == "Machine" && other.Disk >= 10000000', "other.Disk >= 10000000"),
    ("missing attr", 'other.Type == "Machine" && other.GPUs >= 1', "other.GPUs >= 1"),
]

HEALTHY = [
    ("intel job", 'other.Type == "Machine" && other.Arch == "INTEL" && other.Memory >= self.Memory'),
    ("any machine", 'other.Type == "Machine"'),
    ("big memory (rare but present)", 'other.Type == "Machine" && other.Memory >= 128'),
]


def test_diagnostic_table(benchmark):
    pool = build_pool()

    def run_all():
        rows = []
        for i, (label, constraint, bad_clause) in enumerate(BROKEN):
            report = diagnose(job(constraint, 100 + i), pool)
            flagged = [c.expression for c in report.unsatisfiable_clauses]
            assert report.never_matches, label
            assert bad_clause in flagged, (label, flagged)
            rows.append((label, "UNSATISFIABLE", flagged[0]))
        for i, (label, constraint) in enumerate(HEALTHY):
            report = diagnose(job(constraint, 200 + i), pool)
            assert not report.never_matches, label
            rows.append((label, f"{report.bilateral_matches} matches", "-"))
        return rows

    start = time.perf_counter()
    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    headers = ["planted job", "verdict", "failing clause"]
    write_report("E8_diagnostics", table(headers, rows))
    write_bench_json(
        "E8_diagnostics",
        wall_time_s=wall,
        throughput={"diagnoses_per_s": len(rows) / wall},
        data=rows_to_dicts(headers, rows),
    )
    assert len(rows) == len(BROKEN) + len(HEALTHY)


def test_single_diagnosis_latency(benchmark):
    pool = build_pool()
    request = job(BROKEN[0][1], 999)
    report = benchmark.pedantic(diagnose, args=(request, pool), rounds=3, iterations=1)
    assert report.never_matches


def test_unsatisfiable_check_latency(benchmark):
    pool = build_pool()
    request = job(HEALTHY[0][1], 998)
    assert not benchmark.pedantic(
        is_unsatisfiable, args=(request, pool), rounds=3, iterations=1
    )
