"""PR 7 — the multi-core scoring tier: worker sweep + stage anatomy.

Two questions this benchmark answers with data:

* **How does cycle time scale with worker count?**  The sweep runs the
  same batched cycle at 1, 2, 4, ... workers (capped at the host's
  core count) against the serial baseline and reports the speedup per
  configuration — Amdahl's view of the cycle, since the commit stage
  stays serial by design.
* **Where does the parallel cycle spend its time?**  The per-stage
  breakdown (serialize / IPC / score / merge / commit) shows what the
  fallback threshold trades: below it, (serialize + IPC) would exceed
  the in-process scoring it displaces.

Run as a script for the CI smoke benchmark::

    python benchmarks/bench_parallel.py --smoke [--out DIR]

which executes a reduced sweep and writes ``BENCH_PAR_parallel.json``.
The smoke mode asserts only *correctness-adjacent* properties (identical
assignments, fallback accounting); the >= 1.5x speedup bar lives in
``bench_scalability.py`` where the E6 baselines are, and only on hosts
with >= 4 cores.
"""

import argparse
import os
import sys
import time

if __name__ == "__main__":
    _src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    if os.path.isdir(_src) and os.path.abspath(_src) not in map(os.path.abspath, sys.path):
        sys.path.insert(0, os.path.abspath(_src))
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_scalability import build_pool, build_requests

from repro.matchmaking import CycleStats, batching_enabled, negotiation_cycle, set_batching
from repro.matchmaking import parallel as par
from repro.sim import RngStream

from _report import rows_to_dicts, table, write_bench_json, write_report

HEADERS = ["workers", "cycle", "speedup", "chunks", "pairs", "serialize",
           "ipc", "score", "merge", "commit"]


def _timed_cycle(requests, providers, parallel):
    stats = CycleStats()
    start = time.perf_counter()
    assignments = negotiation_cycle(
        requests, providers, stats=stats, parallel=parallel
    )
    return assignments, time.perf_counter() - start, stats


def worker_sweep(n_machines, n_requests, repeats, worker_counts):
    """One row per configuration: serial baseline, then each pool size.

    Every parallel configuration is interleaved with an adjacent serial
    run and must reproduce its assignments exactly.
    """
    rng = RngStream(n_machines, "sweep")
    providers = build_pool(n_machines, rng.fork("machines"))
    requests = build_requests(n_requests, rng.fork("jobs"), distinct=12)
    batching_before = batching_enabled()
    workers_before = par.scoring_workers()
    threshold_before = par.pair_threshold()
    rows = []
    try:
        set_batching(True)
        par.set_pair_threshold(0)  # the sweep measures the tier, not the bar
        _, serial_best, _ = _timed_cycle(requests, providers, False)
        reference = None
        for _ in range(repeats - 1):
            assignments, elapsed, _ = _timed_cycle(requests, providers, False)
            serial_best = min(serial_best, elapsed)
            reference = [
                (a.submitter, a.provider.evaluate("Name")) for a in assignments
            ]
        rows.append((0, f"{1000 * serial_best:.1f}ms", "1.00x", 0, 0,
                     "-", "-", "-", "-", f"{1000 * serial_best:.1f}ms"))
        for workers in worker_counts:
            par.set_scoring_workers(workers)
            _timed_cycle(requests, providers, True)  # warm pool + caches
            pool = par.scoring_pool()
            best = float("inf")
            best_stages = None
            stats = None
            for _ in range(repeats):
                pool.reset_stage_seconds()
                assignments, elapsed, stats = _timed_cycle(
                    requests, providers, True
                )
                got = [
                    (a.submitter, a.provider.evaluate("Name"))
                    for a in assignments
                ]
                if reference is not None:
                    assert got == reference, (
                        f"{workers}-worker assignments diverged from serial"
                    )
                if elapsed < best:
                    best = elapsed
                    best_stages = dict(pool.stage_seconds)
            parent = (best_stages["serialize"] + best_stages["ipc"]
                      + best_stages["merge"])
            commit = max(0.0, best - parent - best_stages["score"])
            rows.append((
                workers,
                f"{1000 * best:.1f}ms",
                f"{serial_best / best:.2f}x",
                stats.parallel_chunks,
                stats.parallel_pairs_scored,
                f"{1000 * best_stages['serialize']:.1f}ms",
                f"{1000 * best_stages['ipc']:.1f}ms",
                f"{1000 * best_stages['score']:.1f}ms",
                f"{1000 * best_stages['merge']:.1f}ms",
                f"{1000 * commit:.1f}ms",
            ))
            par.shutdown_scoring_pool()
    finally:
        set_batching(batching_before)
        par.set_pair_threshold(threshold_before)
        par.set_scoring_workers(workers_before)
        par.shutdown_scoring_pool()
    return rows, serial_best


def threshold_anatomy(n_machines, n_requests, workers=2):
    """Fallback accounting at three threshold positions: never fan out,
    always fan out, and the shipped default."""
    rng = RngStream(n_machines, "threshold")
    providers = build_pool(n_machines, rng.fork("machines"))
    requests = build_requests(n_requests, rng.fork("jobs"), distinct=12)
    batching_before = batching_enabled()
    workers_before = par.scoring_workers()
    threshold_before = par.pair_threshold()
    out = {}
    try:
        set_batching(True)
        par.set_scoring_workers(workers)
        for label, threshold in (
            ("always", 0),
            ("default", par.DEFAULT_PAIR_THRESHOLD),
            ("never", 10 * n_machines + 1),
        ):
            par.set_pair_threshold(threshold)
            _, _, stats = _timed_cycle(requests, providers, True)
            out[label] = {
                "threshold": threshold,
                "pairs_scored": stats.parallel_pairs_scored,
                "chunks": stats.parallel_chunks,
                "fallbacks": stats.parallel_fallbacks,
            }
    finally:
        set_batching(batching_before)
        par.set_pair_threshold(threshold_before)
        par.set_scoring_workers(workers_before)
        par.shutdown_scoring_pool()
    return out


def run_smoke(out_dir=None, machines=1500, requests=100, repeats=3):
    """The CI smoke benchmark: reduced sweep + threshold anatomy."""
    cores = os.cpu_count() or 1
    worker_counts = sorted({1, 2, min(4, max(1, cores))})
    start = time.perf_counter()
    rows, serial_best = worker_sweep(machines, requests, repeats, worker_counts)
    anatomy = threshold_anatomy(machines, requests)
    wall = time.perf_counter() - start

    # Fallback accounting must be exact: "never" scores nothing in
    # workers and counts every class; "always" scores everything.
    assert anatomy["never"]["pairs_scored"] == 0
    assert anatomy["never"]["fallbacks"] > 0
    assert anatomy["always"]["pairs_scored"] > 0
    assert anatomy["always"]["fallbacks"] == 0

    report = table(HEADERS, rows) + (
        "\n\nthreshold anatomy (workers=2):\n"
        + "\n".join(
            f"  {label:8s} (>= {info['threshold']:>6d} pairs):"
            f" {info['pairs_scored']:>7d} pairs in workers,"
            f" {info['fallbacks']:>3d} serial fallbacks"
            for label, info in anatomy.items()
        )
        + f"\n\ncores on this host: {cores} (speedup bars live in"
        " bench_scalability.py and only apply at >= 4 cores)"
    )
    write_report("PAR_parallel_smoke", report, out_dir=out_dir)
    throughput = {"serial_cycle_s": serial_best}
    for row in rows[1:]:
        throughput[f"speedup_workers_{row[0]}"] = float(row[2].rstrip("x"))
    return write_bench_json(
        "PAR_parallel",
        wall_time_s=wall,
        throughput=throughput,
        data=rows_to_dicts(HEADERS, rows),
        extra={"mode": "smoke", "repeats": repeats, "cores": cores,
               "threshold_anatomy": anatomy},
        out_dir=out_dir,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="run the reduced CI smoke sweep")
    parser.add_argument("--out", default=None,
                        help="results directory (default: benchmarks/results)")
    parser.add_argument("--machines", type=int, default=1500)
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("only --smoke mode is supported as a script")
    run_smoke(out_dir=args.out, machines=args.machines,
              requests=args.requests, repeats=args.repeats)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
