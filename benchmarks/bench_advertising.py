"""PR 8 — fingerprinted refresh advertising: steady-state ingest cost.

In steady state almost every advertisement re-states an unchanged ad;
the refresh fast path replaces those re-advertisements with a compact
``Refresh`` (name, sequence, fingerprint, volatile values) that the
collector honours by renewing the soft-state lease in place — no
validation, no store replacement, no index delta.  This benchmark
measures exactly that trade at the collector, over a pool of Figure
1-shaped machines re-advertising every period:

* wall time to ingest one steady-state advertising period, full-ad
  path vs refresh path (``advertising_ingest_speedup``);
* ads validated+inserted per period (the work the fast path skips);
* bytes on wire per period (the ``net.bytes_sent`` gauge).

Run as a script for the CI smoke benchmark::

    python benchmarks/bench_advertising.py --smoke [--out DIR]

which executes a reduced pool without pytest and writes
``BENCH_ADV_advertising.json`` for the regression gate
(``check_regression.py`` holds ``advertising_ingest_speedup``).
"""

import argparse
import os
import sys
import time

if __name__ == "__main__":
    # Allow `python benchmarks/bench_advertising.py` from a bare checkout.
    _src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    if os.path.isdir(_src) and os.path.abspath(_src) not in map(os.path.abspath, sys.path):
        sys.path.insert(0, os.path.abspath(_src))

from repro import obs
from repro.classads import fingerprint
from repro.condor.collector import Collector
from repro.paper import figure1_machine
from repro.protocols import VOLATILE_MACHINE_ATTRS, Advertisement, Refresh
from repro.sim import Network, RngStream, Simulator, Trace

from _report import table, write_bench_json, write_report

PERIOD_S = 300.0
LIFETIME_S = 3 * PERIOD_S


def build_ads(n):
    """*n* Figure 1-shaped machine ads with a little hardware variety."""
    base = figure1_machine()
    ads = []
    for i in range(n):
        ad = base.copy()
        ad["Name"] = f"m{i}"
        ad["ContactAddress"] = f"startd@m{i}"
        ad["Memory"] = 32 << (i % 3)
        ad["Mips"] = 100 + (i % 5) * 25
        ads.append(ad)
    return ads


def _volatile_for(period, i):
    """Synthetic per-period owner/clock state (changes every period)."""
    return (
        ("DayTime", int(36107 + period * PERIOD_S) % 86400),
        ("KeyboardIdle", 1432 + 60 * period + i % 7),
        ("LoadAvg", 0.01 * ((period + i) % 30)),
    )


def run_mode(refresh, machines, periods):
    """One collector ingesting *periods* steady-state re-advertisements
    of *machines* ads — as Refreshes (fast path) or full Advertisements
    (``REPRO_NO_REFRESH=1`` wire behaviour).  Returns the measured
    figures; only the send-and-deliver loop is timed (sender-side ad
    construction happens outside the clock)."""
    sim = Simulator()
    net = Network(sim, rng=RngStream(7), latency=0.0)
    collector = Collector(sim, net, trace=Trace(enabled=False))
    collector.provider_index()  # keep the maintained index live, as a pool does
    ads = build_ads(machines)
    fps = [fingerprint(ad, exclude=VOLATILE_MACHINE_ATTRS) for ad in ads]

    # Initial registration is a full advertisement in both modes.
    for i, ad in enumerate(ads):
        net.send(
            Advertisement(
                sender=f"startd@m{i}",
                recipient=collector.address,
                name=f"machine.m{i}",
                ad=ad,
                lifetime=LIFETIME_S,
                sequence=1,
                fingerprint=fps[i] if refresh else None,
            )
        )
    sim.run_until(1.0)
    assert collector.ads_admitted == machines, "warm-up registration failed"

    admitted_before = collector.ads_admitted
    bytes_before = net.stats.bytes_sent
    wall = 0.0
    for period in range(1, periods + 1):
        t = period * PERIOD_S
        sequence = period + 1
        messages = []
        if refresh:
            for i in range(machines):
                messages.append(
                    Refresh(
                        sender=f"startd@m{i}",
                        recipient=collector.address,
                        name=f"machine.m{i}",
                        fingerprint=fps[i],
                        lifetime=LIFETIME_S,
                        sequence=sequence,
                        volatile=_volatile_for(period, i),
                    )
                )
        else:
            for i in range(machines):
                ad = ads[i].copy()
                for attr, value in _volatile_for(period, i):
                    ad[attr] = value
                messages.append(
                    Advertisement(
                        sender=f"startd@m{i}",
                        recipient=collector.address,
                        name=f"machine.m{i}",
                        ad=ad,
                        lifetime=LIFETIME_S,
                        sequence=sequence,
                    )
                )
        start = time.perf_counter()
        for message in messages:
            net.send(message)
        sim.run_until(t + 1.0)
        wall += time.perf_counter() - start

    assert len(collector.store) == machines, "steady state lost ads"
    return {
        "mode": "refresh" if refresh else "full",
        "machines": machines,
        "periods": periods,
        "ingest_s": wall,
        "ingest_s_per_period": wall / periods,
        "ads_per_s": machines * periods / wall,
        "validated": collector.ads_admitted - admitted_before,
        "bytes_on_wire": net.stats.bytes_sent - bytes_before,
    }


def sweep(machines, periods, repeats):
    """Best-of-*repeats* for both modes (counts are deterministic)."""
    full = min(
        (run_mode(False, machines, periods) for _ in range(repeats)),
        key=lambda r: r["ingest_s"],
    )
    refresh = min(
        (run_mode(True, machines, periods) for _ in range(repeats)),
        key=lambda r: r["ingest_s"],
    )
    return full, refresh


def figures(full, refresh):
    return {
        "ingest_s_full": full["ingest_s_per_period"],
        "ingest_s_refresh": refresh["ingest_s_per_period"],
        "advertising_ingest_speedup": full["ingest_s"] / refresh["ingest_s"],
        "ads_validated_full": full["validated"],
        "ads_validated_refresh": refresh["validated"],
        "validated_ratio": full["validated"] / max(refresh["validated"], 1),
        "bytes_per_period_full": full["bytes_on_wire"] / full["periods"],
        "bytes_per_period_refresh": refresh["bytes_on_wire"] / refresh["periods"],
        "bytes_reduction": full["bytes_on_wire"] / refresh["bytes_on_wire"],
    }


HEADERS = [
    "mode",
    "machines",
    "periods",
    "ingest s/period",
    "ads/s",
    "validated",
    "bytes/period",
]


def _rows(full, refresh):
    return [
        (
            r["mode"],
            r["machines"],
            r["periods"],
            f"{r['ingest_s_per_period']:.4f}",
            f"{r['ads_per_s']:.0f}",
            r["validated"],
            f"{r['bytes_on_wire'] / r['periods']:.0f}",
        )
        for r in (full, refresh)
    ]


def _assert_bars(fig, machines):
    # The acceptance bars from the issue; held only at meaningful scale
    # (tiny pools measure the ratio of two trivially small numbers).
    assert fig["validated_ratio"] >= 5.0, (
        f"refresh path validates 1/{fig['validated_ratio']:.1f} of the"
        " full path's ads; the acceptance bar is 1/5"
    )
    assert fig["bytes_reduction"] > 1.0, (
        f"refreshes are not smaller on the wire ({fig['bytes_reduction']:.2f}x)"
    )
    if machines >= 500:
        assert fig["advertising_ingest_speedup"] >= 2.0, (
            f"steady-state ingest is only {fig['advertising_ingest_speedup']:.2f}x"
            " faster under refresh; the acceptance bar is 2x"
        )


def _run(machines, periods, repeats, out_dir=None, label="smoke"):
    obs.disable()
    obs.reset()
    obs.enable()  # metrics on: the bytes-on-wire gauge needs them
    try:
        start = time.perf_counter()
        full, refresh = sweep(machines, periods, repeats)
        wall = time.perf_counter() - start
        # The counter accumulates across the repeated runs; each run
        # renews the same number of leases, so per-run is an exact share.
        refresh_hits = obs.metrics.get("collector.refresh_hits").total // repeats
    finally:
        obs.disable()
    fig = figures(full, refresh)
    report = table(HEADERS, _rows(full, refresh)) + (
        f"\n\nsteady state ({machines} machines, {periods} periods,"
        f" best of {repeats}):"
        f"\n  full ads : {1000 * fig['ingest_s_full']:.1f}ms/period,"
        f" {full['validated']} ads validated+inserted"
        f"\n  refreshes: {1000 * fig['ingest_s_refresh']:.1f}ms/period,"
        f" {refresh['validated']} ads validated+inserted"
        f" ({refresh_hits} lease renewals in place)"
        f"\n  ingest speedup      : {fig['advertising_ingest_speedup']:.2f}x"
        f"\n  validated/inserted  : 1/{fig['validated_ratio']:.0f}"
        f"\n  bytes on wire       : 1/{fig['bytes_reduction']:.1f}"
        f" ({fig['bytes_per_period_refresh']:.0f} vs"
        f" {fig['bytes_per_period_full']:.0f} per period)"
    )
    write_report(f"ADV_advertising_{label}", report, out_dir=out_dir)
    path = write_bench_json(
        "ADV_advertising",
        wall_time_s=wall,
        throughput=fig,
        data=[full, refresh],
        extra={"mode": label, "repeats": repeats},
        out_dir=out_dir,
    )
    _assert_bars(fig, machines)
    return path, fig


def run_smoke(out_dir=None, machines=1000, periods=2, repeats=3):
    """The CI smoke benchmark: a reduced pool, same bars."""
    return _run(machines, periods, repeats, out_dir=out_dir, label="smoke")


# -- pytest entry point (full scale) ----------------------------------------


def test_steady_state_ingest(benchmark):
    """The issue's headline figure at 5000 machines: >= 2x faster ingest
    and >= 5x fewer validated/inserted ads with the fast path on."""

    def run():
        return _run(5000, 3, 2, label="full")

    path, fig = benchmark.pedantic(run, rounds=1, iterations=1)
    assert os.path.exists(path)
    assert fig["advertising_ingest_speedup"] >= 2.0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced CI run")
    parser.add_argument("--out", default=None, help="artifact directory")
    parser.add_argument("--machines", type=int, default=None)
    parser.add_argument("--periods", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args()
    if args.smoke:
        kwargs = {}
        if args.machines is not None:
            kwargs["machines"] = args.machines
        if args.periods is not None:
            kwargs["periods"] = args.periods
        if args.repeats is not None:
            kwargs["repeats"] = args.repeats
        run_smoke(out_dir=args.out, **kwargs)
    else:
        _run(
            args.machines or 5000,
            args.periods or 3,
            args.repeats or 2,
            out_dir=args.out,
            label="full",
        )
