"""F2 — regenerate Figure 2's job-requirement and ranking behaviour.

The Figure 2 job ad selects machines by platform/disk/memory and ranks
them by ``KFlops/1E3 + other.Memory/32``.  We sweep a synthetic machine
population, regenerate the selection/ranking table, and time the
best-match operation over a realistic candidate set.
"""

import time

from repro.classads import is_true, rank_value
from repro.matchmaking import best_match, rank_candidates
from repro.paper import figure1_machine, figure2_job

from _report import rows_to_dicts, table, write_bench_json, write_report


def machine_variants():
    """Leonardo plus systematic perturbations of each requirement."""
    variants = []

    def variant(label, **overrides):
        ad = figure1_machine()
        for key, value in overrides.items():
            ad[key] = value
        ad["Name"] = label
        variants.append((label, ad))

    variant("leonardo (baseline)")
    variant("sparc-box", Arch="SPARC")
    variant("linux-box", OpSys="LINUX")
    variant("small-disk", Disk=5_000)
    variant("tight-memory", Memory=30)
    variant("exact-memory", Memory=31)
    variant("big-fast", Memory=512, KFlops=80_000)
    variant("slow-but-fat", Memory=512, KFlops=2_000)
    return variants


def selection_table():
    job = figure2_job()
    rows = []
    for label, machine in machine_variants():
        ok = is_true(job.evaluate("Constraint", other=machine))
        rank = rank_value(job.evaluate("Rank", other=machine)) if ok else float("nan")
        rows.append((label, "match" if ok else "no", round(rank, 3) if ok else "-"))
    return rows


def test_figure2_selection_table(benchmark):
    start = time.perf_counter()
    rows = benchmark(selection_table)
    wall = time.perf_counter() - start
    verdicts = {label: verdict for label, verdict, _ in rows}
    assert verdicts["leonardo (baseline)"] == "match"
    assert verdicts["sparc-box"] == "no"
    assert verdicts["linux-box"] == "no"
    assert verdicts["small-disk"] == "no"
    assert verdicts["tight-memory"] == "no"
    assert verdicts["exact-memory"] == "match"
    headers = ["machine variant", "verdict", "job Rank"]
    write_report("F2_figure2_job", table(headers, rows))
    write_bench_json(
        "F2_figure2_job", wall_time_s=wall, data=rows_to_dicts(headers, rows)
    )


def test_figure2_rank_orders_machines(benchmark):
    job = figure2_job()
    machines = [ad for _, ad in machine_variants()]

    def ordered():
        return [
            m.provider.evaluate("Name") for m in rank_candidates(job, machines)
        ]

    names = benchmark(ordered)
    assert names[0] == "big-fast"  # 80 + 16 beats everyone


def test_figure2_best_match_over_pool(benchmark):
    job = figure2_job()
    machines = []
    for i in range(200):
        ad = figure1_machine()
        ad["Name"] = f"m{i}"
        ad["KFlops"] = 1_000 + 37 * i
        ad["Memory"] = 32 + (i % 8) * 32
        machines.append(ad)
    result = benchmark(best_match, job, machines)
    assert result is not None
    assert result.provider.evaluate("KFlops") == 1_000 + 37 * 199
