#!/usr/bin/env python3
"""Profile a negotiation cycle — the measure-before-optimizing workflow.

Not a test: run it directly to see where cycle time goes.

    python benchmarks/profile_negotiation.py [pool_size] [--indexed]

Findings that shaped the code (recorded here so future optimization
starts from data, not theory — "no optimization without measuring"):

* >90 % of a naive cycle is classad evaluation (`_eval` and the operator
  helpers), not the matching loop itself — so the wins come from
  *evaluating less* (the S7 index, S21 grouping), not from micro-tuning
  the evaluator.
* Within evaluation, attribute resolution (`_eval_ref`) dominates; its
  lexical-scope walk is already a flat loop over a tiny list.
* `ProviderIndex` construction is linear and amortizes over one cycle's
  requests; rebuild-per-cycle is fine at 10^3 machines (see E6).
"""

import cProfile
import pstats
import sys

sys.path.insert(0, "benchmarks")

from bench_scalability import build_pool, build_requests, run_cycle  # noqa: E402

from repro.sim import RngStream  # noqa: E402


def main() -> None:
    size = 1_000
    indexed = False
    for arg in sys.argv[1:]:
        if arg == "--indexed":
            indexed = True
        else:
            size = int(arg)
    rng = RngStream(1, "profile")
    providers = build_pool(size, rng.fork("machines"))
    requests = build_requests(100, rng.fork("jobs"))

    profiler = cProfile.Profile()
    profiler.enable()
    assignments, elapsed, stats = run_cycle(providers, requests, indexed)
    profiler.disable()

    print(
        f"pool={size} indexed={indexed}: {len(assignments)} matches "
        f"in {elapsed * 1000:.0f}ms"
    )
    report = pstats.Stats(profiler)
    report.sort_stats("cumulative")
    report.print_stats(18)


if __name__ == "__main__":
    main()
