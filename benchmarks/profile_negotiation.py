#!/usr/bin/env python3
"""Profile a negotiation cycle — the measure-before-optimizing workflow.

Not a test: run it directly to see where cycle time goes.

    python benchmarks/profile_negotiation.py [pool_size] [--indexed]
    python benchmarks/profile_negotiation.py 5000 --workers 4
    python benchmarks/profile_negotiation.py 5000 --workers 4 --no-parallel

With ``--workers N`` the run reports the parallel tier's per-stage
breakdown (serialize / IPC / score / merge / commit) so the
``REPRO_PARALLEL_THRESHOLD`` fallback bar can be tuned from data: the
threshold should sit where (serialize + IPC) stops paying for itself
against the in-process scoring time it displaces.

Findings that shaped the code (recorded here so future optimization
starts from data, not theory — "no optimization without measuring"):

* >90 % of a naive cycle is classad evaluation (`_eval` and the operator
  helpers), not the matching loop itself — so the wins come from
  *evaluating less* (the S7 index, S21 grouping), not from micro-tuning
  the evaluator.
* Within evaluation, attribute resolution (`_eval_ref`) dominates; its
  lexical-scope walk is already a flat loop over a tiny list.
* `ProviderIndex` construction is linear and amortizes over one cycle's
  requests; rebuild-per-cycle is fine at 10^3 machines (see E6).
* In a 4-worker cycle the parent's residual cost is serialize + IPC +
  commit; the first two are per-cycle-constant once the chunk-signature
  skip warms up, which is why the pool must persist across cycles.
"""

import argparse
import cProfile
import pstats
import sys
import time

sys.path.insert(0, "benchmarks")

from bench_scalability import build_pool, build_requests, run_cycle  # noqa: E402

from repro.matchmaking import parallel as par  # noqa: E402
from repro.sim import RngStream  # noqa: E402


def main() -> None:
    parser = argparse.ArgumentParser(description="profile one negotiation cycle")
    parser.add_argument("size", nargs="?", type=int, default=1_000)
    parser.add_argument("--indexed", action="store_true")
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="fan candidate scoring out to N worker processes",
    )
    parser.add_argument(
        "--no-parallel", action="store_true",
        help="force the kill-switch even when --workers is set",
    )
    parser.add_argument(
        "--threshold", type=int, default=None, metavar="PAIRS",
        help="override the serial-fallback pair threshold",
    )
    args = parser.parse_args()

    rng = RngStream(1, "profile")
    providers = build_pool(args.size, rng.fork("machines"))
    requests = build_requests(100, rng.fork("jobs"))

    if args.workers:
        par.set_scoring_workers(args.workers)
    if args.threshold is not None:
        par.set_pair_threshold(args.threshold)
    if args.no_parallel:
        par.set_parallelism(False)

    pool = None
    if args.workers and not args.no_parallel:
        # Warm cycle: spawn the pool, upload the chunks, fill the
        # per-worker compile caches — then profile the steady state.
        run_cycle(providers, requests, args.indexed)
        pool = par.scoring_pool()
        if pool is not None:
            pool.reset_stage_seconds()

    profiler = cProfile.Profile()
    profiler.enable()
    started = time.perf_counter()
    assignments, elapsed, stats = run_cycle(providers, requests, args.indexed)
    wall = time.perf_counter() - started
    profiler.disable()

    print(
        f"pool={args.size} indexed={args.indexed} workers={args.workers}"
        f"{' (kill-switch)' if args.no_parallel else ''}:"
        f" {len(assignments)} matches in {elapsed * 1000:.0f}ms"
    )
    if pool is not None:
        # Commit is everything the parent did that was not the parallel
        # tier: sorting, the taken-set walk, preemption, fair share.
        stages = dict(pool.stage_seconds)
        parent_stages = stages["serialize"] + stages["ipc"] + stages["merge"]
        commit = max(0.0, wall - parent_stages - stages["score"])
        print(
            f"  stage breakdown: serialize {1000 * stages['serialize']:.1f}ms"
            f" | ipc {1000 * stages['ipc']:.1f}ms"
            f" | score {1000 * stages['score']:.1f}ms (in-worker)"
            f" | merge {1000 * stages['merge']:.1f}ms"
            f" | commit {1000 * commit:.1f}ms"
        )
        print(
            f"  engaged: {stats.parallel_chunks} chunks,"
            f" {stats.parallel_pairs_scored} pairs scored,"
            f" {stats.parallel_fallbacks} serial fallbacks"
            f" (threshold {par.pair_threshold()} pairs)"
        )
    report = pstats.Stats(profiler)
    report.sort_stats("cumulative")
    report.print_stats(18)
    par.shutdown_scoring_pool()


if __name__ == "__main__":
    main()
