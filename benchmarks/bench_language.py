"""P1 — classad language micro-benchmarks.

Engineering baseline for E6: how expensive are parsing, evaluation, and
printing of realistic (Figure 1/2-sized) ads?  The negotiation-cycle
benchmarks divide through by these numbers to separate algorithmic from
constant-factor effects.
"""

from repro.classads import ClassAd, evaluate, parse, unparse_classad
from repro.paper import FIGURE1_MACHINE, FIGURE2_JOB, figure1_machine, figure2_job

from _report import rows_to_dicts, table, write_bench_json, write_report


def test_parse_figure1(benchmark):
    ad = benchmark(ClassAd.parse, FIGURE1_MACHINE)
    assert len(ad) == 18


def test_parse_figure2(benchmark):
    ad = benchmark(ClassAd.parse, FIGURE2_JOB)
    assert len(ad) == 12


def test_evaluate_figure1_constraint(benchmark):
    machine = figure1_machine()
    job = figure2_job()
    result = benchmark(machine.evaluate, "Constraint", job)
    assert result is True


def test_evaluate_figure2_rank(benchmark):
    machine = figure1_machine()
    job = figure2_job()
    value = benchmark(job.evaluate, "Rank", machine)
    assert round(value, 3) == 23.893


def test_full_bilateral_match(benchmark):
    from repro.matchmaking import constraints_satisfied

    machine = figure1_machine()
    job = figure2_job()
    assert benchmark(constraints_satisfied, job, machine)


def test_unparse_figure1(benchmark):
    machine = figure1_machine()
    text = benchmark(unparse_classad, machine)
    assert "leonardo" in text


def test_simple_expression_evaluation(benchmark):
    expr = parse("(2 + 3) * 4 >= 10 && true")
    assert benchmark(evaluate, expr) is True


def test_language_report(benchmark):
    """Summary row counts for EXPERIMENTS.md (P1)."""
    import time

    machine, job = figure1_machine(), figure2_job()
    rows = []
    for label, fn in [
        ("parse Figure 1", lambda: ClassAd.parse(FIGURE1_MACHINE)),
        ("machine Constraint vs job", lambda: machine.evaluate("Constraint", other=job)),
        ("job Constraint vs machine", lambda: job.evaluate("Constraint", other=machine)),
        ("job Rank of machine", lambda: job.evaluate("Rank", other=machine)),
    ]:
        start = time.perf_counter()
        n = 0
        while time.perf_counter() - start < 0.2:
            fn()
            n += 1
        per_call = (time.perf_counter() - start) / n * 1e6
        rows.append((label, round(per_call, 1)))
    headers = ["operation", "us_per_call"]
    write_report("P1_language", table(["operation", "µs/call"], rows))
    write_bench_json(
        "P1_language",
        throughput={
            "constraint_evals_per_s": 1e6 / rows[1][1] if rows[1][1] else 0.0
        },
        data=rows_to_dicts(headers, rows),
    )
    benchmark.extra_info["rows"] = rows
    benchmark(machine.evaluate, "Constraint", job)
