"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates its experiment's table/series and persists
it under ``benchmarks/results/`` (in addition to attaching the rows to
pytest-benchmark's ``extra_info``), so a plain
``pytest benchmarks/ --benchmark-only`` leaves the reproduced
"figures" on disk for EXPERIMENTS.md to cite.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_report(name: str, text: str) -> str:
    """Persist *text* under benchmarks/results/<name>.txt and echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text.rstrip() + "\n")
    print(f"\n--- {name} ---")
    print(text)
    return path


def table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    rendered_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered_rows.append(
            [f"{v:.3f}" if isinstance(v, float) else str(v) for v in row]
        )
    widths = [
        max(len(r[i]) for r in rendered_rows) for i in range(len(headers))
    ]
    lines = []
    for i, row in enumerate(rendered_rows):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
