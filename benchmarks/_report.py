"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates its experiment's table/series and persists
it under a results directory (in addition to attaching the rows to
pytest-benchmark's ``extra_info``), so a plain
``pytest benchmarks/ --benchmark-only`` leaves the reproduced
"figures" on disk for EXPERIMENTS.md to cite.

Two artifact formats are written per benchmark:

* ``<name>.txt`` — the human-readable table (:func:`write_report`);
* ``BENCH_<name>.json`` — the machine-readable ``repro-bench/1``
  record (:func:`write_bench_json`): wall time, throughput, the rows
  as structured data, and a snapshot of the observability registry.
  CI parses and archives these; docs/OBSERVABILITY.md documents the
  schema.

The output directory is, in precedence order: the ``results_dir``
argument, the ``REPRO_BENCH_RESULTS_DIR`` environment variable, then
``benchmarks/results/`` next to this file — so CI can redirect
artifacts without touching the benchmarks.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

BENCH_SCHEMA = "repro-bench/1"


def results_dir(override: Optional[str] = None) -> str:
    """Resolve (and create) the artifact directory."""
    path = override or os.environ.get("REPRO_BENCH_RESULTS_DIR") or RESULTS_DIR
    os.makedirs(path, exist_ok=True)
    return path


def write_report(name: str, text: str, out_dir: Optional[str] = None) -> str:
    """Persist *text* under <results>/<name>.txt and echo it."""
    path = os.path.join(results_dir(out_dir), f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text.rstrip() + "\n")
    print(f"\n--- {name} ---")
    print(text)
    return path


def bench_record(
    name: str,
    *,
    wall_time_s: Optional[float] = None,
    throughput: Optional[Dict[str, float]] = None,
    data: Optional[Sequence[Dict[str, Any]]] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble one ``repro-bench/1`` record (without writing it).

    The observability registry is always snapshotted; when the run had
    metrics disabled the snapshot simply carries empty sample lists.
    """
    from repro import obs

    record: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "created_unix": time.time(),
        "wall_time_s": wall_time_s,
        "throughput": throughput or {},
        "metrics": obs.export.snapshot()["metrics"],
        "data": list(data) if data is not None else [],
    }
    if extra:
        record.update(extra)
    return record


def write_bench_json(
    name: str,
    *,
    wall_time_s: Optional[float] = None,
    throughput: Optional[Dict[str, float]] = None,
    data: Optional[Sequence[Dict[str, Any]]] = None,
    extra: Optional[Dict[str, Any]] = None,
    out_dir: Optional[str] = None,
) -> str:
    """Write ``BENCH_<name>.json`` into the results directory."""
    record = bench_record(
        name,
        wall_time_s=wall_time_s,
        throughput=throughput,
        data=data,
        extra=extra,
    )
    path = os.path.join(results_dir(out_dir), f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[bench-json] {path}")
    return path


def rows_to_dicts(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> List[Dict[str, Any]]:
    """Zip table headers onto rows — the text table's JSON twin."""
    keys = [str(h).strip().replace(" ", "_") for h in headers]
    return [dict(zip(keys, row)) for row in rows]


def table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    rendered_rows: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered_rows.append(
            [f"{v:.3f}" if isinstance(v, float) else str(v) for v in row]
        )
    widths = [
        max(len(r[i]) for r in rendered_rows) for i in range(len(headers))
    ]
    lines = []
    for i, row in enumerate(rendered_rows):
        lines.append("  ".join(cell.ljust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
