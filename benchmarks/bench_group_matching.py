"""E7 — group matching via classad aggregation (Section 5 future work).

Regenerates the regularity sweep: matching throughput of per-ad vs.
grouped matching as the number of distinct machine *classes* in a
2,000-ad pool varies (high regularity = few classes = big groups).

Shape to reproduce: group matching's cost tracks the number of groups,
so its advantage over per-ad matching is roughly the compression factor
(ads per group), while results stay identical.
"""

import time

from repro.classads import ClassAd
from repro.matchmaking import (
    AdAggregation,
    GroupMatchStats,
    constraints_satisfied,
    group_match,
)
from repro.sim import RngStream

from _report import rows_to_dicts, table, write_bench_json, write_report

POOL_SIZE = 2_000


def build_pool(n_classes, rng):
    """*n_classes* distinct machine configurations, POOL_SIZE ads total."""
    classes = []
    for c in range(n_classes):
        classes.append(
            {
                "Arch": rng.choice(["INTEL", "SPARC", "ALPHA"]),
                "OpSys": rng.choice(["SOLARIS251", "LINUX"]),
                "Memory": rng.choice([32, 64, 128, 256]),
                "KFlops": rng.randint(5, 50) * 1_000,
            }
        )
    ads = []
    for i in range(POOL_SIZE):
        cls = classes[i % n_classes]
        ad = ClassAd(
            {
                "Type": "Machine",
                "Name": f"m{i}",
                "ContactAddress": f"startd@m{i}",
                **cls,
            }
        )
        ad.set_expr("Constraint", 'other.Type == "Job"')
        ads.append(ad)
    return ads


def customer(rng):
    ad = ClassAd(
        {"Type": "Job", "Owner": "alice", "Memory": rng.choice([16, 31, 64])}
    )
    ad.set_expr(
        "Constraint",
        'other.Type == "Machine" && other.Memory >= self.Memory '
        f'&& other.Arch == "{rng.choice(["INTEL", "SPARC"])}"',
    )
    return ad


def test_regularity_sweep(benchmark):
    class_counts = [4, 16, 64, 256]
    n_queries = 20

    def sweep():
        rows = []
        for n_classes in class_counts:
            rng = RngStream(n_classes, "group")
            pool = build_pool(n_classes, rng.fork("pool"))
            queries = [customer(rng.fork(f"q{i}")) for i in range(n_queries)]

            start = time.perf_counter()
            naive = [
                [ad for ad in pool if constraints_satisfied(q, ad)] for q in queries
            ]
            naive_time = time.perf_counter() - start

            start = time.perf_counter()
            aggregation = AdAggregation(pool)
            stats = GroupMatchStats()
            grouped = [group_match(q, aggregation, stats=stats) for q in queries]
            grouped_time = time.perf_counter() - start

            for a, b in zip(naive, grouped):
                assert {ad.evaluate("Name") for ad in a} == {
                    ad.evaluate("Name") for ad in b
                }
            rows.append(
                (
                    n_classes,
                    f"{aggregation.compression:.0f}",
                    f"{1000 * naive_time:.0f}ms",
                    f"{1000 * grouped_time:.0f}ms",
                    f"{naive_time / grouped_time:.1f}x",
                    stats.constraint_evaluations,
                )
            )
        return rows

    start = time.perf_counter()
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    headers = [
        "machine classes",
        "ads/group",
        "per-ad matching",
        "group matching",
        "speedup",
        "constraint evals",
    ]
    write_report("E7_group_matching", table(headers, rows))
    write_bench_json(
        "E7_group_matching",
        wall_time_s=wall,
        throughput={"best_speedup": float(rows[0][4].rstrip("x"))},
        data=rows_to_dicts(headers, rows),
        extra={"pool_size": POOL_SIZE, "queries": n_queries},
    )

    # Shape: higher regularity (fewer classes) → bigger speedup; the
    # most regular pool must show a clear win.
    speedups = [float(r[4].rstrip("x")) for r in rows]
    assert speedups[0] > 5.0
    assert speedups[0] > speedups[-1]


def test_aggregation_build_cost(benchmark):
    rng = RngStream(5, "agg")
    pool = build_pool(16, rng.fork("pool"))
    aggregation = benchmark.pedantic(AdAggregation, args=(pool,), rounds=3, iterations=1)
    assert len(aggregation.groups) == 16


def test_single_group_match(benchmark):
    rng = RngStream(6, "agg")
    pool = build_pool(16, rng.fork("pool"))
    aggregation = AdAggregation(pool)
    query = customer(rng.fork("q"))
    found = benchmark(group_match, query, aggregation)
    naive = [ad for ad in pool if constraints_satisfied(query, ad)]
    assert len(found) == len(naive)
