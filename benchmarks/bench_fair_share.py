"""E4 — fair matching from past resource usage (Section 4).

Regenerates two tables:

* delivered pool share for two contending users as a function of their
  priority-factor ratio (shares should be ordered by factor, with a
  larger factor ratio widening the gap);
* the newcomer-vs-incumbent experiment: time for a fresh user's first
  job to start on a pool monopolized by a heavy user.
"""

import time

from repro.condor import CondorPool, Job, MachineSpec, PoolConfig

from _report import rows_to_dicts, table, write_bench_json, write_report


def contended_run(factor_ratio, hours=12, n_machines=4, seed=17):
    specs = [MachineSpec(name=f"m{i}") for i in range(n_machines)]
    pool = CondorPool(
        specs,
        PoolConfig(
            seed=seed,
            advertise_interval=120.0,
            negotiation_interval=120.0,
            priority_half_life=900.0,
            allow_preemption=False,
        ),
    )
    pool.accountant.set_priority_factor("alpha", 1.0)
    pool.accountant.set_priority_factor("beta", factor_ratio)
    for _ in range(max(160, int(40 * hours))):
        pool.submit(Job(owner="alpha", total_work=1_800.0))
        pool.submit(Job(owner="beta", total_work=1_800.0))
    pool.run_until(hours * 3600.0)
    shares = pool.machine_share_by_owner()
    return shares.get("alpha", 0.0), shares.get("beta", 0.0)


def test_factor_weighted_shares(benchmark):
    ratios = [1.0, 2.0, 4.0]

    def sweep():
        return [(r, *contended_run(r)) for r in ratios]

    start = time.perf_counter()
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    rows = [
        (f"{r:.0f}x", f"{a:.2f}", f"{b:.2f}", f"{a / max(b, 1e-9):.2f}")
        for r, a, b in results
    ]
    report = table(
        ["beta's priority factor", "alpha share", "beta share", "alpha/beta"], rows
    )
    write_report("E4_fair_share", report)
    write_bench_json(
        "E4_fair_share",
        wall_time_s=wall,
        data=[
            {"factor_ratio": r, "alpha_share": a, "beta_share": b}
            for r, a, b in results
        ],
    )

    equal, doubled, quadrupled = results
    # Equal factors → near-even split.
    assert abs(equal[1] - equal[2]) < 0.15
    # Larger factor → smaller share, monotonically.
    assert doubled[1] > doubled[2]
    assert quadrupled[1] > quadrupled[2]
    assert quadrupled[1] / quadrupled[2] >= doubled[1] / doubled[2] * 0.9


def test_newcomer_beats_incumbent(benchmark):
    def run():
        pool = CondorPool(
            [MachineSpec(name=f"m{i}") for i in range(2)],
            PoolConfig(
                seed=19,
                advertise_interval=120.0,
                negotiation_interval=120.0,
                priority_half_life=900.0,
                allow_preemption=False,
            ),
        )
        for _ in range(60):
            pool.submit(Job(owner="hog", total_work=600.0))
        arrival = 4 * 3600.0
        newcomer = Job(owner="newbie", total_work=300.0)
        pool.submit(newcomer, at=arrival)
        pool.run_until(arrival + 1_800.0)
        assert newcomer.first_start_time is not None
        return newcomer.first_start_time - arrival

    start = time.perf_counter()
    delay = benchmark.pedantic(run, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    write_bench_json(
        "E4_newcomer", wall_time_s=wall, data=[{"first_start_delay_s": delay}]
    )
    write_report(
        "E4_newcomer",
        f"newcomer's first job started {delay:.0f}s after arrival on a "
        "pool with a 4-hour incumbent backlog\n"
        "(bounded by one negotiation cycle + one job drain: fair-share "
        "ordering put the newcomer first)",
    )
    # Served within ~3 negotiation cycles despite the hog's huge backlog.
    assert delay < 900.0
