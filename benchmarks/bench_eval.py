"""E-EVAL — classad evaluation microbenchmark: interpreter vs compiled closures.

Measures the negotiation inner-loop primitive in isolation: repeated
``Constraint``/``Rank`` evaluation of a (job, machine) ad pair, in three
configurations:

* **interpreted** — the recursive tree-walker (``REPRO_NO_COMPILE`` path);
* **compiled, cold cache** — every round starts with empty caches, so the
  cost includes lowering the ASTs to closures;
* **compiled, warm cache** — the steady state of a negotiation cycle,
  where ``Constraint``/``Rank`` compiled once and every candidate pairing
  reuses the cached closure.

The acceptance bar (ISSUE 3): warm-cache compiled evaluation is at least
2x the interpreter on this workload.  Results are written as
``repro-bench/1`` JSON (``BENCH_EVAL_compile.json``).

Run as a script for the CI smoke benchmark::

    python benchmarks/bench_eval.py --smoke [--out DIR]

or under pytest (collected when the benchmarks directory is targeted).
"""

import argparse
import os
import sys
import time

if __name__ == "__main__":
    # Allow `python benchmarks/bench_eval.py` from a bare checkout.
    _src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    if os.path.isdir(_src) and os.path.abspath(_src) not in map(os.path.abspath, sys.path):
        sys.path.insert(0, os.path.abspath(_src))

from repro.classads import ClassAd
from repro.classads import compile as compiled_path
from repro.classads import evaluator as interpreted_path

from _report import rows_to_dicts, table, write_bench_json, write_report

#: The Figure-2-shaped pair every negotiation cycle evaluates repeatedly.
JOB_CONSTRAINT = (
    'other.Type == "Machine" && other.Arch == self.ReqArch '
    "&& other.OpSys == self.ReqOpSys && other.Memory >= self.Memory"
)
JOB_RANK = "other.KFlops / 1E3 + other.Memory / 32"
MACHINE_CONSTRAINT = 'other.Type == "Job" && LoadAvg < 0.3'
MACHINE_RANK = 'other.Owner == "raman" ? 10 : 0'


def build_pair():
    job = ClassAd(
        {
            "Type": "Job",
            "Owner": "raman",
            "Memory": 31,
            "ReqArch": "INTEL",
            "ReqOpSys": "SOLARIS251",
        }
    )
    job.set_expr("Constraint", JOB_CONSTRAINT)
    job.set_expr("Rank", JOB_RANK)
    machine = ClassAd(
        {
            "Type": "Machine",
            "Name": "crow",
            "Arch": "INTEL",
            "OpSys": "SOLARIS251",
            "Memory": 64,
            "KFlops": 21893,
            "LoadAvg": 0.042,
        }
    )
    machine.set_expr("Constraint", MACHINE_CONSTRAINT)
    machine.set_expr("Rank", MACHINE_RANK)
    return job, machine


def _drop_caches(*ads):
    compiled_path.clear_cache()
    for ad in ads:
        ad._ccache = None


def _rounds(evaluate_attribute, job, machine, n):
    for _ in range(n):
        evaluate_attribute(job, "Constraint", other=machine)
        evaluate_attribute(job, "Rank", other=machine)
        evaluate_attribute(machine, "Constraint", other=job)
        evaluate_attribute(machine, "Rank", other=job)


def measure(rounds=20_000, repeats=5, cold_batches=200):
    """Best-of-*repeats* per-round times for the three configurations.

    The configurations are interleaved within each repeat so machine
    drift biases them equally.  Cold-cache rounds are measured in batches
    of one evaluation sweep per cache drop (``cold_batches`` drops per
    repeat) because a single cold round is too short to time.
    """
    job, machine = build_pair()
    enabled_before = compiled_path.compilation_enabled()
    best = {"interpreted": float("inf"), "cold": float("inf"), "warm": float("inf")}
    try:
        compiled_path.set_compilation(True)
        _rounds(compiled_path.evaluate_attribute, job, machine, 100)  # warm-up
        for _ in range(repeats):
            compiled_path.set_compilation(False)
            start = time.perf_counter()
            _rounds(compiled_path.evaluate_attribute, job, machine, rounds)
            best["interpreted"] = min(
                best["interpreted"], (time.perf_counter() - start) / rounds
            )

            compiled_path.set_compilation(True)
            start = time.perf_counter()
            for _ in range(cold_batches):
                _drop_caches(job, machine)
                _rounds(compiled_path.evaluate_attribute, job, machine, 1)
            best["cold"] = min(
                best["cold"], (time.perf_counter() - start) / cold_batches
            )

            _rounds(compiled_path.evaluate_attribute, job, machine, 100)
            start = time.perf_counter()
            _rounds(compiled_path.evaluate_attribute, job, machine, rounds)
            best["warm"] = min(
                best["warm"], (time.perf_counter() - start) / rounds
            )
    finally:
        compiled_path.set_compilation(enabled_before)
    return best


def sanity_check_results():
    """Both paths agree on the workload (guards the benchmark itself)."""
    from repro.classads import values_identical

    job, machine = build_pair()
    for ad, other in ((job, machine), (machine, job)):
        for attr in ("Constraint", "Rank"):
            compiled = compiled_path.evaluate_attribute(ad, attr, other=other)
            interpreted = interpreted_path.evaluate_attribute(ad, attr, other=other)
            assert values_identical(compiled, interpreted), (attr, compiled, interpreted)


HEADERS = ["configuration", "per round", "rounds/s", "vs interpreter"]


def _rows(best):
    interp = best["interpreted"]
    return [
        (
            name,
            f"{1e6 * seconds:.2f}us",
            f"{1 / seconds:,.0f}",
            f"{interp / seconds:.2f}x",
        )
        for name, seconds in (
            ("interpreted", best["interpreted"]),
            ("compiled cold", best["cold"]),
            ("compiled warm", best["warm"]),
        )
    ]


def run_smoke(out_dir=None, rounds=20_000, repeats=5):
    """The CI smoke run: measure, report, and enforce the 2x bar."""
    sanity_check_results()
    start = time.perf_counter()
    best = measure(rounds=rounds, repeats=repeats)
    wall = time.perf_counter() - start
    warm_speedup = best["interpreted"] / best["warm"]
    cold_speedup = best["interpreted"] / best["cold"]
    rows = _rows(best)
    report = table(HEADERS, rows) + (
        f"\n\none round = 4 attribute evaluations (both Constraints + both"
        f" Ranks)\nwarm-cache speedup {warm_speedup:.2f}x"
        f" (bar: >= 2x), cold-cache {cold_speedup:.2f}x"
    )
    write_report("EVAL_compile_smoke", report, out_dir=out_dir)
    path = write_bench_json(
        "EVAL_compile",
        wall_time_s=wall,
        throughput={
            "rounds_per_s_interpreted": 1 / best["interpreted"],
            "rounds_per_s_compiled_cold": 1 / best["cold"],
            "rounds_per_s_compiled_warm": 1 / best["warm"],
            "warm_speedup": warm_speedup,
            "cold_speedup": cold_speedup,
        },
        data=rows_to_dicts(HEADERS, rows),
        extra={"mode": "smoke", "rounds": rounds, "repeats": repeats},
        out_dir=out_dir,
    )
    assert warm_speedup >= 2.0, (
        f"compiled warm-cache evaluation is only {warm_speedup:.2f}x the"
        " interpreter; the acceptance bar is 2x"
    )
    return path


def test_warm_cache_speedup_bar():
    """Pytest entry point: the ISSUE-3 acceptance assertion."""
    sanity_check_results()
    best = measure(rounds=5_000, repeats=3, cold_batches=50)
    assert best["interpreted"] / best["warm"] >= 2.0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="run the CI smoke measurement"
    )
    parser.add_argument(
        "--out", default=None, help="results directory (default: benchmarks/results)"
    )
    parser.add_argument("--rounds", type=int, default=20_000)
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("only --smoke mode is supported as a script; use pytest otherwise")
    run_smoke(out_dir=args.out, rounds=args.rounds, repeats=args.repeats)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
