"""E9 — co-allocation via gangmatching (Section 5 / Section 3.1 nesting).

Regenerates the license-limited co-allocation table: a stream of gang
requests (machine + same-host license) against pools where licenses are
the scarce resource.  Shape: served gangs track the license count, not
the (larger) machine count, and backtracking is what finds the legal
machine/license pairings.
"""

import time

from repro.classads import ClassAd
from repro.matchmaking import GangRequest, GangStats, Port, gang_match, gang_match_all
from repro.sim import RngStream

from _report import rows_to_dicts, table, write_bench_json, write_report


def build_providers(n_machines, n_licenses, rng):
    ads = []
    for i in range(n_machines):
        ad = ClassAd(
            {
                "Type": "Machine",
                "Name": f"m{i}",
                "Arch": rng.choice(["INTEL", "SPARC"]),
                "Memory": rng.choice([64, 128]),
                "KFlops": rng.randint(5, 50) * 1_000,
            }
        )
        ad.set_expr("Constraint", 'other.Type == "Job"')
        ads.append(ad)
    hosts = rng.sample([f"m{i}" for i in range(n_machines)], n_licenses)
    for host in hosts:
        lic = ClassAd({"Type": "License", "App": "fluent", "Host": host})
        lic.set_expr("Constraint", 'other.Type == "Job"')
        ads.append(lic)
    return ads


def gang(owner="alice"):
    return GangRequest(
        base=ClassAd({"Type": "Job", "Owner": owner, "Memory": 32}),
        ports=[
            Port(
                "cpu",
                'other.Type == "Machine" && other.Memory >= self.Memory',
                rank="other.KFlops / 1E3",
            ),
            Port(
                "license",
                'other.Type == "License" && other.App == "fluent" '
                "&& other.Host == cpu.Name",
            ),
        ],
    )


def test_license_limited_coallocation(benchmark):
    configs = [(40, 2), (40, 5), (40, 10), (40, 20)]
    n_requests = 25

    def sweep():
        rows = []
        for n_machines, n_licenses in configs:
            rng = RngStream(n_machines * 100 + n_licenses, "gang")
            providers = build_providers(n_machines, n_licenses, rng)
            requests = [gang() for _ in range(n_requests)]
            results = gang_match_all(requests, providers)
            served = sum(1 for r in results if r is not None)
            assert served == min(n_licenses, n_requests)
            for r in results:
                if r is not None:
                    assert (
                        r.provider("license").evaluate("Host")
                        == r.provider("cpu").evaluate("Name")
                    )
            rows.append((n_machines, n_licenses, n_requests, served))
        return rows

    start = time.perf_counter()
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    headers = ["machines", "licenses", "gang requests", "served"]
    write_report("E9_gangmatch", table(headers, rows))
    write_bench_json(
        "E9_gangmatch", wall_time_s=wall, data=rows_to_dicts(headers, rows)
    )


def test_single_gang_match_with_backtracking(benchmark):
    rng = RngStream(7, "gang")
    providers = build_providers(60, 3, rng)
    stats = GangStats()

    def run():
        return gang_match(gang(), providers, stats=stats)

    match = benchmark.pedantic(run, rounds=3, iterations=1)
    assert match is not None
    # The best-ranked machines usually lack a license: backtracking or at
    # minimum multi-candidate search must have happened.
    assert stats.candidates_evaluated > 3
