"""E1 — matchmaker statelessness: crash recovery with no recovery protocol.

Crashes the central manager mid-run and regenerates the recovery table:
how long until the ad store is repopulated and matching resumes, as a
function of the advertising interval (the only recovery mechanism that
exists is periodic re-advertisement).

Run as a script for the CI smoke benchmark::

    python benchmarks/bench_failure_recovery.py --smoke [--out DIR]

which executes a reduced sweep without pytest and writes
``BENCH_E1_failure_recovery.json``.
"""

import argparse
import os
import sys
import time

if __name__ == "__main__":
    # Allow `python benchmarks/bench_failure_recovery.py` from a bare checkout.
    _src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    if os.path.isdir(_src) and os.path.abspath(_src) not in map(os.path.abspath, sys.path):
        sys.path.insert(0, os.path.abspath(_src))

from repro.condor import CondorPool, Job, MachineSpec, PoolConfig

from _report import table, write_bench_json, write_report

CRASH_AT = 1_000.0
OUTAGE = 600.0
N_MACHINES = 50


def run_crash(advertise_interval, n_machines=N_MACHINES, n_jobs=100, spacing=10.0):
    specs = [MachineSpec(name=f"m{i}") for i in range(n_machines)]
    pool = CondorPool(
        specs,
        PoolConfig(
            seed=11,
            advertise_interval=advertise_interval,
            negotiation_interval=60.0,
            trace_enabled=True,
        ),
    )
    # A steady trickle of work so matching is observable before and after.
    for i in range(n_jobs):
        pool.submit(Job(owner="alice", total_work=600.0), at=spacing * i)
    pool.crash_central_manager(at=CRASH_AT, duration=OUTAGE)
    pool.run_until(CRASH_AT + OUTAGE + 20 * advertise_interval)

    recover_time = CRASH_AT + OUTAGE
    # Time until the collector again held every machine ad, read off the
    # per-cycle trace (each negotiation-cycle event records the store size).
    store_full_at = None
    for event in pool.trace.of_kind("negotiation-cycle"):
        if event.time > recover_time and event.fields["machines"] >= n_machines:
            store_full_at = event.time
            break
    first_match_after = None
    for event in pool.trace.of_kind("match"):
        if event.time > recover_time:
            first_match_after = event.time
            break
    return {
        "interval": advertise_interval,
        "store_full_after": (store_full_at - recover_time) if store_full_at else None,
        "first_match_after": (first_match_after - recover_time)
        if first_match_after
        else None,
        "completed": pool.metrics.jobs_completed,
    }


def test_recovery_time_tracks_advertising_interval(benchmark):
    def sweep():
        return [run_crash(interval) for interval in (60.0, 120.0, 300.0)]

    start = time.perf_counter()
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    rows = [
        (
            f"{r['interval']:.0f}s",
            f"{r['store_full_after']:.0f}s" if r["store_full_after"] else "-",
            f"{r['first_match_after']:.0f}s" if r["first_match_after"] else "-",
            r["completed"],
        )
        for r in results
    ]
    report = table(
        [
            "advertise interval",
            "ad store repopulated after",
            "matching resumed after",
            "jobs completed",
        ],
        rows,
    )
    write_report("E1_failure_recovery", report)
    write_bench_json("E1_failure_recovery", wall_time_s=wall, data=results)
    # Recovery is bounded by roughly one advertising interval + one cycle.
    for r in results:
        assert r["store_full_after"] is not None
        assert r["store_full_after"] <= r["interval"] + 120.0
        assert r["first_match_after"] is not None
    # All work eventually completes despite the outage.
    assert all(r["completed"] == 100 for r in results)


def test_running_claims_survive_outage(benchmark):
    def run():
        pool = CondorPool(
            [MachineSpec(name="m0")],
            PoolConfig(seed=3, advertise_interval=60.0, negotiation_interval=60.0),
        )
        pool.submit(Job(owner="alice", total_work=800.0))
        pool.crash_central_manager(at=120.0, duration=800.0)
        pool.run_until(1_000.0)
        done = pool.trace.first("job-completed")
        crash = pool.trace.first("collector-crash")
        recover = pool.trace.first("collector-recover")
        return crash.time < done.time < recover.time

    assert benchmark.pedantic(run, rounds=1, iterations=1)


def run_smoke(out_dir=None, n_machines=20, n_jobs=40):
    """The CI smoke variant: a reduced interval sweep, same invariants.

    Returns the written BENCH_*.json path."""
    start = time.perf_counter()
    # Arrivals stretch past the outage so matching demonstrably resumes.
    results = [
        run_crash(interval, n_machines=n_machines, n_jobs=n_jobs, spacing=50.0)
        for interval in (60.0, 120.0)
    ]
    wall = time.perf_counter() - start
    rows = [
        (
            f"{r['interval']:.0f}s",
            f"{r['store_full_after']:.0f}s" if r["store_full_after"] else "-",
            f"{r['first_match_after']:.0f}s" if r["first_match_after"] else "-",
            r["completed"],
        )
        for r in results
    ]
    report = table(
        [
            "advertise interval",
            "ad store repopulated after",
            "matching resumed after",
            "jobs completed",
        ],
        rows,
    )
    write_report("E1_failure_recovery", report, out_dir=out_dir)
    for r in results:
        assert r["store_full_after"] is not None, r
        assert r["store_full_after"] <= r["interval"] + 120.0, r
        assert r["first_match_after"] is not None, r
        assert r["completed"] == n_jobs, r
    worst = max(r["store_full_after"] for r in results)
    return write_bench_json(
        "E1_failure_recovery",
        wall_time_s=wall,
        throughput={"worst_store_repopulation_s": worst},
        data=results,
        out_dir=out_dir,
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="run the reduced CI smoke sweep"
    )
    parser.add_argument(
        "--out", default=None, help="results directory (default: benchmarks/results)"
    )
    parser.add_argument("--machines", type=int, default=20)
    parser.add_argument("--jobs", type=int, default=40)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("only --smoke mode is supported as a script; use pytest otherwise")
    run_smoke(out_dir=args.out, n_machines=args.machines, n_jobs=args.jobs)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
