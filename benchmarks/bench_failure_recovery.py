"""E1 — matchmaker statelessness: crash recovery with no recovery protocol.

Crashes the central manager mid-run and regenerates the recovery table:
how long until the ad store is repopulated and matching resumes, as a
function of the advertising interval (the only recovery mechanism that
exists is periodic re-advertisement).
"""

import time

from repro.condor import CondorPool, Job, MachineSpec, PoolConfig

from _report import table, write_bench_json, write_report

CRASH_AT = 1_000.0
OUTAGE = 600.0
N_MACHINES = 50


def run_crash(advertise_interval):
    specs = [MachineSpec(name=f"m{i}") for i in range(N_MACHINES)]
    pool = CondorPool(
        specs,
        PoolConfig(
            seed=11,
            advertise_interval=advertise_interval,
            negotiation_interval=60.0,
            trace_enabled=True,
        ),
    )
    # A steady trickle of work so matching is observable before and after.
    for i in range(100):
        pool.submit(Job(owner="alice", total_work=600.0), at=10.0 * i)
    pool.crash_central_manager(at=CRASH_AT, duration=OUTAGE)
    pool.run_until(CRASH_AT + OUTAGE + 20 * advertise_interval)

    recover_time = CRASH_AT + OUTAGE
    # Time until the collector again held every machine ad, read off the
    # per-cycle trace (each negotiation-cycle event records the store size).
    store_full_at = None
    for event in pool.trace.of_kind("negotiation-cycle"):
        if event.time > recover_time and event.fields["machines"] >= N_MACHINES:
            store_full_at = event.time
            break
    first_match_after = None
    for event in pool.trace.of_kind("match"):
        if event.time > recover_time:
            first_match_after = event.time
            break
    return {
        "interval": advertise_interval,
        "store_full_after": (store_full_at - recover_time) if store_full_at else None,
        "first_match_after": (first_match_after - recover_time)
        if first_match_after
        else None,
        "completed": pool.metrics.jobs_completed,
    }


def test_recovery_time_tracks_advertising_interval(benchmark):
    def sweep():
        return [run_crash(interval) for interval in (60.0, 120.0, 300.0)]

    start = time.perf_counter()
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    rows = [
        (
            f"{r['interval']:.0f}s",
            f"{r['store_full_after']:.0f}s" if r["store_full_after"] else "-",
            f"{r['first_match_after']:.0f}s" if r["first_match_after"] else "-",
            r["completed"],
        )
        for r in results
    ]
    report = table(
        [
            "advertise interval",
            "ad store repopulated after",
            "matching resumed after",
            "jobs completed",
        ],
        rows,
    )
    write_report("E1_failure_recovery", report)
    write_bench_json("E1_failure_recovery", wall_time_s=wall, data=results)
    # Recovery is bounded by roughly one advertising interval + one cycle.
    for r in results:
        assert r["store_full_after"] is not None
        assert r["store_full_after"] <= r["interval"] + 120.0
        assert r["first_match_after"] is not None
    # All work eventually completes despite the outage.
    assert all(r["completed"] == 100 for r in results)


def test_running_claims_survive_outage(benchmark):
    def run():
        pool = CondorPool(
            [MachineSpec(name="m0")],
            PoolConfig(seed=3, advertise_interval=60.0, negotiation_interval=60.0),
        )
        pool.submit(Job(owner="alice", total_work=800.0))
        pool.crash_central_manager(at=120.0, duration=800.0)
        pool.run_until(1_000.0)
        done = pool.trace.first("job-completed")
        crash = pool.trace.first("collector-crash")
        recover = pool.trace.first("collector-recover")
        return crash.time < done.time < recover.time

    assert benchmark.pedantic(run, rounds=1, iterations=1)
