"""E2 — weak consistency: claim rejections vs. advertisement staleness.

Sweeps the advertising interval against fixed owner dynamics and
regenerates the series the paper's Section 3.2 argument predicts: the
staler the matchmaker's view, the more matches are corrected (rejected)
at claim time — while completed work stays safe and nonzero.
"""

import time

from repro.condor import CondorPool, Job, MachineSpec, PoissonOwner, PoolConfig

from _report import table, write_bench_json, write_report

HORIZON = 40_000.0


def run_with_interval(advertise_interval, seed=33):
    specs = [MachineSpec(name=f"m{i}") for i in range(8)]
    owner_models = {
        spec.name: PoissonOwner(mean_active=600.0, mean_idle=1_200.0)
        for spec in specs
    }
    pool = CondorPool(
        specs,
        PoolConfig(
            seed=seed,
            advertise_interval=advertise_interval,
            negotiation_interval=300.0,
            advertise_on_state_change=False,  # pure periodic: worst case
        ),
        owner_models=owner_models,
    )
    for _ in range(25):
        pool.submit(Job(owner="alice", total_work=900.0))
    pool.run_until(HORIZON)
    m = pool.metrics
    return {
        "interval": advertise_interval,
        "claims": m.claims_attempted,
        "rejected": m.claims_rejected,
        "rate": m.claim_rejection_rate,
        "completed": m.jobs_completed,
        "goodput": m.goodput,
    }


def test_staleness_sweep(benchmark):
    intervals = [60.0, 300.0, 900.0, 1_800.0, 3_600.0]

    def sweep():
        return [run_with_interval(interval) for interval in intervals]

    start = time.perf_counter()
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    rows = [
        (
            f"{r['interval']:.0f}s",
            r["claims"],
            r["rejected"],
            f"{100 * r['rate']:.1f}%",
            r["completed"],
            f"{r['goodput']:.0f}s",
        )
        for r in results
    ]
    report = table(
        ["advertise interval", "claims", "rejected", "rejection rate", "done", "goodput"],
        rows,
    )
    write_report("E2_stale_ads", report)
    write_bench_json(
        "E2_stale_ads",
        wall_time_s=wall,
        data=results,
        extra={"horizon_s": HORIZON},
    )

    # Shape: rejections grow with staleness (compare the extremes; the
    # middle may be noisy), and the system keeps completing work at
    # every staleness level.
    assert results[-1]["rate"] >= results[0]["rate"]
    assert all(r["completed"] > 0 for r in results)


def test_claim_time_verification_cost(benchmark):
    """Micro-cost of one claim-time re-verification (ticket + both
    constraints) — the price paid for tolerating weak consistency."""
    from repro.paper import figure1_machine, figure2_job
    from repro.protocols import TicketAuthority, verify_claim

    authority = TicketAuthority("leonardo", b"s")
    ticket = authority.mint()
    machine, job = figure1_machine(), figure2_job()
    decision = benchmark(verify_claim, job, machine, ticket, authority)
    assert decision.accepted
