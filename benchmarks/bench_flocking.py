"""E10 — flocking: load sharing across autonomous pools (paper ref [3]).

Regenerates the overflow table: a saturated 2-machine home pool with a
fixed backlog, flocked to remote pools of growing size.  Shape: makespan
falls as remote capacity grows; jobs run remotely only after starving
locally; remote-pool policies keep applying.
"""

import time

from repro.condor import Job, MachineSpec, PoolConfig
from repro.condor.flocking import Flock

from _report import table, write_bench_json, write_report

BACKLOG = 16
WORK = 2_400.0


def run_flock(n_remote):
    pools = {
        "home": [MachineSpec(name=f"h{i}") for i in range(2)],
    }
    if n_remote:
        pools["remote"] = [MachineSpec(name=f"r{i}") for i in range(n_remote)]
    flock = Flock(
        pools,
        PoolConfig(seed=61, advertise_interval=120.0, negotiation_interval=120.0),
        flock_threshold=300.0,
    )
    for _ in range(BACKLOG):
        flock.submit("home", Job(owner="alice", total_work=WORK))
    makespan = flock.run_until_quiescent(check_interval=120.0, max_time=500_000.0)
    accepted = flock.trace.of_kind("claim-accepted")
    remote_runs = sum(1 for e in accepted if e.fields["machine"].startswith("r"))
    return makespan, remote_runs


def test_flock_overflow_series(benchmark):
    sizes = [0, 2, 4, 8]

    def sweep():
        return [(n, *run_flock(n)) for n in sizes]

    start = time.perf_counter()
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    rows = [
        (f"{n} remote machines", f"{makespan:.0f}s", remote_runs)
        for n, makespan, remote_runs in results
    ]
    report = table(["flock size", "backlog makespan", "claims served remotely"], rows)
    write_report("E10_flocking", report)
    write_bench_json(
        "E10_flocking",
        wall_time_s=wall,
        data=[
            {"remote_machines": n, "makespan_s": makespan, "remote_runs": remote_runs}
            for n, makespan, remote_runs in results
        ],
    )

    makespans = [m for _, m, _ in results]
    assert makespans == sorted(makespans, reverse=True)  # more flock, faster
    assert results[0][2] == 0  # no remote pool, no remote runs
    assert results[-1][2] > 0  # big flock actually absorbed overflow


def test_single_flocked_negotiation(benchmark):
    def run():
        return run_flock(4)

    makespan, remote_runs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert remote_runs > 0
