"""E6 — matchmaker scalability: negotiation-cycle cost vs. pool size.

Regenerates the scaling series for one negotiation cycle over pools of
100–2,000 machines with 100 queued requests, in two variants:

* naive O(N·M) constraint evaluation;
* with the attribute index (S7) pre-filtering candidates.

The shape to reproduce: naive cost grows linearly in pool size, the
indexed matcher grows far slower (most providers are pruned before any
full constraint evaluation), and both return identical assignments.
"""

import time

from repro.classads import ClassAd
from repro.matchmaking import CycleStats, ProviderIndex, negotiation_cycle
from repro.sim import RngStream

from _report import table, write_report

ARCHS = ["INTEL", "SPARC", "ALPHA"]
OPSYSES = ["SOLARIS251", "LINUX", "OSF1"]
MEMORIES = [32, 64, 128, 256]


def build_pool(n, rng):
    ads = []
    for i in range(n):
        ad = ClassAd(
            {
                "Type": "Machine",
                "Name": f"m{i}",
                "Arch": rng.choice(ARCHS),
                "OpSys": rng.choice(OPSYSES),
                "Memory": rng.choice(MEMORIES),
                "Disk": rng.randint(50_000, 500_000),
                "KFlops": rng.randint(5_000, 50_000),
                "State": "Unclaimed",
                "ContactAddress": f"startd@m{i}",
            }
        )
        ad.set_expr("Constraint", 'other.Type == "Job"')
        ad.set_expr("Rank", "0")
        ads.append(ad)
    return ads


def build_requests(n, rng):
    requests = {}
    for s in range(4):
        jobs = []
        for i in range(n // 4):
            ad = ClassAd(
                {
                    "Type": "Job",
                    "JobId": s * 1000 + i,
                    "Owner": f"user{s}",
                    "Memory": rng.choice([16, 31, 64]),
                    "ReqArch": rng.choice(ARCHS),
                    "ReqOpSys": rng.choice(OPSYSES),
                    "ContactAddress": f"schedd@user{s}",
                }
            )
            ad.set_expr(
                "Constraint",
                'other.Type == "Machine" && other.Arch == self.ReqArch '
                "&& other.OpSys == self.ReqOpSys && other.Memory >= self.Memory",
            )
            ad.set_expr("Rank", "other.KFlops / 1E3")
            jobs.append(ad)
        requests[f"user{s}"] = jobs
    return requests


def run_cycle(providers, requests, use_index):
    stats = CycleStats()
    index = ProviderIndex(providers) if use_index else None
    start = time.perf_counter()
    assignments = negotiation_cycle(requests, providers, index=index, stats=stats)
    elapsed = time.perf_counter() - start
    return assignments, elapsed, stats


def test_scaling_series(benchmark):
    sizes = [100, 250, 500, 1_000, 2_000]

    def sweep():
        rows = []
        for n in sizes:
            rng = RngStream(n, "pool")
            providers = build_pool(n, rng.fork("machines"))
            requests = build_requests(100, rng.fork("jobs"))
            naive_assignments, naive_time, _ = run_cycle(providers, requests, False)
            indexed_assignments, indexed_time, stats = run_cycle(
                providers, requests, True
            )
            # Same outcome, cheaper search.
            assert [
                (a.submitter, a.provider.evaluate("Name"))
                for a in naive_assignments
            ] == [
                (a.submitter, a.provider.evaluate("Name"))
                for a in indexed_assignments
            ]
            rows.append(
                (
                    n,
                    len(naive_assignments),
                    f"{1000 * naive_time:.0f}ms",
                    f"{1000 * indexed_time:.0f}ms",
                    f"{naive_time / indexed_time:.1f}x",
                    stats.constraint_evaluations_saved,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = table(
        ["machines", "matched", "naive cycle", "indexed cycle", "speedup", "evals pruned"],
        rows,
    )
    write_report("E6_scalability", report)

    # Shape: index never loses, and wins clearly at scale.
    big = rows[-1]
    speedup = float(big[4].rstrip("x"))
    assert speedup > 2.0


def test_single_cycle_1000_machines(benchmark):
    rng = RngStream(1, "bench")
    providers = build_pool(1_000, rng.fork("m"))
    requests = build_requests(50, rng.fork("j"))
    index = ProviderIndex(providers)

    def cycle():
        return negotiation_cycle(requests, providers, index=index)

    assignments = benchmark.pedantic(cycle, rounds=3, iterations=1)
    assert len(assignments) > 0


def test_index_build_cost(benchmark):
    rng = RngStream(2, "bench")
    providers = build_pool(1_000, rng.fork("m"))
    index = benchmark.pedantic(ProviderIndex, args=(providers,), rounds=3, iterations=1)
    assert len(index) == 1_000
