"""E6 — matchmaker scalability: negotiation-cycle cost vs. pool size.

Regenerates the scaling series for one negotiation cycle over pools of
100–2,000 machines with 100 queued requests, in two variants:

* naive O(N·M) constraint evaluation;
* with the attribute index (S7) pre-filtering candidates.

The shape to reproduce: naive cost grows linearly in pool size, the
indexed matcher grows far slower (most providers are pruned before any
full constraint evaluation), and both return identical assignments.

Run as a script for the CI smoke benchmark::

    python benchmarks/bench_scalability.py --smoke [--out DIR]

which executes a reduced sweep without pytest, measures the overhead of
the observability layer (metrics enabled vs. disabled on the same
indexed cycle), and writes ``BENCH_E6_scalability.json``.
"""

import argparse
import os
import sys
import time

if __name__ == "__main__":
    # Allow `python benchmarks/bench_scalability.py` from a bare checkout.
    _src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    if os.path.isdir(_src) and os.path.abspath(_src) not in map(os.path.abspath, sys.path):
        sys.path.insert(0, os.path.abspath(_src))

from repro import obs
from repro.classads import ClassAd
from repro.matchmaking import CycleStats, ProviderIndex, negotiation_cycle
from repro.sim import RngStream

from _report import rows_to_dicts, table, write_bench_json, write_report

ARCHS = ["INTEL", "SPARC", "ALPHA"]
OPSYSES = ["SOLARIS251", "LINUX", "OSF1"]
MEMORIES = [32, 64, 128, 256]


def build_pool(n, rng):
    ads = []
    for i in range(n):
        ad = ClassAd(
            {
                "Type": "Machine",
                "Name": f"m{i}",
                "Arch": rng.choice(ARCHS),
                "OpSys": rng.choice(OPSYSES),
                "Memory": rng.choice(MEMORIES),
                "Disk": rng.randint(50_000, 500_000),
                "KFlops": rng.randint(5_000, 50_000),
                "State": "Unclaimed",
                "ContactAddress": f"startd@m{i}",
            }
        )
        ad.set_expr("Constraint", 'other.Type == "Job"')
        ad.set_expr("Rank", "0")
        ads.append(ad)
    return ads


def build_requests(n, rng):
    requests = {}
    for s in range(4):
        jobs = []
        for i in range(n // 4):
            ad = ClassAd(
                {
                    "Type": "Job",
                    "JobId": s * 1000 + i,
                    "Owner": f"user{s}",
                    "Memory": rng.choice([16, 31, 64]),
                    "ReqArch": rng.choice(ARCHS),
                    "ReqOpSys": rng.choice(OPSYSES),
                    "ContactAddress": f"schedd@user{s}",
                }
            )
            ad.set_expr(
                "Constraint",
                'other.Type == "Machine" && other.Arch == self.ReqArch '
                "&& other.OpSys == self.ReqOpSys && other.Memory >= self.Memory",
            )
            ad.set_expr("Rank", "other.KFlops / 1E3")
            jobs.append(ad)
        requests[f"user{s}"] = jobs
    return requests


def run_cycle(providers, requests, use_index):
    stats = CycleStats()
    index = ProviderIndex(providers) if use_index else None
    start = time.perf_counter()
    assignments = negotiation_cycle(requests, providers, index=index, stats=stats)
    elapsed = time.perf_counter() - start
    return assignments, elapsed, stats


def scaling_sweep(sizes, request_count=100):
    """The scaling series shared by the pytest benchmark and --smoke."""
    rows = []
    for n in sizes:
        rng = RngStream(n, "pool")
        providers = build_pool(n, rng.fork("machines"))
        requests = build_requests(request_count, rng.fork("jobs"))
        naive_assignments, naive_time, _ = run_cycle(providers, requests, False)
        indexed_assignments, indexed_time, stats = run_cycle(
            providers, requests, True
        )
        # Same outcome, cheaper search.
        assert [
            (a.submitter, a.provider.evaluate("Name"))
            for a in naive_assignments
        ] == [
            (a.submitter, a.provider.evaluate("Name"))
            for a in indexed_assignments
        ]
        rows.append(
            (
                n,
                len(naive_assignments),
                f"{1000 * naive_time:.0f}ms",
                f"{1000 * indexed_time:.0f}ms",
                f"{naive_time / indexed_time:.1f}x",
                stats.constraint_evaluations_saved,
            )
        )
    return rows


HEADERS = ["machines", "matched", "naive cycle", "indexed cycle", "speedup", "evals pruned"]


def test_scaling_series(benchmark):
    sizes = [100, 250, 500, 1_000, 2_000]
    start = time.perf_counter()
    rows = benchmark.pedantic(scaling_sweep, args=(sizes,), rounds=1, iterations=1)
    wall = time.perf_counter() - start
    write_report("E6_scalability", table(HEADERS, rows))
    write_bench_json(
        "E6_scalability",
        wall_time_s=wall,
        throughput={"matched_last_cycle": rows[-1][1]},
        data=rows_to_dicts(HEADERS, rows),
    )

    # Shape: index never loses, and wins clearly at scale.
    big = rows[-1]
    speedup = float(big[4].rstrip("x"))
    assert speedup > 2.0


def test_single_cycle_1000_machines(benchmark):
    rng = RngStream(1, "bench")
    providers = build_pool(1_000, rng.fork("m"))
    requests = build_requests(50, rng.fork("j"))
    index = ProviderIndex(providers)

    def cycle():
        return negotiation_cycle(requests, providers, index=index)

    assignments = benchmark.pedantic(cycle, rounds=3, iterations=1)
    assert len(assignments) > 0


def test_index_build_cost(benchmark):
    rng = RngStream(2, "bench")
    providers = build_pool(1_000, rng.fork("m"))
    index = benchmark.pedantic(ProviderIndex, args=(providers,), rounds=3, iterations=1)
    assert len(index) == 1_000


# ---------------------------------------------------------------------------
# CI smoke mode (no pytest, no pytest-benchmark)


def _measure_indexed_cycle(n_machines, n_requests, repeats):
    """Best-of-*repeats* wall time for one indexed negotiation cycle."""
    rng = RngStream(n_machines, "pool")
    providers = build_pool(n_machines, rng.fork("machines"))
    requests = build_requests(n_requests, rng.fork("jobs"))
    best = float("inf")
    matched = 0
    for _ in range(repeats):
        _assignments, elapsed, _stats = run_cycle(providers, requests, True)
        matched = len(_assignments)
        best = min(best, elapsed)
    return best, matched


def _measure_overhead(n_machines, n_requests, repeats):
    """Best-of-*repeats* cycle times: all-off vs metrics-on vs events-on.

    The three configurations are interleaved within each repeat so that
    machine drift (CI neighbours, thermal throttling) biases them
    equally instead of penalising whichever ran last.
    """
    rng = RngStream(n_machines, "pool")
    providers = build_pool(n_machines, rng.fork("machines"))
    requests = build_requests(n_requests, rng.fork("jobs"))
    run_cycle(providers, requests, True)  # warm-up
    best = {"off": float("inf"), "metrics": float("inf"), "events": float("inf")}
    matched = 0
    events_recorded = 0
    for _ in range(repeats):
        obs.disable()
        obs.event_log.disable()
        assignments, elapsed, _ = run_cycle(providers, requests, True)
        matched = len(assignments)
        best["off"] = min(best["off"], elapsed)

        obs.enable()  # metrics on, span tracing and events off
        _, elapsed, _ = run_cycle(providers, requests, True)
        best["metrics"] = min(best["metrics"], elapsed)
        obs.disable()

        obs.event_log.enable()
        seq_before = obs.event_log._seq
        _, elapsed, _ = run_cycle(providers, requests, True)
        best["events"] = min(best["events"], elapsed)
        events_recorded = obs.event_log._seq - seq_before
        obs.event_log.reset()
        obs.event_log.disable()
    return best, matched, events_recorded


def _measure_compile_speedup(n_machines, n_requests, repeats):
    """Best-of-*repeats* indexed cycle: compiled closures vs interpreter.

    Interleaved like :func:`_measure_overhead`.  The compiled runs use a
    warm cache (the steady state of a long-lived matchmaker); the
    interpreter runs are the ``REPRO_NO_COMPILE=1`` behaviour.
    """
    from repro.classads import compile as compiled_path

    rng = RngStream(n_machines, "pool")
    providers = build_pool(n_machines, rng.fork("machines"))
    requests = build_requests(n_requests, rng.fork("jobs"))
    enabled_before = compiled_path.compilation_enabled()
    best = {"compiled": float("inf"), "interpreted": float("inf")}
    try:
        compiled_path.set_compilation(True)
        run_cycle(providers, requests, True)  # warm-up + cache fill
        for _ in range(repeats):
            compiled_path.set_compilation(True)
            _, elapsed, _ = run_cycle(providers, requests, True)
            best["compiled"] = min(best["compiled"], elapsed)
            compiled_path.set_compilation(False)
            _, elapsed, _ = run_cycle(providers, requests, True)
            best["interpreted"] = min(best["interpreted"], elapsed)
    finally:
        compiled_path.set_compilation(enabled_before)
    return best


def run_smoke(out_dir=None, machines=500, requests=100, repeats=5):
    """The CI smoke benchmark: a reduced sweep + instrumentation overhead.

    Returns the written BENCH_*.json path.  Two overhead figures compare
    the same indexed negotiation cycle against the all-off baseline:

    * metrics enabled (span tracing stays off, as in a production pool);
    * the forensic event log enabled, ring sink only.

    The acceptance bar for each is <= 5%.  A recorded ``events.jsonl``
    (one cycle, file sink on) is left next to the bench JSON so CI can
    validate the ``repro-events/1`` stream and run ``repro obs report``.
    """
    from _report import results_dir

    sizes = [100, 250, machines]
    start = time.perf_counter()
    rows = scaling_sweep(sizes, request_count=requests)
    sweep_wall = time.perf_counter() - start

    obs.disable()
    obs.reset()
    best, matched, events_recorded = _measure_overhead(machines, requests, repeats)
    disabled_s = best["off"]
    enabled_s = best["metrics"]
    events_s = best["events"]
    compile_best = _measure_compile_speedup(machines, requests, repeats)
    compile_speedup = compile_best["interpreted"] / compile_best["compiled"]
    snapshot_matched = obs.metrics.get("matchmaker.matched").total
    obs.disable()

    # One recorded cycle with the file sink on — the CI artifact that
    # `repro obs report` and the JSONL validation step consume.
    events_path = os.path.join(results_dir(out_dir), "events.jsonl")
    obs.event_log.enable()
    obs.event_log.open_file(events_path)
    _measure_indexed_cycle(machines, requests, 1)
    obs.event_log.close_file()
    obs.event_log.reset()
    obs.event_log.disable()

    overhead_pct = 100.0 * (enabled_s - disabled_s) / disabled_s
    events_overhead_pct = 100.0 * (events_s - disabled_s) / disabled_s
    throughput = {
        "matches_per_s_metrics_off": matched / disabled_s,
        "matches_per_s_metrics_on": matched / enabled_s,
        "matches_per_s_events_on": matched / events_s,
        "obs_overhead_pct": overhead_pct,
        "events_overhead_pct": events_overhead_pct,
        "cycle_s_compiled": compile_best["compiled"],
        "cycle_s_interpreted": compile_best["interpreted"],
        "compile_cycle_speedup": compile_speedup,
    }
    report = table(HEADERS, rows) + (
        f"\n\nindexed cycle ({machines} machines, {requests} requests,"
        f" best of {repeats}):"
        f"\n  all off     : {1000 * disabled_s:.1f}ms"
        f"\n  metrics on  : {1000 * enabled_s:.1f}ms"
        f" (overhead {overhead_pct:+.1f}%)"
        f"\n  events on   : {1000 * events_s:.1f}ms"
        f" (overhead {events_overhead_pct:+.1f}%,"
        f" {events_recorded} events/cycle)"
        f"\n  interpreter : {1000 * compile_best['interpreted']:.1f}ms"
        f" (compiled closures are {compile_speedup:.2f}x faster)"
    )
    write_report("E6_scalability_smoke", report, out_dir=out_dir)
    path = write_bench_json(
        "E6_scalability",
        wall_time_s=sweep_wall,
        throughput=throughput,
        data=rows_to_dicts(HEADERS, rows),
        extra={"mode": "smoke", "repeats": repeats},
        out_dir=out_dir,
    )
    # The enabled run must actually have measured something.
    assert snapshot_matched >= matched * repeats, "metrics did not record the run"
    assert events_recorded > 0, "the event log did not record the run"
    assert events_overhead_pct <= 5.0, (
        f"forensic event log costs {events_overhead_pct:.1f}% on the smoke"
        " cycle; the acceptance bar is 5%"
    )
    assert compile_speedup >= 1.2, (
        f"compiled-closure cycle is only {compile_speedup:.2f}x the"
        " interpreter on the smoke cycle; expected a clear win (>= 1.2x)"
    )
    return path


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="run the reduced CI smoke sweep"
    )
    parser.add_argument(
        "--out", default=None, help="results directory (default: benchmarks/results)"
    )
    parser.add_argument("--machines", type=int, default=500)
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("only --smoke mode is supported as a script; use pytest otherwise")
    run_smoke(
        out_dir=args.out,
        machines=args.machines,
        requests=args.requests,
        repeats=args.repeats,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
