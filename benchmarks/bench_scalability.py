"""E6 — matchmaker scalability: negotiation-cycle cost vs. pool size.

Regenerates the scaling series for one negotiation cycle over pools of
100–2,000 machines with 100 queued requests, in two variants:

* naive O(N·M) constraint evaluation;
* with the attribute index (S7) pre-filtering candidates.

The shape to reproduce: naive cost grows linearly in pool size, the
indexed matcher grows far slower (most providers are pruned before any
full constraint evaluation), and both return identical assignments.

Run as a script for the CI smoke benchmark::

    python benchmarks/bench_scalability.py --smoke [--out DIR]

which executes a reduced sweep without pytest, measures the overhead of
the observability layer (metrics enabled vs. disabled on the same
indexed cycle), and writes ``BENCH_E6_scalability.json``.
"""

import argparse
import os
import sys
import time

if __name__ == "__main__":
    # Allow `python benchmarks/bench_scalability.py` from a bare checkout.
    _src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    if os.path.isdir(_src) and os.path.abspath(_src) not in map(os.path.abspath, sys.path):
        sys.path.insert(0, os.path.abspath(_src))

from repro import obs
from repro.classads import ClassAd
from repro.matchmaking import (
    CycleStats,
    Matchmaker,
    ProviderIndex,
    batching_enabled,
    negotiation_cycle,
    set_batching,
)
from repro.matchmaking import parallel as par
from repro.sim import RngStream

from _report import rows_to_dicts, table, write_bench_json, write_report

ARCHS = ["INTEL", "SPARC", "ALPHA"]
OPSYSES = ["SOLARIS251", "LINUX", "OSF1"]
MEMORIES = [32, 64, 128, 256]


def build_pool(n, rng):
    ads = []
    for i in range(n):
        ad = ClassAd(
            {
                "Type": "Machine",
                "Name": f"m{i}",
                "Arch": rng.choice(ARCHS),
                "OpSys": rng.choice(OPSYSES),
                "Memory": rng.choice(MEMORIES),
                "Disk": rng.randint(50_000, 500_000),
                "KFlops": rng.randint(5_000, 50_000),
                "State": "Unclaimed",
                "ContactAddress": f"startd@m{i}",
            }
        )
        ad.set_expr("Constraint", 'other.Type == "Job"')
        ad.set_expr("Rank", "0")
        ads.append(ad)
    return ads


def build_requests(n, rng, distinct=None):
    """Queued job ads for 4 submitters.

    *distinct* bounds the number of distinct (Memory, ReqArch, ReqOpSys)
    combinations — the paper's Section 5 regularity: a real queue is
    thousands of jobs carrying a handful of Requirements variants.  None
    keeps the unconstrained draw used by the scaling series.
    """
    combos = None
    if distinct is not None:
        combos = [
            (rng.choice([16, 31, 64]), rng.choice(ARCHS), rng.choice(OPSYSES))
            for _ in range(distinct)
        ]
    requests = {}
    for s in range(4):
        jobs = []
        for i in range(n // 4):
            memory, arch, opsys = (
                rng.choice(combos)
                if combos is not None
                else (rng.choice([16, 31, 64]), rng.choice(ARCHS), rng.choice(OPSYSES))
            )
            ad = ClassAd(
                {
                    "Type": "Job",
                    "JobId": s * 1000 + i,
                    "Owner": f"user{s}",
                    "Memory": memory,
                    "ReqArch": arch,
                    "ReqOpSys": opsys,
                    "ContactAddress": f"schedd@user{s}",
                }
            )
            ad.set_expr(
                "Constraint",
                'other.Type == "Machine" && other.Arch == self.ReqArch '
                "&& other.OpSys == self.ReqOpSys && other.Memory >= self.Memory",
            )
            ad.set_expr("Rank", "other.KFlops / 1E3")
            jobs.append(ad)
        requests[f"user{s}"] = jobs
    return requests


def run_cycle(providers, requests, use_index):
    stats = CycleStats()
    index = ProviderIndex(providers) if use_index else None
    start = time.perf_counter()
    assignments = negotiation_cycle(requests, providers, index=index, stats=stats)
    elapsed = time.perf_counter() - start
    return assignments, elapsed, stats


def scaling_sweep(sizes, request_count=100):
    """The scaling series shared by the pytest benchmark and --smoke."""
    rows = []
    for n in sizes:
        rng = RngStream(n, "pool")
        providers = build_pool(n, rng.fork("machines"))
        requests = build_requests(request_count, rng.fork("jobs"))
        naive_assignments, naive_time, _ = run_cycle(providers, requests, False)
        indexed_assignments, indexed_time, stats = run_cycle(
            providers, requests, True
        )
        # Same outcome, cheaper search.
        assert [
            (a.submitter, a.provider.evaluate("Name"))
            for a in naive_assignments
        ] == [
            (a.submitter, a.provider.evaluate("Name"))
            for a in indexed_assignments
        ]
        rows.append(
            (
                n,
                len(naive_assignments),
                f"{1000 * naive_time:.0f}ms",
                f"{1000 * indexed_time:.0f}ms",
                f"{naive_time / indexed_time:.1f}x",
                stats.constraint_evaluations_saved,
            )
        )
    return rows


HEADERS = ["machines", "matched", "naive cycle", "indexed cycle", "speedup", "evals pruned"]


def test_scaling_series(benchmark):
    sizes = [100, 250, 500, 1_000, 2_000]
    start = time.perf_counter()
    rows = benchmark.pedantic(scaling_sweep, args=(sizes,), rounds=1, iterations=1)
    wall = time.perf_counter() - start
    write_report("E6_scalability", table(HEADERS, rows))
    write_bench_json(
        "E6_scalability",
        wall_time_s=wall,
        throughput={"matched_last_cycle": rows[-1][1]},
        data=rows_to_dicts(HEADERS, rows),
    )

    # Shape: index never loses, and wins clearly at scale.
    big = rows[-1]
    speedup = float(big[4].rstrip("x"))
    assert speedup > 2.0


def test_single_cycle_1000_machines(benchmark):
    rng = RngStream(1, "bench")
    providers = build_pool(1_000, rng.fork("m"))
    requests = build_requests(50, rng.fork("j"))
    index = ProviderIndex(providers)

    def cycle():
        return negotiation_cycle(requests, providers, index=index)

    assignments = benchmark.pedantic(cycle, rounds=3, iterations=1)
    assert len(assignments) > 0


def test_index_build_cost(benchmark):
    rng = RngStream(2, "bench")
    providers = build_pool(1_000, rng.fork("m"))
    index = benchmark.pedantic(ProviderIndex, args=(providers,), rounds=3, iterations=1)
    assert len(index) == 1_000


# ---------------------------------------------------------------------------
# CI smoke mode (no pytest, no pytest-benchmark)


def _measure_indexed_cycle(n_machines, n_requests, repeats):
    """Best-of-*repeats* wall time for one indexed negotiation cycle."""
    rng = RngStream(n_machines, "pool")
    providers = build_pool(n_machines, rng.fork("machines"))
    requests = build_requests(n_requests, rng.fork("jobs"))
    best = float("inf")
    matched = 0
    for _ in range(repeats):
        _assignments, elapsed, _stats = run_cycle(providers, requests, True)
        matched = len(_assignments)
        best = min(best, elapsed)
    return best, matched


def _measure_overhead(n_machines, n_requests, repeats):
    """Best-of-*repeats* cycle times: all-off vs metrics-on vs events-on.

    The three configurations are interleaved within each repeat so that
    machine drift (CI neighbours, thermal throttling) biases them
    equally instead of penalising whichever ran last.

    Measured on the *unbatched* cycle: the <= 5% instrumentation bar was
    set against the PR 2 per-pairing engine, and request batching would
    flatter the baseline (fewer evaluations) while the event log still
    replays every per-pairing rejection — the ratio would measure
    batching, not instrumentation.
    """
    rng = RngStream(n_machines, "pool")
    providers = build_pool(n_machines, rng.fork("machines"))
    requests = build_requests(n_requests, rng.fork("jobs"))
    batching_before = batching_enabled()
    set_batching(False)
    try:
        run_cycle(providers, requests, True)  # warm-up
        best = {
            "off": float("inf"),
            "metrics": float("inf"),
            "events": float("inf"),
            "tracing": float("inf"),
        }
        ratios = {
            "metrics": float("inf"),
            "events": float("inf"),
            "tracing": float("inf"),
        }
        matched = 0
        events_recorded = 0
        for _ in range(repeats):
            obs.disable()
            obs.event_log.disable()
            assignments, off_elapsed, _ = run_cycle(providers, requests, True)
            matched = len(assignments)
            best["off"] = min(best["off"], off_elapsed)

            obs.enable()  # metrics on, span tracing and events off
            _, elapsed, _ = run_cycle(providers, requests, True)
            best["metrics"] = min(best["metrics"], elapsed)
            # Overhead is judged per repeat against the adjacent baseline
            # run, then the minimum ratio wins: adjacent runs share the
            # same machine conditions, so drift cancels instead of
            # masquerading as instrumentation cost.
            ratios["metrics"] = min(ratios["metrics"], elapsed / off_elapsed)
            obs.disable()

            obs.event_log.enable()
            seq_before = obs.event_log._seq
            _, elapsed, _ = run_cycle(providers, requests, True)
            best["events"] = min(best["events"], elapsed)
            ratios["events"] = min(ratios["events"], elapsed / off_elapsed)
            events_recorded = obs.event_log._seq - seq_before
            obs.event_log.reset()
            obs.event_log.disable()

            # Tracing-enabled config: the full recorded-chaos stack —
            # forensic events AND the causal tracer — plus the tracer's
            # actual per-match work in a traced negotiation: one
            # negotiate.match span per assignment (the Negotiator's
            # stitch; send/recv spans are per-message, not per-cycle,
            # so they belong to the network layer's budget).
            obs.event_log.enable()
            obs.causal_log.enable()
            root = obs.causal_log.start_trace("bench.cycle", "cycle")
            traced_assignments, cycle_elapsed, _ = run_cycle(providers, requests, True)
            t0 = time.perf_counter()
            for assignment in traced_assignments:
                obs.causal_log.span(
                    "negotiate.match",
                    parent=root,
                    submitter=assignment.submitter,
                )
            # run_cycle times the cycle alone (index build excluded), so
            # add the span loop on the same basis as off_elapsed.
            elapsed = cycle_elapsed + (time.perf_counter() - t0)
            best["tracing"] = min(best["tracing"], elapsed)
            ratios["tracing"] = min(ratios["tracing"], elapsed / off_elapsed)
            obs.causal_log.reset()
            obs.causal_log.disable()
            obs.event_log.reset()
            obs.event_log.disable()
    finally:
        set_batching(batching_before)
    return best, ratios, matched, events_recorded


def _measure_compile_speedup(n_machines, n_requests, repeats):
    """Best-of-*repeats* indexed cycle: compiled closures vs interpreter.

    Interleaved like :func:`_measure_overhead`.  The compiled runs use a
    warm cache (the steady state of a long-lived matchmaker); the
    interpreter runs are the ``REPRO_NO_COMPILE=1`` behaviour.
    """
    from repro.classads import compile as compiled_path

    rng = RngStream(n_machines, "pool")
    providers = build_pool(n_machines, rng.fork("machines"))
    requests = build_requests(n_requests, rng.fork("jobs"))
    enabled_before = compiled_path.compilation_enabled()
    batching_before = batching_enabled()
    set_batching(False)  # isolate the evaluator, as the PR 3 bar did
    best = {"compiled": float("inf"), "interpreted": float("inf")}
    try:
        compiled_path.set_compilation(True)
        run_cycle(providers, requests, True)  # warm-up + cache fill
        for _ in range(repeats):
            compiled_path.set_compilation(True)
            _, elapsed, _ = run_cycle(providers, requests, True)
            best["compiled"] = min(best["compiled"], elapsed)
            compiled_path.set_compilation(False)
            _, elapsed, _ = run_cycle(providers, requests, True)
            best["interpreted"] = min(best["interpreted"], elapsed)
    finally:
        compiled_path.set_compilation(enabled_before)
        set_batching(batching_before)
    return best


def _measure_batch_speedup(n_machines, n_requests, repeats, distinct=12):
    """Best-of-*repeats* end-to-end cycle: PR 4 vs the PR 3 baseline.

    The baseline is exactly what ``negotiate(use_index=True)`` cost
    before this PR: a fresh ``ProviderIndex`` built from the provider
    list, then an unbatched cycle.  The batched run reuses a persistent
    index (steady state of a maintained pool) and the equivalence-class
    engine.  The request mix is the regular one (*distinct* Requirements
    variants) that the batching lever targets.  Both variants are
    interleaved per repeat and must produce identical assignments.
    """
    rng = RngStream(n_machines, "batch")
    providers = build_pool(n_machines, rng.fork("machines"))
    requests = build_requests(n_requests, rng.fork("jobs"), distinct=distinct)
    persistent = ProviderIndex(providers)
    batching_before = batching_enabled()
    best = {"unbatched": float("inf"), "batched": float("inf")}
    classes = 0
    try:
        set_batching(True)
        negotiation_cycle(requests, providers, index=persistent)  # warm-up
        for _ in range(repeats):
            set_batching(False)
            start = time.perf_counter()
            index = ProviderIndex(providers)  # PR 3 rebuilt this per cycle
            baseline = negotiation_cycle(requests, providers, index=index)
            best["unbatched"] = min(best["unbatched"], time.perf_counter() - start)

            set_batching(True)
            stats = CycleStats()
            start = time.perf_counter()
            batched = negotiation_cycle(
                requests, providers, index=persistent, stats=stats
            )
            best["batched"] = min(best["batched"], time.perf_counter() - start)
            classes = stats.request_classes
            assert [
                (a.submitter, a.provider.evaluate("Name")) for a in baseline
            ] == [(a.submitter, a.provider.evaluate("Name")) for a in batched]
    finally:
        set_batching(batching_before)
    return best, classes


def _measure_parallel_speedup(n_machines, n_requests, repeats, workers=4):
    """Best-of-*repeats* batched cycle: PR 7 worker pool vs serial.

    The workload is the one the parallel tier targets: a big unindexed
    pool (every class scores every provider) with the regular request
    mix, so per-class pair counts sit far above the fallback threshold.
    Serial and parallel runs are interleaved per repeat and must produce
    identical assignments.  Returns (best, speedup).
    """
    rng = RngStream(n_machines, "parallel")
    providers = build_pool(n_machines, rng.fork("machines"))
    requests = build_requests(n_requests, rng.fork("jobs"), distinct=12)
    batching_before = batching_enabled()
    workers_before = par.scoring_workers()
    best = {"serial": float("inf"), "parallel": float("inf")}
    try:
        set_batching(True)
        par.set_scoring_workers(workers)
        # Warm-up both paths: spawns the pool, ships the provider
        # chunks, and fills the compile caches on every core.
        negotiation_cycle(requests, providers, parallel=True)
        negotiation_cycle(requests, providers, parallel=False)
        for _ in range(repeats):
            start = time.perf_counter()
            serial = negotiation_cycle(requests, providers, parallel=False)
            best["serial"] = min(best["serial"], time.perf_counter() - start)

            start = time.perf_counter()
            parallel = negotiation_cycle(requests, providers, parallel=True)
            best["parallel"] = min(best["parallel"], time.perf_counter() - start)
            assert [
                (a.submitter, a.provider.evaluate("Name")) for a in serial
            ] == [(a.submitter, a.provider.evaluate("Name")) for a in parallel]
    finally:
        set_batching(batching_before)
        par.set_scoring_workers(workers_before)
        par.shutdown_scoring_pool()
    return best, best["serial"] / best["parallel"]


def _measure_parallel_fallback_overhead(n_machines, n_requests, repeats):
    """Per-cycle cost of *configured but declined* parallelism.

    Two degraded shapes, each interleaved against an adjacent baseline
    cycle with parallelism disabled outright (min paired ratio, as in
    :func:`_measure_overhead`):

    * workers configured, every class below the pair threshold;
    * the ``REPRO_NO_PARALLEL`` kill-switch.

    Both must stay within the 5% bar: small pools pay nothing for the
    parallel plumbing they don't use.
    """
    rng = RngStream(n_machines, "fallback")
    providers = build_pool(n_machines, rng.fork("machines"))
    requests = build_requests(n_requests, rng.fork("jobs"), distinct=12)
    batching_before = batching_enabled()
    workers_before = par.scoring_workers()
    threshold_before = par.pair_threshold()
    ratios = {"threshold": float("inf"), "killswitch": float("inf")}
    try:
        set_batching(True)
        par.set_scoring_workers(2)
        par.set_pair_threshold(10 * n_machines)  # nothing clears the bar
        negotiation_cycle(requests, providers)  # warm-up
        for _ in range(repeats):
            start = time.perf_counter()
            negotiation_cycle(requests, providers, parallel=False)
            off_elapsed = time.perf_counter() - start

            start = time.perf_counter()
            negotiation_cycle(requests, providers, parallel=True)
            elapsed = time.perf_counter() - start
            ratios["threshold"] = min(ratios["threshold"], elapsed / off_elapsed)

            par.set_parallelism(False)
            start = time.perf_counter()
            negotiation_cycle(requests, providers)
            elapsed = time.perf_counter() - start
            par.set_parallelism(True)
            ratios["killswitch"] = min(ratios["killswitch"], elapsed / off_elapsed)
    finally:
        set_batching(batching_before)
        par.set_pair_threshold(threshold_before)
        par.set_scoring_workers(workers_before)
        par.shutdown_scoring_pool()
    return ratios


def _steady_state_rebuilds(n_machines, n_requests, cycles=3):
    """Full index rebuilds observed across *cycles* steady-state
    negotiations on a live matchmaker (periodic re-advertisement of
    every machine between cycles).  The delta-maintained index must
    absorb all of it: only the initial build may appear."""
    rng = RngStream(n_machines, "steady")
    requests = build_requests(n_requests, rng.fork("jobs"), distinct=12)
    mm = Matchmaker()
    ad_rng = rng.fork("machines")
    for ad in build_pool(n_machines, ad_rng):
        mm.advertise(str(ad.evaluate("Name")), ad)
    mm.negotiate(requests, use_index=True)  # builds the persistent index
    mindex = mm.provider_index()
    build_count = mindex.index.rebuilds
    for _ in range(cycles):
        for ad in build_pool(n_machines, ad_rng):  # soft-state refresh
            mm.advertise(str(ad.evaluate("Name")), ad)
        mm.negotiate(requests, use_index=True)
    assert mm.provider_index() is mindex, "persistent index was dropped"
    return mindex.index.rebuilds - build_count


def run_smoke(out_dir=None, machines=500, requests=100, repeats=5):
    """The CI smoke benchmark: a reduced sweep + instrumentation overhead.

    Returns the written BENCH_*.json path.  Two overhead figures compare
    the same indexed negotiation cycle against the all-off baseline:

    * metrics enabled (span tracing stays off, as in a production pool);
    * the forensic event log enabled, ring sink only.

    The acceptance bar for each is <= 5%.  A recorded ``events.jsonl``
    (one cycle, file sink on) is left next to the bench JSON so CI can
    validate the ``repro-events/1`` stream and run ``repro obs report``.
    """
    from _report import results_dir

    sizes = [100, 250, machines]
    start = time.perf_counter()
    rows = scaling_sweep(sizes, request_count=requests)
    sweep_wall = time.perf_counter() - start

    obs.disable()
    obs.reset()
    best, ratios, matched, events_recorded = _measure_overhead(
        machines, requests, repeats
    )
    disabled_s = best["off"]
    enabled_s = best["metrics"]
    events_s = best["events"]
    tracing_s = best["tracing"]
    compile_best = _measure_compile_speedup(machines, requests, repeats)
    compile_speedup = compile_best["interpreted"] / compile_best["compiled"]
    snapshot_matched = obs.metrics.get("matchmaker.matched").total
    obs.disable()
    batch_best, batch_classes = _measure_batch_speedup(
        machines, 2 * requests, repeats
    )
    batch_speedup = batch_best["unbatched"] / batch_best["batched"]
    steady_rebuilds = _steady_state_rebuilds(machines, requests)

    # PR 7: the multi-core scoring tier.  The speedup bar (>= 1.5x at
    # N >= 5000 providers, 4 workers) needs 4 real cores to mean
    # anything — on smaller hosts only the fallback-overhead bar runs.
    cores = os.cpu_count() or 1
    parallel_best = None
    parallel_speedup = None
    parallel_machines = max(5000, machines)
    if cores >= 4:
        parallel_best, parallel_speedup = _measure_parallel_speedup(
            parallel_machines, 2 * requests, min(repeats, 3), workers=4
        )
    fallback_ratios = _measure_parallel_fallback_overhead(
        machines, requests, repeats
    )
    fallback_overhead_pct = max(
        0.0, 100.0 * (max(fallback_ratios.values()) - 1.0)
    )

    # One recorded cycle with the file sink on — the CI artifact that
    # `repro obs report` and the JSONL validation step consume.
    events_path = os.path.join(results_dir(out_dir), "events.jsonl")
    obs.event_log.enable()
    obs.event_log.open_file(events_path)
    _measure_indexed_cycle(machines, requests, 1)
    obs.event_log.close_file()
    obs.event_log.reset()
    obs.event_log.disable()

    # A ratio below 1.0 means the instrumented run beat its adjacent
    # baseline — overhead indistinguishable from zero, so clamp there
    # rather than reporting a negative cost.
    overhead_pct = max(0.0, 100.0 * (ratios["metrics"] - 1.0))
    events_overhead_pct = max(0.0, 100.0 * (ratios["events"] - 1.0))
    tracing_overhead_pct = max(0.0, 100.0 * (ratios["tracing"] - 1.0))
    throughput = {
        "matches_per_s_metrics_off": matched / disabled_s,
        "matches_per_s_metrics_on": matched / enabled_s,
        "matches_per_s_events_on": matched / events_s,
        "matches_per_s_tracing_on": matched / tracing_s,
        "obs_overhead_pct": overhead_pct,
        "events_overhead_pct": events_overhead_pct,
        "tracing_overhead_pct": tracing_overhead_pct,
        "cycle_s_compiled": compile_best["compiled"],
        "cycle_s_interpreted": compile_best["interpreted"],
        "compile_cycle_speedup": compile_speedup,
        "cycle_s_unbatched": batch_best["unbatched"],
        "cycle_s_batched": batch_best["batched"],
        "batch_cycle_speedup": batch_speedup,
        "batch_request_classes": batch_classes,
        "steady_state_index_rebuilds": steady_rebuilds,
        "parallel_fallback_overhead_pct": fallback_overhead_pct,
    }
    if parallel_speedup is not None:
        throughput["cycle_s_serial_batched"] = parallel_best["serial"]
        throughput["cycle_s_parallel"] = parallel_best["parallel"]
        throughput["parallel_cycle_speedup"] = parallel_speedup
        throughput["parallel_workers"] = 4
    report = table(HEADERS, rows) + (
        f"\n\nindexed cycle ({machines} machines, {requests} requests,"
        f" best of {repeats}):"
        f"\n  all off     : {1000 * disabled_s:.1f}ms"
        f"\n  metrics on  : {1000 * enabled_s:.1f}ms"
        f" (overhead {overhead_pct:+.1f}%)"
        f"\n  events on   : {1000 * events_s:.1f}ms"
        f" (overhead {events_overhead_pct:+.1f}%,"
        f" {events_recorded} events/cycle)"
        f"\n  tracing on  : {1000 * tracing_s:.1f}ms"
        f" (overhead {tracing_overhead_pct:+.1f}%, events + causal spans)"
        f"\n  interpreter : {1000 * compile_best['interpreted']:.1f}ms"
        f" (compiled closures are {compile_speedup:.2f}x faster)"
        f"\n\nbatched engine ({machines} machines, {2 * requests} requests,"
        f" 12 Requirements variants, best of {repeats}):"
        f"\n  PR 3 baseline (rebuild + unbatched): {1000 * batch_best['unbatched']:.1f}ms"
        f"\n  PR 4 (persistent index + batched)  : {1000 * batch_best['batched']:.1f}ms"
        f" ({batch_speedup:.2f}x, {batch_classes} request classes)"
        f"\n  steady-state full index rebuilds   : {steady_rebuilds}"
    )
    if parallel_speedup is not None:
        report += (
            f"\n\nparallel scoring ({parallel_machines} machines,"
            f" {2 * requests} requests, 4 workers, best of {min(repeats, 3)}):"
            f"\n  serial batched : {1000 * parallel_best['serial']:.1f}ms"
            f"\n  4-worker pool  : {1000 * parallel_best['parallel']:.1f}ms"
            f" ({parallel_speedup:.2f}x)"
            f"\n  declined-fallback overhead: {fallback_overhead_pct:+.1f}%"
        )
    else:
        report += (
            f"\n\nparallel scoring: speedup not measured ({cores} cores"
            f" < 4); declined-fallback overhead {fallback_overhead_pct:+.1f}%"
        )
    write_report("E6_scalability_smoke", report, out_dir=out_dir)
    path = write_bench_json(
        "E6_scalability",
        wall_time_s=sweep_wall,
        throughput=throughput,
        data=rows_to_dicts(HEADERS, rows),
        extra={"mode": "smoke", "repeats": repeats},
        out_dir=out_dir,
    )
    # The enabled run must actually have measured something.
    assert snapshot_matched >= matched * repeats, "metrics did not record the run"
    assert events_recorded > 0, "the event log did not record the run"
    # The 5% bar is calibrated to the CI workload: per-event cost is
    # fixed (~2us) while the cycle shrinks with the pool, so a toy-sized
    # --machines run measures the ratio of two small numbers, not the
    # instrumentation.  Only hold the bar at (or above) CI scale.
    if machines >= 250:
        assert events_overhead_pct <= 5.0, (
            f"forensic event log costs {events_overhead_pct:.1f}% on the smoke"
            " cycle; the acceptance bar is 5%"
        )
        assert tracing_overhead_pct <= 5.0, (
            f"tracing-enabled negotiation (events + causal spans) costs"
            f" {tracing_overhead_pct:.1f}% on the smoke cycle; the"
            " acceptance bar is 5%"
        )
    assert compile_speedup >= 1.2, (
        f"compiled-closure cycle is only {compile_speedup:.2f}x the"
        " interpreter on the smoke cycle; expected a clear win (>= 1.2x)"
    )
    assert batch_speedup >= 1.5, (
        f"batched negotiation is only {batch_speedup:.2f}x the PR 3"
        " compiled baseline on the regular pool; the acceptance bar is 1.5x"
    )
    assert steady_rebuilds == 0, (
        f"{steady_rebuilds} full index rebuilds during steady-state cycles;"
        " the delta-maintained index must absorb refresh traffic"
    )
    if machines >= 250:
        assert fallback_overhead_pct <= 5.0, (
            f"declined parallelism costs {fallback_overhead_pct:.1f}% on the"
            " smoke cycle; the fallback bar is 5%"
        )
    if parallel_speedup is not None:
        assert parallel_speedup >= 1.5, (
            f"4-worker scoring is only {parallel_speedup:.2f}x the serial"
            f" batched cycle at {parallel_machines} providers; the"
            " acceptance bar is 1.5x"
        )
    return path


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="run the reduced CI smoke sweep"
    )
    parser.add_argument(
        "--out", default=None, help="results directory (default: benchmarks/results)"
    )
    parser.add_argument("--machines", type=int, default=500)
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)
    if not args.smoke:
        parser.error("only --smoke mode is supported as a script; use pytest otherwise")
    run_smoke(
        out_dir=args.out,
        machines=args.machines,
        requests=args.requests,
        repeats=args.repeats,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
