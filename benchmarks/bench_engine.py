"""Substrate benchmark — the DES kernel and message-fabric fast path.

After PRs 3–8 piled differential suites, chaos matrices, and scaling
benchmarks onto the simulator, the kernel itself became the cost floor
under every other number in this repo.  This benchmark measures that
floor: the fast bucketed kernel (the default) against the reference
heap (``REPRO_NO_FASTKERNEL=1``), on the workloads that dominate real
runs:

* **burst dispatch** — an advertising-burst-shaped load (thousands of
  same-instant events scheduled from a periodic callback); the gated
  figure ``engine_event_throughput`` is the fast/reference events-per-
  second ratio here, asserted >= 2x;
* **timer wheel** — many interleaved periodic tasks at coprime
  intervals (heap-dominated, informational);
* **cancel churn** — schedule-then-cancel cycles, the claim-timeout
  shape (informational);
* **end-to-end pool** — wall time of a small full CondorPool run under
  each kernel (``pool_wall_speedup``, informational: the pool's wall
  time is dominated by ClassAd construction, so this ratio sits inside
  measurement noise — see the Substrate section of PERFORMANCE.md);
* **dispatch anatomy** — walks the pending queue of an armed
  Retransmitter + chaos plan and asserts every entry's callback is
  closure-free (the allocation regression this PR removes).

The raw fast-kernel events/s figure is also published as the
``sim.events_per_wall_second`` gauge (set after measurement — enabling
metrics during it would disable the very fast path under test).

Run as a script for the CI smoke benchmark::

    python benchmarks/bench_engine.py --smoke [--out DIR]

which writes ``BENCH_ENGINE_substrate.json`` for the regression gate
(``check_regression.py`` holds ``engine_event_throughput``).
"""

import argparse
import functools
import gc
import os
import sys
import time

if __name__ == "__main__":
    # Allow `python benchmarks/bench_engine.py` from a bare checkout.
    _src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    if os.path.isdir(_src) and os.path.abspath(_src) not in map(os.path.abspath, sys.path):
        sys.path.insert(0, os.path.abspath(_src))

from repro import obs
from repro.condor import CondorPool, Job, MachineSpec, PoissonOwner, PoolConfig
from repro.protocols.retry import BackoffPolicy, Retransmitter
from repro.sim import Network, RngStream, Simulator, set_fast_kernel
from repro.sim.chaos import ChaosController, ChaosPlan, CrashWindow, PartitionWindow

from _report import table, write_bench_json, write_report


def _noop(arg=None):
    pass


# -- workloads --------------------------------------------------------------


class _Fanout:
    """Periodic callback scheduling one same-instant burst per round —
    the advertising-period shape the bucket was built for."""

    def __init__(self, sim, per_round):
        self.sim = sim
        self.per_round = per_round

    def fire(self):
        schedule = self.sim.schedule
        for _ in range(self.per_round):
            schedule(0.5, _noop, None)


def _timed_drain(sim, horizon):
    """run_until under a quiesced GC; returns (events/s, events)."""
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        sim.run_until(horizon)
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    return sim.events_processed / wall, sim.events_processed


def bench_burst(fast, rounds, per_round):
    sim = Simulator(fast=fast)
    fanout = _Fanout(sim, per_round)
    for r in range(rounds):
        sim.schedule_at(float(r), fanout.fire)
    rate, events = _timed_drain(sim, float(rounds) + 1.0)
    assert events == rounds * (per_round + 1), "burst workload lost events"
    return rate


def bench_timer_wheel(fast, tasks, horizon):
    sim = Simulator(fast=fast)
    for i in range(tasks):
        sim.every(1.0 + (i % 97) / 97.0, _noop)
    rate, _ = _timed_drain(sim, horizon)
    return rate


def bench_cancel_churn(fast, rounds, per_round):
    """The claim-timeout shape: most scheduled events get cancelled."""
    sim = Simulator(fast=fast)
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        for _ in range(rounds):
            handles = [sim.schedule(1.0, _noop, None) for _ in range(per_round)]
            for handle in handles[: per_round * 3 // 4]:
                sim.cancel(handle)
            sim.run_until(sim.now + 2.0)
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    return rounds * per_round / wall  # scheduled ops (fired + cancelled) per second


def bench_pool(fast, horizon=15_000.0):
    """Wall time of a small end-to-end pool run under one kernel."""
    set_fast_kernel(fast)
    try:
        specs = [MachineSpec(name=f"m{i}") for i in range(8)]
        owner_models = {
            spec.name: PoissonOwner(mean_active=600.0, mean_idle=900.0)
            for spec in specs
        }
        pool = CondorPool(
            specs,
            PoolConfig(
                seed=17,
                advertise_interval=60.0,
                negotiation_interval=60.0,
                network_loss=0.02,
                network_jitter=0.2,
            ),
            owner_models=owner_models,
        )
        for i in range(24):
            pool.submit(Job(owner="alice" if i % 2 else "bob", total_work=700.0))
        gc.collect()
        start = time.perf_counter()
        pool.run_until(horizon)
        wall = time.perf_counter() - start
        return wall, pool.sim.events_processed, pool.metrics.jobs_completed
    finally:
        set_fast_kernel(None)


# -- dispatch anatomy -------------------------------------------------------


def _assert_closure_free(sim):
    """Every pending entry's callback must be a plain function, bound
    method, or partial of one — never a per-event closure or lambda."""
    entries = [e for e in list(sim._heap) + list(sim._bucket) if e[2] is not None]
    assert entries, "anatomy check armed nothing"
    for entry in entries:
        fn = entry[2]
        if isinstance(fn, functools.partial):
            fn = fn.func
        code_holder = getattr(fn, "__func__", fn)
        assert getattr(code_holder, "__name__", "") != "<lambda>", (
            f"pending event carries a lambda: {fn!r}"
        )
        assert getattr(code_holder, "__closure__", None) is None, (
            f"pending event carries a closure: {fn!r}"
        )


class _Probe:
    sender = "schedd@s0"
    recipient = "startd@m0"


def check_dispatch_anatomy():
    """Arm the allocation-prone machinery (retransmitter, chaos crash
    and partition schedules, a periodic timer) and inspect the queue."""
    sim = Simulator(fast=True)
    net = Network(sim, rng=RngStream(5), latency=0.01)
    net.register("startd@m0", _noop)
    retransmitter = Retransmitter(
        sim, net, rng=RngStream(6), policy=BackoffPolicy(base=1.0, max_tries=3)
    )
    retransmitter.send(_Probe())
    ChaosController(
        ChaosPlan(
            crashes=(CrashWindow(target="startd@m0", at=50.0, duration=10.0),),
            partitions=(PartitionWindow(10.0, 20.0, "schedd@s0", "startd@m0"),),
        )
    ).arm(sim, net)
    sim.every(5.0, _noop)
    _assert_closure_free(sim)
    sim.run_until(200.0)


# -- harness ----------------------------------------------------------------

HEADERS = ("workload", "fast (ev/s)", "reference (ev/s)", "ratio")


def sweep(rounds, per_round, repeats):
    def best(fn, *args):
        return max(fn(*args) for _ in range(repeats))

    burst_fast = best(bench_burst, True, rounds, per_round)
    burst_ref = best(bench_burst, False, rounds, per_round)
    wheel_fast = best(bench_timer_wheel, True, 500, 2000.0)
    wheel_ref = best(bench_timer_wheel, False, 500, 2000.0)
    churn_fast = best(bench_cancel_churn, True, 50, 1000)
    churn_ref = best(bench_cancel_churn, False, 50, 1000)
    pool_fast_wall, pool_events, pool_jobs_fast = min(
        (bench_pool(True) for _ in range(repeats)), key=lambda r: r[0]
    )
    pool_ref_wall, pool_events_ref, pool_jobs_ref = min(
        (bench_pool(False) for _ in range(repeats)), key=lambda r: r[0]
    )
    assert (pool_events, pool_jobs_fast) == (pool_events_ref, pool_jobs_ref), (
        "kernels diverged: the fast path changed pool history"
    )
    return {
        "burst_fast": burst_fast,
        "burst_reference": burst_ref,
        "wheel_fast": wheel_fast,
        "wheel_reference": wheel_ref,
        "churn_fast": churn_fast,
        "churn_reference": churn_ref,
        "pool_fast_wall": pool_fast_wall,
        "pool_reference_wall": pool_ref_wall,
        "pool_events": pool_events,
    }


def figures(measured):
    return {
        "engine_event_throughput": measured["burst_fast"] / measured["burst_reference"],
        "events_per_s_fast": measured["burst_fast"],
        "events_per_s_reference": measured["burst_reference"],
        "timer_wheel_speedup": measured["wheel_fast"] / measured["wheel_reference"],
        "cancel_churn_speedup": measured["churn_fast"] / measured["churn_reference"],
        "pool_wall_speedup": measured["pool_reference_wall"]
        / measured["pool_fast_wall"],
        "pool_events_per_s_fast": measured["pool_events"]
        / measured["pool_fast_wall"],
    }


def _assert_bars(fig, per_round):
    # The acceptance bar from the issue, held at meaningful burst sizes
    # (tiny bursts measure call overhead, not the queue discipline).
    if per_round >= 2000:
        assert fig["engine_event_throughput"] >= 2.0, (
            f"fast kernel is only {fig['engine_event_throughput']:.2f}x the"
            " reference on burst dispatch; the acceptance bar is 2x"
        )


def _run(rounds, per_round, repeats, out_dir=None, label="smoke"):
    check_dispatch_anatomy()
    obs.disable()  # the timed region must keep the fast paths eligible
    obs.reset()
    measured = sweep(rounds, per_round, repeats)
    fig = figures(measured)
    # Publish the raw dispatch rate on the registry gauge *after*
    # measurement, so the written record carries it.
    obs.enable()
    obs.metrics.get("sim.events_per_wall_second").set(measured["burst_fast"])
    rows = [
        ("burst dispatch", f"{measured['burst_fast']:.0f}",
         f"{measured['burst_reference']:.0f}",
         f"{fig['engine_event_throughput']:.2f}x"),
        ("timer wheel", f"{measured['wheel_fast']:.0f}",
         f"{measured['wheel_reference']:.0f}",
         f"{fig['timer_wheel_speedup']:.2f}x"),
        ("cancel churn", f"{measured['churn_fast']:.0f}",
         f"{measured['churn_reference']:.0f}",
         f"{fig['cancel_churn_speedup']:.2f}x"),
    ]
    report = table(HEADERS, rows) + (
        f"\n\nburst: {rounds} rounds x {per_round} same-instant events,"
        f" best of {repeats}"
        f"\nend-to-end pool ({measured['pool_events']} events):"
        f" {measured['pool_fast_wall']:.3f}s fast vs"
        f" {measured['pool_reference_wall']:.3f}s reference"
        f" ({fig['pool_wall_speedup']:.2f}x)"
    )
    write_report(f"ENGINE_substrate_{label}", report, out_dir=out_dir)
    path = write_bench_json(
        "ENGINE_substrate",
        wall_time_s=measured["pool_fast_wall"],
        throughput=fig,
        data=[measured],
        extra={"mode": label, "repeats": repeats,
               "burst": {"rounds": rounds, "per_round": per_round}},
        out_dir=out_dir,
    )
    obs.disable()
    obs.reset()
    _assert_bars(fig, per_round)
    return path, fig


def run_smoke(out_dir=None, rounds=60, per_round=5000, repeats=2):
    """The CI smoke benchmark: fewer rounds, same bars."""
    return _run(rounds, per_round, repeats, out_dir=out_dir, label="smoke")


# -- pytest entry point (full scale) ----------------------------------------


def test_substrate_throughput(benchmark):
    """The issue's headline figure: >= 2x raw event-dispatch throughput
    over the reference kernel.  The end-to-end pool row is reported but
    not asserted: full-pool wall time is dominated by ClassAd
    construction, so the kernel's share sits inside measurement noise
    (the honest number lives in PERFORMANCE.md)."""

    def run():
        return _run(200, 5000, 3, label="full")

    path, fig = benchmark.pedantic(run, rounds=1, iterations=1)
    assert os.path.exists(path)
    assert fig["engine_event_throughput"] >= 2.0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="reduced CI run")
    parser.add_argument("--out", default=None, help="artifact directory")
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--per-round", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args()
    kwargs = {}
    if args.rounds is not None:
        kwargs["rounds"] = args.rounds
    if args.per_round is not None:
        kwargs["per_round"] = args.per_round
    if args.repeats is not None:
        kwargs["repeats"] = args.repeats
    if args.smoke:
        run_smoke(out_dir=args.out, **kwargs)
    else:
        _run(
            kwargs.pop("rounds", 200),
            kwargs.pop("per_round", 5000),
            kwargs.pop("repeats", 3),
            out_dir=args.out,
            **kwargs,
        )
