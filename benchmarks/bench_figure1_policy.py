"""F1 — regenerate Figure 1's owner-policy behaviour.

Reproduces the four-tier policy matrix that Section 4 narrates for the
Figure 1 workstation ad, and measures the cost of evaluating the policy
(the operation a busy matchmaker performs millions of times a day).
"""

import time

from repro.classads import is_true, rank_value
from repro.paper import figure1_machine_at, job_from

from _report import rows_to_dicts, table, write_bench_json, write_report

NOON, NIGHT, EARLY = 12 * 3600, 22 * 3600, 7 * 3600
IDLE, TYPING = 1800, 10

SCENARIOS = [
    # (requester, daytime, keyboard idle, load, expected match)
    ("raman (group)", NOON, TYPING, 2.0, True),
    ("miron (group)", NIGHT, IDLE, 0.0, True),
    ("tannenba (friend)", NOON, IDLE, 0.05, True),
    ("tannenba (friend)", NOON, TYPING, 0.05, False),
    ("wright (friend)", NOON, IDLE, 0.5, False),
    ("stranger", NOON, IDLE, 0.05, False),
    ("stranger", NIGHT, TYPING, 2.0, True),
    ("stranger", EARLY, IDLE, 0.05, True),
    ("rival (untrusted)", NIGHT, IDLE, 0.0, False),
    ("riffraff (untrusted)", EARLY, IDLE, 0.0, False),
]


def policy_matrix():
    rows = []
    for label, daytime, keyboard, load, expected in SCENARIOS:
        owner = label.split(" ")[0]
        machine = figure1_machine_at(daytime, keyboard, load)
        job = job_from(owner)
        matched = is_true(machine.evaluate("Constraint", other=job))
        rank = rank_value(machine.evaluate("Rank", other=job))
        assert matched == expected, (label, daytime, keyboard, load)
        rows.append(
            (
                label,
                f"{daytime // 3600:02d}:00",
                keyboard,
                load,
                "match" if matched else "no",
                rank,
            )
        )
    return rows


def test_figure1_policy_matrix(benchmark):
    start = time.perf_counter()
    rows = benchmark(policy_matrix)
    wall = time.perf_counter() - start
    headers = ["requester", "time", "kbd idle (s)", "load", "verdict", "rank"]
    write_report("F1_figure1_policy", table(headers, rows))
    write_bench_json(
        "F1_figure1_policy",
        wall_time_s=wall,
        throughput={"policy_evaluations_per_s": len(rows) / wall},
        data=rows_to_dicts(headers, rows),
    )
    benchmark.extra_info["rows"] = len(rows)


def test_figure1_single_policy_evaluation(benchmark):
    machine = figure1_machine_at(NOON, IDLE, 0.05)
    job = job_from("tannenba")
    assert benchmark(machine.evaluate, "Constraint", job) is True


def test_figure1_rank_tiers(benchmark):
    def tiers():
        machine = figure1_machine_at(NOON)
        return [
            rank_value(machine.evaluate("Rank", other=job_from(owner)))
            for owner in ("miron", "wright", "stranger")
        ]

    ranks = benchmark(tiers)
    assert ranks == [10.0, 1.0, 0.0]
