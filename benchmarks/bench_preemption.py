"""E5 — opportunistic scheduling: eviction, checkpointing, Rank preemption.

Regenerates:

* the goodput/badput table with checkpointing on vs. off, under owner
  churn (Section 1's "applications are migrated when resources need to
  be preempted");
* the Rank-preemption table: a machine preferring its research group
  upgrades from a stranger's job when a preferred one arrives.
"""

import time

from repro.condor import (
    CondorPool,
    Job,
    MachineSpec,
    PoissonOwner,
    PoolConfig,
)

from _report import rows_to_dicts, table, write_bench_json, write_report

HORIZON = 60_000.0


def churn_run(want_checkpoint, seed=23):
    specs = [MachineSpec(name=f"m{i}") for i in range(6)]
    owner_models = {
        spec.name: PoissonOwner(mean_active=900.0, mean_idle=1_800.0)
        for spec in specs
    }
    pool = CondorPool(
        specs,
        PoolConfig(seed=seed, advertise_interval=120.0, negotiation_interval=120.0),
        owner_models=owner_models,
    )
    for _ in range(30):
        pool.submit(
            Job(owner="alice", total_work=2_400.0, want_checkpoint=want_checkpoint)
        )
    pool.run_until(HORIZON)
    return pool.metrics


def test_checkpointing_ablation(benchmark):
    def run_both():
        return {
            "checkpointing": churn_run(True),
            "no checkpointing": churn_run(False),
        }

    start = time.perf_counter()
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    rows = [
        (
            name,
            m.jobs_completed,
            m.evictions,
            f"{m.goodput:.0f}",
            f"{m.badput:.0f}",
            f"{100 * m.goodput_fraction:.1f}%",
        )
        for name, m in results.items()
    ]
    headers = ["variant", "done", "evictions", "goodput", "badput", "good fraction"]
    write_report("E5_checkpointing", table(headers, rows))
    write_bench_json(
        "E5_checkpointing",
        wall_time_s=wall,
        data=rows_to_dicts(headers, rows),
        extra={"pool_metrics": {n: m.to_dict() for n, m in results.items()}},
    )

    with_ckpt = results["checkpointing"]
    without = results["no checkpointing"]
    assert with_ckpt.evictions > 0, "scenario must actually evict"
    assert with_ckpt.badput == 0.0
    assert without.badput > 0.0
    assert with_ckpt.goodput_fraction > without.goodput_fraction
    assert with_ckpt.jobs_completed >= without.jobs_completed


def test_rank_preemption_upgrades_machine(benchmark):
    def run():
        spec = MachineSpec(
            name="m0",
            rank='member(other.Owner, { "raman", "miron" }) * 10',
        )
        pool = CondorPool(
            [spec],
            PoolConfig(seed=29, advertise_interval=60.0, negotiation_interval=60.0),
        )
        pool.submit(Job(owner="stranger", total_work=6_000.0, want_checkpoint=True))
        pool.submit(Job(owner="raman", total_work=300.0), at=200.0)
        pool.run_until(3_000.0)
        raman_done = [j for j in pool.jobs() if j.owner == "raman" and j.done]
        return pool.preemption_count(), len(raman_done), pool.metrics.badput

    start = time.perf_counter()
    preemptions, raman_done, badput = benchmark.pedantic(run, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    write_report(
        "E5_rank_preemption",
        f"rank preemptions: {preemptions}\n"
        f"preferred user's jobs completed during stranger's run: {raman_done}\n"
        f"badput: {badput:.0f} (stranger checkpointed, so nothing was lost)",
    )
    write_bench_json(
        "E5_rank_preemption",
        wall_time_s=wall,
        data=[
            {
                "preemptions": preemptions,
                "preferred_jobs_done": raman_done,
                "badput": badput,
            }
        ],
    )
    assert preemptions == 1
    assert raman_done == 1
    assert badput == 0.0
