"""E3 — matchmaking vs. the conventional architectures of Sections 1–2.

One shared scenario (heterogeneous pool, mostly distributively owned,
imbalanced demand), three systems:

* matchmaking (CondorPool) — full pool, bilateral policies, opportunism;
* static queues (platform × department partition, jobs bound a priori);
* central system-model allocator — dedicated machines only.

Regenerates the comparison table.  Expected shape: matchmaking > queues
> central in delivered goodput; matchmaking exceeds the dedicated-only
ceiling (it provably harvested owner-idle time).
"""

import time

from repro.baselines import CentralAllocator, QueueBasedScheduler
from repro.condor import (
    CondorPool,
    Job,
    MachineSpec,
    OfficeHoursOwner,
    PoolConfig,
)

from _report import rows_to_dicts, table, write_bench_json, write_report

HORIZON = 86_400.0


def scenario():
    owners = {}
    specs = [
        MachineSpec(name="ded0", arch="INTEL"),
        MachineSpec(name="ded1", arch="SPARC"),
    ]
    for i in range(10):
        arch = "INTEL" if i % 2 == 0 else "SPARC"
        spec = MachineSpec(name=f"own{i}", arch=arch)
        specs.append(spec)
        owners[spec.name] = OfficeHoursOwner(start=9 * 3600, end=17 * 3600, jitter=0.0)
    jobs = []
    for count, owner in ((240, "groupA"), (40, "groupB")):
        for i in range(count):
            jobs.append(
                Job(
                    owner=owner,
                    total_work=3_600.0,
                    req_arch="INTEL" if i % 2 == 0 else "SPARC",
                    want_checkpoint=True,
                )
            )
    return specs, owners, jobs


def fresh(jobs):
    return [
        Job(
            owner=j.owner,
            total_work=j.total_work,
            req_arch=j.req_arch,
            want_checkpoint=j.want_checkpoint,
        )
        for j in jobs
    ]


def run_matchmaking(specs, owners, jobs):
    pool = CondorPool(
        specs,
        PoolConfig(seed=101, advertise_interval=300.0, negotiation_interval=300.0),
        owner_models=dict(owners),
    )
    for job in jobs:
        pool.submit(job)
    pool.run_until(HORIZON)
    return pool.metrics


def run_queues(specs, owners, jobs):
    system = QueueBasedScheduler(seed=101)
    for spec in specs:
        system.add_machine(spec, owner_model=owners.get(spec.name))
    # Pairs of consecutive machines (one INTEL, one SPARC) alternate
    # departments, so each department's queues cover both platforms.
    dept = {s.name: ("A" if (i // 2) % 2 == 0 else "B") for i, s in enumerate(specs)}
    for d in ("A", "B"):
        for arch in ("INTEL", "SPARC"):
            members = [s.name for s in specs if dept[s.name] == d and s.arch == arch]
            if members:
                system.add_queue(f"q_{d}_{arch}", members)
    for job in jobs:
        system.submit(job, f"q_{'A' if job.owner == 'groupA' else 'B'}_{job.req_arch}")
    system.start()
    system.run_until(HORIZON)
    return system.metrics


def run_central(specs, owners, jobs):
    system = CentralAllocator(seed=101)
    for spec in specs:
        system.add_machine(spec, owner_model=owners.get(spec.name))
    for job in jobs:
        system.submit(job)
    system.start()
    system.run_until(HORIZON)
    return system.metrics


def test_architecture_comparison(benchmark):
    def run_all():
        specs, owners, jobs = scenario()
        return {
            "matchmaking": run_matchmaking(specs, owners, fresh(jobs)),
            "static queues": run_queues(specs, owners, fresh(jobs)),
            "central model": run_central(specs, owners, fresh(jobs)),
        }

    start = time.perf_counter()
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    rows = [
        (
            name,
            f"{m.goodput:.0f}",
            m.jobs_completed,
            f"{m.wait_time.mean:.0f}s",
            f"{m.badput:.0f}",
        )
        for name, m in results.items()
    ]
    headers = ["system", "goodput (ref-cpu·s)", "jobs done", "mean wait", "badput"]
    report = table(headers, rows)
    speedups = (
        f"\nmatchmaking / central  : "
        f"{results['matchmaking'].goodput / results['central model'].goodput:.2f}x\n"
        f"matchmaking / queues   : "
        f"{results['matchmaking'].goodput / results['static queues'].goodput:.2f}x"
    )
    write_report("E3_vs_baselines", report + speedups)
    write_bench_json(
        "E3_vs_baselines",
        wall_time_s=wall,
        throughput={
            "speedup_vs_central": results["matchmaking"].goodput
            / results["central model"].goodput,
            "speedup_vs_queues": results["matchmaking"].goodput
            / results["static queues"].goodput,
        },
        data=rows_to_dicts(headers, rows),
        extra={"horizon_s": HORIZON},
    )

    mm, q, c = (
        results["matchmaking"].goodput,
        results["static queues"].goodput,
        results["central model"].goodput,
    )
    assert mm > q > c
    assert c <= 2 * HORIZON + 1.0  # dedicated-only ceiling
    assert mm > 2 * HORIZON  # harvested owned machines
