"""Benchmark regression gate: fresh smoke results vs committed baselines.

Compares ``BENCH_*.json`` records from a fresh run (``--fresh DIR``)
against the reference records in ``benchmarks/baselines/`` on the
hardware-portable *shape* figures — speedup ratios, not absolute
times.  A gated figure may not fall more than ``--tolerance`` (default
20%) below its baseline value; anything else in the records is
informational.

Exits non-zero when a gated figure regresses, or when no comparison was
possible at all (that means the wiring broke — a gate that silently
compares nothing is no gate).

Usage::

    python benchmarks/check_regression.py --fresh bench-artifacts
"""

import argparse
import glob
import json
import os
import sys

BASELINES_DIR = os.path.join(os.path.dirname(__file__), "baselines")

#: throughput keys gated per benchmark name; everything else is FYI.
GATED = {
    # parallel_cycle_speedup is only recorded on hosts with >= 4 cores
    # (bench_scalability.py); on smaller runners the key is absent from
    # the fresh record and the figure is reported as skipped.
    "E6_scalability": (
        "batch_cycle_speedup",
        "compile_cycle_speedup",
        "parallel_cycle_speedup",
    ),
    "EVAL_compile": ("warm_speedup",),
    # PR 8: the refresh fast path must keep beating full re-advertising
    # on steady-state collector ingest (baseline seeded at 2.5 so the
    # default 20% tolerance floor equals the 2x acceptance bar).
    "ADV_advertising": ("advertising_ingest_speedup",),
    # PR 10: the fast bucketed kernel must keep beating the reference
    # heap on burst dispatch (baseline seeded at 2.5 so the default 20%
    # tolerance floor equals the 2x acceptance bar).  Wheel/churn/pool
    # ratios in the same record are informational.
    "ENGINE_substrate": ("engine_event_throughput",),
}


def load_records(directory):
    records = {}
    for path in glob.glob(os.path.join(directory, "BENCH_*.json")):
        with open(path) as handle:
            record = json.load(handle)
        if record.get("schema") != "repro-bench/1":
            raise SystemExit(f"{path}: not a repro-bench/1 record")
        records[record["name"]] = record
    return records


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True, help="directory of fresh BENCH_*.json")
    parser.add_argument(
        "--baselines", default=BASELINES_DIR, help="reference records directory"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional drop below baseline (default: 0.20)",
    )
    args = parser.parse_args(argv)

    fresh = load_records(args.fresh)
    baselines = load_records(args.baselines)

    compared = 0
    failures = []
    for name, keys in sorted(GATED.items()):
        base = baselines.get(name)
        new = fresh.get(name)
        if base is None or new is None:
            print(f"{name}: skipped ({'no baseline' if base is None else 'no fresh run'})")
            continue
        for key in keys:
            base_value = base["throughput"].get(key)
            new_value = new["throughput"].get(key)
            if base_value is None or new_value is None:
                print(f"{name}.{key}: skipped (figure missing)")
                continue
            compared += 1
            floor = base_value * (1.0 - args.tolerance)
            verdict = "ok" if new_value >= floor else "REGRESSED"
            print(
                f"{name}.{key}: fresh {new_value:.3f} vs baseline {base_value:.3f} "
                f"(floor {floor:.3f}) — {verdict}"
            )
            if new_value < floor:
                failures.append(f"{name}.{key}")

    if compared == 0:
        print("error: no gated figures were compared — gate wiring is broken")
        return 1
    if failures:
        print(f"error: regression in {', '.join(failures)}")
        return 1
    print(f"{compared} gated figure(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
