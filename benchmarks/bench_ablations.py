"""EA — ablations of the design choices DESIGN.md calls out.

Each ablation disables one mechanism and regenerates the comparison:

* **state-change advertisements** (S14): without the immediate ad on
  state change, staleness — and hence wasted claims — jumps at the same
  advertising interval;
* **fair-share pie slices** (S6/S8): ordering alone lets lock-step users
  alternate whole cycles; the pie is what produces factor-weighted
  shares;
* **claim leases** (S14/S15): without leases, a dead customer agent
  strands machines in Claimed forever.
"""

import time

from repro.condor import CondorPool, Job, MachineSpec, PoissonOwner, PoolConfig

from _report import rows_to_dicts, table, write_bench_json, write_report


def staleness_run(state_change_ads):
    specs = [MachineSpec(name=f"m{i}") for i in range(8)]
    owner_models = {
        spec.name: PoissonOwner(mean_active=600.0, mean_idle=1_200.0)
        for spec in specs
    }
    pool = CondorPool(
        specs,
        PoolConfig(
            seed=33,
            advertise_interval=900.0,
            negotiation_interval=300.0,
            advertise_on_state_change=state_change_ads,
        ),
        owner_models=owner_models,
    )
    for _ in range(25):
        pool.submit(Job(owner="alice", total_work=900.0))
    pool.run_until(40_000.0)
    return pool.metrics


def test_ablation_state_change_ads(benchmark):
    def run_both():
        return staleness_run(True), staleness_run(False)

    start = time.perf_counter()
    with_ads, without_ads = benchmark.pedantic(run_both, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    headers = ["variant", "claim rejection rate", "jobs done"]
    rows = [
        ("immediate ads on state change", f"{100 * with_ads.claim_rejection_rate:.1f}%", with_ads.jobs_completed),
        ("periodic ads only", f"{100 * without_ads.claim_rejection_rate:.1f}%", without_ads.jobs_completed),
    ]
    write_report("EA_state_change_ads", table(headers, rows))
    write_bench_json(
        "EA_state_change_ads",
        wall_time_s=wall,
        data=rows_to_dicts(headers, rows),
        extra={"pool_metrics": {"with_ads": with_ads.to_dict(), "without_ads": without_ads.to_dict()}},
    )
    assert without_ads.claim_rejection_rate > with_ads.claim_rejection_rate


def shares_run(use_pie):
    """Two lock-step users with a 4x factor gap; with the pie disabled
    we emulate ordering-only fairness by running the negotiation with
    one submitter's requests hidden... instead we compare against the
    measured behaviour: the pie is inside negotiation_cycle, so the
    ablation uses a pool-level monkeypatch-free approach — a direct call
    comparison on the algorithm itself."""
    from repro.classads import ClassAd
    from repro.matchmaking import Accountant, negotiation_cycle

    def machine(name):
        ad = ClassAd({"Type": "Machine", "Name": name, "Memory": 64, "State": "Unclaimed"})
        ad.set_expr("Constraint", 'other.Type == "Job"')
        return ad

    def req(owner, i):
        ad = ClassAd({"Type": "Job", "JobId": i, "Owner": owner, "Memory": 32})
        ad.set_expr("Constraint", 'other.Type == "Machine"')
        return ad

    providers = [machine(f"m{i}") for i in range(8)]
    acc = Accountant(half_life=900.0)
    acc.set_priority_factor("alpha", 1.0)
    acc.set_priority_factor("beta", 4.0)
    grouped = {
        "alpha": [req("alpha", i) for i in range(20)],
        "beta": [req("beta", 100 + i) for i in range(20)],
    }
    if use_pie:
        assignments = negotiation_cycle(grouped, providers, accountant=acc)
    else:
        # Ordering-only: serve submitters in priority order with no quota
        # (emulated by a single-submitter-at-a-time sweep).
        assignments = []
        taken = []
        order = acc.negotiation_order(list(grouped))
        remaining = list(providers)
        for submitter in order:
            got = negotiation_cycle({submitter: grouped[submitter]}, remaining)
            assignments.extend(got)
            used = {id(a.provider) for a in got}
            remaining = [p for p in remaining if id(p) not in used]
    counts = {}
    for a in assignments:
        counts[a.submitter] = counts.get(a.submitter, 0) + 1
    return counts


def test_ablation_pie_slices(benchmark):
    def run_both():
        return shares_run(True), shares_run(False)

    start = time.perf_counter()
    with_pie, ordering_only = benchmark.pedantic(run_both, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    headers = ["variant", "alpha machines (factor 1x)", "beta machines (factor 4x)"]
    rows = [
        ("pie slices (deployed)", with_pie.get("alpha", 0), with_pie.get("beta", 0)),
        ("ordering only (ablated)", ordering_only.get("alpha", 0), ordering_only.get("beta", 0)),
    ]
    write_report("EA_pie_slices", table(headers, rows))
    write_bench_json("EA_pie_slices", wall_time_s=wall, data=rows_to_dicts(headers, rows))
    # Ordering-only gives the whole cycle to the best-priority user;
    # the pie splits one cycle ~4:1.
    assert ordering_only.get("beta", 0) == 0
    assert with_pie.get("beta", 0) >= 1
    assert with_pie.get("alpha", 0) > with_pie.get("beta", 0)


def test_ablation_claim_leases(benchmark):
    def run(lease_enabled):
        pool = CondorPool(
            [MachineSpec(name="m0")],
            PoolConfig(seed=8, advertise_interval=60.0, negotiation_interval=60.0),
        )
        if not lease_enabled:
            pool.machines["m0"].claim_lease = None
        pool.submit(Job(owner="alice", total_work=50_000.0))
        pool.submit(Job(owner="bob", total_work=300.0), at=100.0)
        pool.crash_schedd("alice", at=90.0)  # alice's CA dies forever
        pool.run_until(5_000.0)
        bob = [j for j in pool.jobs() if j.owner == "bob"][0]
        return bob.done

    def run_both():
        return run(True), run(False)

    start = time.perf_counter()
    with_lease, without_lease = benchmark.pedantic(run_both, rounds=1, iterations=1)
    wall = time.perf_counter() - start
    write_bench_json(
        "EA_claim_leases",
        wall_time_s=wall,
        data=[{"with_lease": with_lease, "without_lease": without_lease}],
    )
    write_report(
        "EA_claim_leases",
        "dead customer agent, one machine, bob's job queued behind it:\n"
        f"  with claim leases    : bob's job completed = {with_lease}\n"
        f"  without claim leases : bob's job completed = {without_lease} "
        "(machine stranded in Claimed forever)",
    )
    assert with_lease is True
    assert without_lease is False
