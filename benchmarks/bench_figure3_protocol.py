"""F3 — regenerate the Figure 3 protocol sequence, end to end.

One provider, one requestor, one matchmaker on the simulated network;
the benchmark regenerates the four-step transcript (advertise → match →
notify → claim) and measures the wall-clock cost of simulating the
complete interaction.
"""

import time

from repro.condor import CondorPool, Job, MachineSpec, PoolConfig

from _report import write_bench_json, write_report


def run_protocol():
    pool = CondorPool(
        [MachineSpec(name="leonardo", mips=104.0, kflops=21_893.0)],
        PoolConfig(seed=7, advertise_interval=60.0, negotiation_interval=60.0),
    )
    pool.submit(Job(owner="raman", total_work=300.0, memory=31))
    pool.run_until_quiescent(check_interval=60.0, max_time=50_000.0)
    return pool


STEP_KINDS = [
    ("advertise-machine", "step 1: provider advertisement"),
    ("advertise-job", "step 1: requestor advertisement"),
    ("match", "step 2: matchmaking algorithm"),
    ("match-notified-customer", "step 3: notification (requestor)"),
    ("match-notified-provider", "step 3: notification (provider)"),
    ("claim-request", "step 4: claiming (request)"),
    ("claim-accepted", "step 4: claiming (accepted)"),
    ("job-completed", "service delivered"),
]

#: The causal chain of Figure 3.  (The *provider's* notification is not
#: on it: it races the customer's claim over the jittery network, and
#: may legitimately arrive after the claim request was already sent.)
CAUSAL_CHAIN = [
    "advertise-machine",
    "match",
    "match-notified-customer",
    "claim-request",
    "claim-accepted",
    "job-completed",
]


def test_figure3_protocol_transcript(benchmark):
    start = time.perf_counter()
    pool = benchmark.pedantic(run_protocol, rounds=3, iterations=1)
    wall = time.perf_counter() - start
    lines = ["Figure 3 protocol transcript (first occurrence of each step):"]
    steps = []
    for kind, label in STEP_KINDS:
        event = pool.trace.first(kind)
        assert event is not None, kind
        lines.append(f"  t={event.time:9.3f}s  {label:<36} {event.fields}")
        steps.append({"step": label, "kind": kind, "sim_time_s": event.time})
    chain_times = [pool.trace.first(kind).time for kind in CAUSAL_CHAIN]
    assert chain_times == sorted(chain_times)
    write_report("F3_protocol", "\n".join(lines))
    write_bench_json(
        "F3_protocol",
        wall_time_s=wall,
        data=steps,
        extra={"pool_metrics": pool.metrics.to_dict()},
    )
    assert pool.metrics.jobs_completed == 1


def test_figure3_match_to_claim_latency(benchmark):
    def latency():
        pool = run_protocol()
        match = pool.trace.first("match")
        accept = pool.trace.first("claim-accepted")
        return accept.time - match.time

    value = benchmark.pedantic(latency, rounds=3, iterations=1)
    # Match → accepted claim is a few network round-trips, well under 1s.
    assert 0.0 < value < 1.0
