"""Setup shim for environments whose setuptools predates PEP 660 editable
installs (all metadata lives in pyproject.toml)."""
from setuptools import setup

setup()
