"""Command-line interface to the matchmaking library.

The paper's deployment shipped user tools (Section 4); this CLI exposes
their modern equivalents over ad files:

* ``repro eval EXPR [--ad FILE] [--other FILE]`` — evaluate a classad
  expression, optionally inside a match environment;
* ``repro match CUSTOMER PROVIDER`` — bilateral match verdict + ranks;
* ``repro best CUSTOMER POOL`` — pick the best provider from a pool;
* ``repro status POOL [--constraint EXPR]`` — the condor_status view;
* ``repro q POOL [--owner NAME]`` — the condor_q view;
* ``repro diagnose JOB POOL`` — why-won't-my-job-match analysis;
* ``repro convert FILE --to {json,classad}`` — format conversion;
* ``repro obs …`` — post-mortems over recorded ``repro-events/1`` logs:
  ``obs record POOL`` runs negotiation with forensics on and writes the
  event log, ``obs report FILE`` summarizes it per cycle, ``obs why
  JOB-ID FILE`` explains one job's rejections (failing conjuncts,
  undefined attributes, near-miss providers), ``obs tail FILE`` prints
  the raw stream, ``obs export FILE`` emits the CI-facing JSON summary;
* lifecycle analytics over the same recordings: ``obs timeline JOB
  FILE`` renders one job's submit→completion phase breakdown, ``obs
  critical-path JOB FILE`` walks the causal span chain of a
  ``repro-trace/1`` stream, ``obs latency FILE [--json]`` prints
  per-phase dwell percentiles, and ``obs pool FILE [--watch]`` renders
  the ``repro-series/1`` pool-health history.

Ad files may be classad source (``[...]``; file extension ``.ad`` or
anything non-JSON) or JSON (``.json`` or content starting with ``{``).
Pool files hold multiple ads: JSON arrays, JSON-lines, or concatenated
``[...]`` blocks.

Run ``python -m repro --help`` for details.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .classads import ClassAd, evaluate, is_true, parse, unparse_classad
from .classads.serialize import SerializationError, dumps, from_json_obj
from .matchmaking import (
    best_match,
    constraints_satisfied,
    diagnose,
    evaluate_rank,
)


class CliError(Exception):
    """User-facing CLI failure (bad file, bad arguments)."""


# ---------------------------------------------------------------------------
# ad file loading


def _looks_like_json(text: str) -> bool:
    stripped = text.lstrip()
    return stripped.startswith("{") or stripped.startswith("[{") or stripped.startswith('[\n{')


def load_ad(path: str) -> ClassAd:
    """Load a single ad from a classad-source or JSON file."""
    text = _read(path)
    if _looks_like_json(text):
        try:
            return from_json_obj(json.loads(text))
        except (SerializationError, json.JSONDecodeError) as exc:
            raise CliError(f"{path}: {exc}") from exc
    try:
        return ClassAd.parse(text)
    except Exception as exc:
        raise CliError(f"{path}: {exc}") from exc


def load_pool(path: str) -> List[ClassAd]:
    """Load many ads: JSON array, JSON lines, or concatenated [..] blocks."""
    text = _read(path)
    stripped = text.strip()
    if not stripped:
        return []
    if stripped.startswith("["):
        # Could be a JSON array of objects or a classad block; peek deeper.
        try:
            data = json.loads(stripped)
        except json.JSONDecodeError:
            return _parse_classad_blocks(stripped, path)
        if isinstance(data, list):
            return [from_json_obj(item) for item in data]
        raise CliError(f"{path}: JSON pool file must be an array of objects")
    if stripped.startswith("{"):
        # JSON lines: one object per line.
        ads = []
        for line_number, line in enumerate(stripped.splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                ads.append(from_json_obj(json.loads(line)))
            except (SerializationError, json.JSONDecodeError) as exc:
                raise CliError(f"{path}:{line_number}: {exc}") from exc
        return ads
    raise CliError(f"{path}: unrecognized pool file format")


def _parse_classad_blocks(text: str, path: str) -> List[ClassAd]:
    """Split concatenated ``[ ... ]`` blocks by bracket balance."""
    ads = []
    depth = 0
    start: Optional[int] = None
    in_string = False
    i = 0
    while i < len(text):
        ch = text[i]
        if in_string:
            if ch == "\\":
                i += 2
                continue
            if ch == '"':
                in_string = False
        elif ch == '"':
            in_string = True
        elif ch == "[":
            if depth == 0:
                start = i
            depth += 1
        elif ch == "]":
            depth -= 1
            if depth == 0 and start is not None:
                try:
                    ads.append(ClassAd.parse(text[start : i + 1]))
                except Exception as exc:
                    raise CliError(f"{path}: {exc}") from exc
                start = None
        i += 1
    if depth != 0:
        raise CliError(f"{path}: unbalanced brackets in classad pool file")
    return ads


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    try:
        with open(path) as handle:
            return handle.read()
    except OSError as exc:
        raise CliError(str(exc)) from exc


# ---------------------------------------------------------------------------
# subcommands


def cmd_eval(args) -> int:
    self_ad = load_ad(args.ad) if args.ad else None
    other_ad = load_ad(args.other) if args.other else None
    try:
        expr = parse(args.expression)
    except Exception as exc:
        raise CliError(f"bad expression: {exc}") from exc
    result = evaluate(expr, self_ad, other=other_ad)
    print(_format_value(result))
    return 0


def _format_value(value) -> str:
    from .classads import unparse
    from .classads.classad import _value_to_expr

    try:
        return unparse(_value_to_expr(value))
    except TypeError:
        return repr(value)


def cmd_match(args) -> int:
    customer = load_ad(args.customer)
    provider = load_ad(args.provider)
    matched = constraints_satisfied(customer, provider)
    print(f"match: {'yes' if matched else 'no'}")
    print(f"customer accepts provider: {is_true(_side(customer, provider))}")
    print(f"provider accepts customer: {is_true(_side(provider, customer))}")
    print(f"customer Rank of provider: {evaluate_rank(customer, provider):g}")
    print(f"provider Rank of customer: {evaluate_rank(provider, customer):g}")
    return 0 if matched else 1


def _side(ad, other):
    from .matchmaking.match import DEFAULT_POLICY

    name = DEFAULT_POLICY.constraint_of(ad)
    return True if name is None else ad.evaluate(name, other=other)


def cmd_best(args) -> int:
    customer = load_ad(args.customer)
    pool = load_pool(args.pool)
    match = best_match(customer, pool)
    if match is None:
        print("no compatible provider in the pool")
        return 1
    name = match.provider.evaluate("Name")
    print(f"best provider: {name if isinstance(name, str) else '<unnamed>'}")
    print(f"customer rank: {match.customer_rank:g}")
    print(f"provider rank: {match.provider_rank:g}")
    return 0


def cmd_status(args) -> int:
    from .condor.status import machine_status

    print(machine_status(load_pool(args.pool), constraint=args.constraint))
    return 0


def cmd_q(args) -> int:
    from .condor.status import queue_status

    print(queue_status(load_pool(args.pool), owner=args.owner))
    return 0


def cmd_diagnose(args) -> int:
    job = load_ad(args.job)
    pool = load_pool(args.pool)
    report = diagnose(job, pool)
    print(report.render())
    return 0 if not report.never_matches else 1


def cmd_convert(args) -> int:
    ad = load_ad(args.file)
    if args.to == "json":
        print(dumps(ad, indent=2))
    else:
        print(unparse_classad(ad))
    return 0


# ---------------------------------------------------------------------------
# the `obs` family: negotiation forensics over repro-events/1 logs


def _load_events(path: str):
    from .obs.events import EventLogError, read_jsonl

    try:
        return read_jsonl(path)
    except OSError as exc:
        raise CliError(str(exc)) from exc
    except EventLogError as exc:
        raise CliError(str(exc)) from exc


def _job_of(event) -> Optional[object]:
    return event.fields.get("job")


def _parse_job_id(raw: str):
    """Job ids are integers in the ads; accept the string form too."""
    try:
        return int(raw)
    except ValueError:
        return raw


def cmd_obs_record(args) -> int:
    """Run negotiation over a pool file with forensics on; write the log."""
    from .matchmaking.matchmaker import negotiation_cycle
    from .obs import event_log

    ads = load_pool(args.pool)
    machines = [ad for ad in ads if ad.evaluate("Type") == "Machine"]
    jobs = [ad for ad in ads if ad.evaluate("Type") == "Job"]
    if not jobs:
        raise CliError(f"{args.pool}: no Job ads to negotiate for")
    submitters: dict = {}
    for job in jobs:
        owner = job.evaluate("Owner")
        submitters.setdefault(owner if isinstance(owner, str) else "<unknown>", []).append(job)

    was_enabled = event_log.enabled
    seq_before = event_log._seq
    event_log.enable()
    try:
        event_log.open_file(args.out)
        for _ in range(args.cycles):
            negotiation_cycle(submitters, machines)
    finally:
        event_log.close_file()
        if not was_enabled:
            event_log.disable()
    recorded = event_log._seq - seq_before
    print(f"recorded {recorded} events over {args.cycles} cycle(s) to {args.out}")
    return 0


#: ``repro obs report`` sections, in print order.
REPORT_SECTIONS = ("cycles", "rejections", "robustness", "parallel", "kinds")


def cmd_obs_report(args) -> int:
    from .obs.events import summarize

    events = _load_events(args.file)
    summary = summarize(events)
    wanted = set(args.section) if getattr(args, "section", None) else set(REPORT_SECTIONS)
    print(f"events   : {summary['events']}")
    print(f"kinds    : {len(summary['by_kind'])}")
    if "cycles" in wanted and summary["cycles"]:
        print()
        print("cycle  requests  matched  rejected  preemptions")
        for row in summary["cycles"]:
            print(
                "{cycle:>5}  {requests:>8}  {matched:>7}  {rejected:>8}  {preemptions:>11}".format(
                    **{k: ("?" if v is None else v) for k, v in row.items()}
                )
            )
    if "rejections" in wanted and summary["top_rejections"]:
        print()
        print("top rejection reasons:")
        for item in summary["top_rejections"]:
            print(f"  [{item['count']:5d}×] {item['reason']}")
    if "robustness" in wanted and summary.get("robustness"):
        print()
        print("robustness (network + retry/lease accounting):")
        for key, value in summary["robustness"].items():
            print(f"  {key:<24} {value}")
    if "parallel" in wanted and summary.get("parallel"):
        print()
        print("parallel scoring (worker-pool accounting):")
        for key, value in summary["parallel"].items():
            print(f"  {key:<24} {value}")
    if "kinds" in wanted:
        print()
        print("events by kind:")
        for kind, count in summary["by_kind"].items():
            print(f"  {kind:<24} {count}")
    return 0


def cmd_obs_why(args) -> int:
    """Explain one job's negotiation outcome from the recorded stream."""
    job_id = _parse_job_id(args.job_id)
    events = _load_events(args.file)
    mine = [e for e in events if _job_of(e) == job_id]
    if not mine:
        print(f"job {job_id}: no recorded events (wrong id, or forensics were off)")
        return 1

    matches = [e for e in mine if e.kind == "match.made"]
    rejects = [e for e in mine if e.kind == "match.reject"]
    unmatched = [e for e in mine if e.kind == "job.unmatched"]
    claims = [e for e in mine if e.kind == "claim.verdict"]
    cycles = sorted({e.fields.get("cycle") for e in mine if e.fields.get("cycle") is not None})

    print(
        f"job {job_id}: {len(matches)} match(es), {len(rejects)} rejection(s)"
        + (f" across {len(cycles)} cycle(s)" if cycles else "")
    )
    for e in matches:
        print(
            f"  matched provider {e.fields.get('provider')}"
            + (f" in cycle {e.fields.get('cycle')}" if e.fields.get("cycle") else "")
        )
    for e in claims:
        print(f"  claim verdict: {e.fields.get('verdict')} at provider {e.fields.get('provider')}")

    if rejects:
        # Group by attributed reason; constraint failures name the conjunct.
        grouped: dict = {}
        for e in rejects:
            f = e.fields
            if f.get("reason") == "constraint":
                key = (
                    "{side} {constraint}: conjunct {conjunct} is {value}".format(
                        side=f.get("side", "?"),
                        constraint=f.get("constraint", "Constraint"),
                        conjunct=f.get("conjunct", "?"),
                        value=f.get("value", "false"),
                    )
                )
            else:
                key = str(f.get("reason", "?"))
            providers, undefined = grouped.setdefault(key, ([], set()))
            provider = f.get("provider")
            if provider is not None and provider not in providers:
                providers.append(provider)
            for name in f.get("undefined", ()) or ():
                undefined.add(name)
        print("rejections:")
        for key, (providers, undefined) in sorted(
            grouped.items(), key=lambda item: -len(item[1][0])
        ):
            line = f"  [{len(providers):5d}×] {key}"
            if providers:
                shown = ", ".join(str(p) for p in providers[:4])
                more = len(providers) - 4
                line += f"   e.g. {shown}" + (f" (+{more} more)" if more > 0 else "")
            print(line)
            if undefined:
                print(f"           undefined attributes: {', '.join(sorted(undefined))}")
        # Near misses: providers that passed constraints but lost on rank.
        near = [
            e.fields.get("provider")
            for e in rejects
            if e.fields.get("reason") == "rank-not-above-current"
        ]
        if near:
            print(f"near-miss providers (constraints held, rank too low): {', '.join(map(str, dict.fromkeys(near)))}")
    if unmatched and not matches:
        print(f"outcome: unmatched in every recorded cycle ({len(unmatched)} attempt(s))")
    return 0 if matches else 1


def cmd_obs_check(args) -> int:
    """Audit a recorded run against the protocol invariants."""
    from .obs.invariants import check_events

    report = check_events(_load_events(args.file), require_complete=args.require_complete)
    print(report.render())
    return 0 if report.ok else 1


def cmd_obs_tail(args) -> int:
    events = _load_events(args.file)
    if args.kind:
        events = [e for e in events if e.kind in set(args.kind)]
    for event in events[-args.limit :]:
        print(event)
    return 0


def cmd_obs_export(args) -> int:
    from .obs.events import summarize

    summary = summarize(_load_events(args.file))
    text = json.dumps(summary, indent=2, sort_keys=False)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


# ---------------------------------------------------------------------------
# lifecycle analytics: timeline / critical-path / latency over recorded runs


def _load_trace(path: str):
    from .obs.causal import TraceError, read_jsonl

    try:
        return read_jsonl(path)
    except OSError as exc:
        raise CliError(str(exc)) from exc
    except TraceError as exc:
        raise CliError(str(exc)) from exc


def _load_series(path: str):
    from .obs.timeseries import SeriesError, read_jsonl

    try:
        return read_jsonl(path)
    except OSError as exc:
        raise CliError(str(exc)) from exc
    except SeriesError as exc:
        raise CliError(str(exc)) from exc


def _resolve_trace_id(spans, spec: str) -> str:
    """Resolve a job spec (`<id>`, `<owner>.<id>`, or a full trace id)
    against the trace ids present in a recorded stream."""
    trace_ids = sorted({s.trace for s in spans})
    if spec in trace_ids:
        return spec
    prefixed = f"job.{spec}"
    if prefixed in trace_ids:
        return prefixed
    suffixed = [t for t in trace_ids if t.endswith(f".{spec}")]
    if len(suffixed) == 1:
        return suffixed[0]
    if len(suffixed) > 1:
        raise CliError(f"job {spec!r} is ambiguous: {', '.join(suffixed)}")
    available = ", ".join(trace_ids) if trace_ids else "<none>"
    raise CliError(f"no trace for job {spec!r}; recorded traces: {available}")


def cmd_obs_timeline(args) -> int:
    """Render one job's lifecycle timeline from a recorded event stream."""
    from .obs.lifecycle import build_lifecycles, find_job, render_timeline

    lifecycles = build_lifecycles(_load_events(args.file))
    matches = find_job(lifecycles, args.job_id)
    if not matches:
        known = ", ".join(f"{o}.{j}" for o, j in sorted(lifecycles, key=str)) or "<none>"
        raise CliError(f"no lifecycle for job {args.job_id!r}; recorded jobs: {known}")
    if len(matches) > 1:
        ambiguous = ", ".join(f"{lc.owner}.{lc.job_id}" for lc in matches)
        raise CliError(f"job {args.job_id!r} is ambiguous: {ambiguous}")
    print(render_timeline(matches[0]))
    return 0


def cmd_obs_critical_path(args) -> int:
    """Render the causal critical path of one job from a trace stream."""
    from .obs.lifecycle import critical_path, render_critical_path

    spans = _load_trace(args.file)
    trace_id = _resolve_trace_id(spans, args.job_id)
    chain = critical_path(spans, trace_id)
    if not chain:
        raise CliError(f"trace {trace_id} has no spans")
    print(render_critical_path(chain))
    return 0


def cmd_obs_latency(args) -> int:
    """Per-phase dwell and end-to-end latency percentiles for a run."""
    from .obs.lifecycle import build_lifecycles, latency_table, render_latency_table

    table = latency_table(build_lifecycles(_load_events(args.file)))
    if args.json:
        print(json.dumps(table, indent=2, sort_keys=False))
    else:
        print(render_latency_table(table))
    return 0


def cmd_obs_pool(args) -> int:
    """Render a recorded pool time series (`repro-series/1`)."""
    from .obs.timeseries import render_header, render_row, render_table

    if not args.watch:
        print(render_table(_load_series(args.file), limit=args.limit))
        return 0

    # --watch: follow the file, streaming one row per new sample.  The
    # writer flushes per sample, so a live `repro chaos --series` run can
    # be observed from another terminal.
    import time as _time

    from .obs.timeseries import SERIES_SCHEMA, Sample, SeriesError

    try:
        handle = open(args.file)
    except OSError as exc:
        raise CliError(str(exc)) from exc
    with handle:
        header = handle.readline()
        try:
            if json.loads(header).get("schema") != SERIES_SCHEMA:
                raise CliError(f"{args.file}: not a {SERIES_SCHEMA} stream")
        except (json.JSONDecodeError, AttributeError) as exc:
            raise CliError(f"{args.file}: not a {SERIES_SCHEMA} stream") from exc
        from .obs.timeseries import validate_record

        print(render_header())
        try:
            while True:
                position = handle.tell()
                line = handle.readline()
                if not line or not line.endswith("\n"):
                    # Nothing new, or a partial line mid-write: rewind
                    # past it and poll again.
                    handle.seek(position)
                    _time.sleep(args.interval)
                    continue
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    validate_record(record)
                except (json.JSONDecodeError, SeriesError) as exc:
                    raise CliError(f"{args.file}: {exc}") from exc
                print(
                    render_row(
                        Sample(record["seq"], record["t"], record.get("fields", {}))
                    ),
                    flush=True,
                )
        except (KeyboardInterrupt, BrokenPipeError):
            return 0


# ---------------------------------------------------------------------------
# the `chaos` command: run a pool under a fault-injection profile


def cmd_chaos(args) -> int:
    """Run a small pool under a chaos profile; exit 0 iff every job
    completed (the liveness half of the robustness claim)."""
    import dataclasses

    from . import obs
    from .condor import CondorPool, Job, MachineSpec, PoolConfig
    from .protocols import reset_message_ids, set_retries
    from .sim.chaos import chaos_profile

    plan = chaos_profile(args.profile, horizon=args.horizon)
    if args.seed is not None:
        plan = dataclasses.replace(plan, seed=args.seed)

    # Fresh recording: restart sequence/span/match-id/cycle numbering and
    # zero the counters so same-seed runs produce bitwise-identical streams.
    from .matchmaking.matchmaker import reset_cycle_ids

    obs.reset()
    reset_message_ids()
    reset_cycle_ids()
    obs.enable(events=True, causal=bool(args.trace), timeseries=bool(args.series))
    if args.out:
        obs.event_log.open_file(args.out)
    if args.trace:
        obs.causal_log.open_file(args.trace)
    if args.series:
        obs.series.open_file(args.series)
    if args.no_retry:
        set_retries(False)
    # Worker-pool recording: the chaos pools are tiny, so drop the pair
    # threshold too — otherwise every class would fall back to serial
    # and the recording would not exercise the parallel tier at all.
    from .matchmaking import parallel as _parallel

    workers_before = _parallel.scoring_workers()
    threshold_before = _parallel.pair_threshold()
    if args.workers:
        _parallel.set_scoring_workers(args.workers)
        _parallel.set_pair_threshold(0)
    try:
        specs = [
            MachineSpec(name=f"m{i}", mips=100.0 + 50.0 * (i % 3))
            for i in range(args.machines)
        ]
        pool = CondorPool(
            specs,
            config=PoolConfig(
                seed=plan.seed,
                advertise_interval=60.0,
                negotiation_interval=60.0,
                chaos=plan,
                chaos_horizon=args.horizon,
            ),
        )
        jobs = [
            Job(
                job_id=j,
                owner="alice" if j % 2 == 0 else "bob",
                total_work=600.0 + 60.0 * (j % 5),
            )
            for j in range(args.jobs)
        ]
        pool.submit_all(jobs, arrival_times=[5.0 * j for j in range(len(jobs))])
        finished_at = pool.run_until_quiescent(
            check_interval=60.0, max_time=8.0 * args.horizon
        )
        done = len(pool.completed_jobs())
        stats = pool.net.stats
        # Close the recorded run with the PR 5 robustness counters so
        # `repro obs report --section robustness` has data to fold in.
        totals = obs.metrics.totals()
        obs.event_log.emit(
            "run.stats",
            t=finished_at,
            delivered=stats.delivered,
            dropped_loss=stats.dropped_loss,
            dropped_partition=stats.dropped_partition,
            duplicated=stats.duplicated,
            dropped_down=stats.dropped_down,
            **{
                key.replace(".", "_"): totals[key]
                for key in (
                    "retries.sent",
                    "retries.exhausted",
                    "leases.renewed",
                    "leases.expired",
                    "schedd.leases_lost",
                    "schedd.duplicate_matches",
                    "machine.duplicate_claims",
                    "parallel.chunks",
                    "parallel.pairs_scored",
                    "parallel.fallbacks",
                )
                if key in totals
            },
        )
        print(f"profile   : {plan.name} (seed {plan.seed})")
        print(f"jobs      : {done}/{len(jobs)} completed at t={finished_at:.0f}")
        print(
            "network   : "
            f"{stats.delivered} delivered, {stats.dropped_loss} lost, "
            f"{stats.dropped_partition} partitioned, {stats.duplicated} duplicated, "
            f"{stats.dropped_down} to-down"
        )
        if args.out:
            print(f"events    : {args.out}")
        if args.trace:
            print(f"trace     : {args.trace}")
        if args.series:
            print(f"series    : {args.series}")
        return 0 if done == len(jobs) else 1
    finally:
        if args.no_retry:
            set_retries(None)
        if args.workers:
            _parallel.set_scoring_workers(workers_before)
            _parallel.set_pair_threshold(threshold_before)
            _parallel.shutdown_scoring_pool()
        obs.event_log.close_file()
        obs.causal_log.close_file()
        obs.series.close_file()
        obs.disable()


# ---------------------------------------------------------------------------
# entry point


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ClassAd matchmaking tools (Raman/Livny/Solomon, HPDC'98)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("eval", help="evaluate a classad expression")
    p.add_argument("expression")
    p.add_argument("--ad", help="file providing the `self` ad")
    p.add_argument("--other", help="file providing the `other` ad")
    p.set_defaults(func=cmd_eval)

    p = sub.add_parser("match", help="bilateral match of two ads")
    p.add_argument("customer")
    p.add_argument("provider")
    p.set_defaults(func=cmd_match)

    p = sub.add_parser("best", help="best provider for a customer ad")
    p.add_argument("customer")
    p.add_argument("pool")
    p.set_defaults(func=cmd_best)

    p = sub.add_parser("status", help="condor_status view of a pool file")
    p.add_argument("pool")
    p.add_argument("--constraint", help="one-way filter expression")
    p.set_defaults(func=cmd_status)

    p = sub.add_parser("q", help="condor_q view of a pool file")
    p.add_argument("pool")
    p.add_argument("--owner", help="filter to one submitter")
    p.set_defaults(func=cmd_q)

    p = sub.add_parser("diagnose", help="why won't this job match?")
    p.add_argument("job")
    p.add_argument("pool")
    p.set_defaults(func=cmd_diagnose)

    p = sub.add_parser("convert", help="convert an ad between formats")
    p.add_argument("file")
    p.add_argument("--to", choices=("json", "classad"), required=True)
    p.set_defaults(func=cmd_convert)

    obs = sub.add_parser("obs", help="negotiation forensics (repro-events/1 logs)")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)

    p = obs_sub.add_parser("record", help="negotiate over a pool file, recording events")
    p.add_argument("pool", help="pool file holding both Job and Machine ads")
    p.add_argument("--out", default="events.jsonl", help="event log path (default: events.jsonl)")
    p.add_argument("--cycles", type=int, default=1, help="negotiation cycles to run")
    p.set_defaults(func=cmd_obs_record)

    p = obs_sub.add_parser("report", help="per-cycle summary of a recorded run")
    p.add_argument("file", help="repro-events/1 JSONL file")
    p.add_argument(
        "--section",
        action="append",
        choices=REPORT_SECTIONS,
        help="only these sections (repeatable; default: all)",
    )
    p.set_defaults(func=cmd_obs_report)

    p = obs_sub.add_parser("why", help="explain one job's rejections")
    p.add_argument("job_id", help="JobId of the job to explain")
    p.add_argument("file", help="repro-events/1 JSONL file")
    p.set_defaults(func=cmd_obs_why)

    p = obs_sub.add_parser("check", help="verify protocol invariants over a recorded run")
    p.add_argument("file", help="repro-events/1 JSONL file")
    p.add_argument(
        "--require-complete",
        action="store_true",
        help="also fail on unterminated claims and unfinished jobs",
    )
    p.set_defaults(func=cmd_obs_check)

    p = obs_sub.add_parser("tail", help="print the recorded event stream")
    p.add_argument("file", help="repro-events/1 JSONL file")
    p.add_argument("--limit", type=int, default=20, help="events to show (default: 20)")
    p.add_argument("--kind", action="append", help="only these kinds (repeatable)")
    p.set_defaults(func=cmd_obs_tail)

    p = obs_sub.add_parser("export", help="JSON summary for CI (repro-events-summary/1)")
    p.add_argument("file", help="repro-events/1 JSONL file")
    p.add_argument("--out", help="write summary here instead of stdout")
    p.set_defaults(func=cmd_obs_export)

    p = obs_sub.add_parser("timeline", help="one job's lifecycle timeline")
    p.add_argument("job_id", help="job id, or owner.job-id when ids collide")
    p.add_argument("file", help="repro-events/1 JSONL file")
    p.set_defaults(func=cmd_obs_timeline)

    p = obs_sub.add_parser("critical-path", help="causal critical path of one job")
    p.add_argument("job_id", help="job id, owner.job-id, or full trace id")
    p.add_argument("file", help="repro-trace/1 JSONL file")
    p.set_defaults(func=cmd_obs_critical_path)

    p = obs_sub.add_parser("latency", help="per-phase dwell and latency percentiles")
    p.add_argument("file", help="repro-events/1 JSONL file")
    p.add_argument("--json", action="store_true", help="emit repro-latency/1 JSON")
    p.set_defaults(func=cmd_obs_latency)

    p = obs_sub.add_parser("pool", help="pool health time series (repro-series/1)")
    p.add_argument("file", help="repro-series/1 JSONL file")
    p.add_argument("--limit", type=int, help="only the last N samples")
    p.add_argument("--watch", action="store_true", help="follow a live series file")
    p.add_argument(
        "--interval", type=float, default=0.5, help="poll interval for --watch (s)"
    )
    p.set_defaults(func=cmd_obs_pool)

    from .sim.chaos import PROFILES

    p = sub.add_parser("chaos", help="run a pool under a fault-injection profile")
    p.add_argument("profile", choices=PROFILES)
    p.add_argument("--out", help="record a repro-events/1 log here")
    p.add_argument("--trace", help="record a repro-trace/1 causal trace here")
    p.add_argument("--series", help="record a repro-series/1 pool series here")
    p.add_argument("--seed", type=int, help="override the profile's seed")
    p.add_argument("--machines", type=int, default=6)
    p.add_argument("--jobs", type=int, default=16)
    p.add_argument("--horizon", type=float, default=3600.0, help="chaos window span (s)")
    p.add_argument(
        "--no-retry",
        action="store_true",
        help="disable protocol retries/leases (demonstrates stranded work)",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="score negotiation candidates on N worker processes "
        "(0 = serial; recordings stay bitwise-deterministic either way)",
    )
    p.set_defaults(func=cmd_chaos)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
