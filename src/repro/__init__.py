"""repro — a reproduction of "Matchmaking: Distributed Resource Management
for High Throughput Computing" (Raman, Livny & Solomon, HPDC 1998).

Subpackages map to DESIGN.md's system inventory:

* :mod:`repro.classads` — the classad language (data model + query
  language folded together; Section 3.1).
* :mod:`repro.matchmaking` — bilateral matching, ranking, the matchmaker
  service, fair-share accounting, and the Section 5 future-work systems
  (gangmatching, aggregation, diagnostics).
* :mod:`repro.protocols` — advertising, match-notification, and claiming
  protocols, including authorization tickets (Sections 3.2 and 4).
* :mod:`repro.sim` — the discrete-event simulation and network substrate
  standing in for the paper's campus pool.
* :mod:`repro.condor` — the Condor-style agents: resource-owner agents
  (startd), customer agents (schedd), collector and negotiator
  (Section 4).
* :mod:`repro.baselines` — the conventional systems of Sections 1–2:
  static queues (NQE/PBS/LSF-style) and a centralized system-model
  allocator.
"""

__version__ = "1.0.0"

from .classads import ClassAd, evaluate, parse, parse_record, unparse

__all__ = ["ClassAd", "evaluate", "parse", "parse_record", "unparse", "__version__"]
