"""Static-queue scheduler — S18, the NQE/PBS/LSF-style baseline.

Section 2: "Systems such as NQE, PBS, LSF and LoadLeveler process user
submitted jobs by finding resources that have been identified either
explicitly through a job control language, or implicitly by submitting
the job to a particular queue that is associated with a set of
resources.  Customers of the system have to identify a specific queue to
submit to a priori, which then fixes the set of resources that may be
used, and hinders dynamic qualitative resource discovery."

Faithfully reproduced properties:

* each queue is statically bound to a machine subset at configuration
  time (the administrator "anticipates the services");
* a job is submitted *to a queue* and can only ever run on that queue's
  machines — idle capacity in other queues is invisible to it;
* scheduling within a queue is FCFS;
* there is no bilateral policy language: a machine is either in a queue
  or not.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

from ..condor.jobs import Job
from ..condor.machine import MachineSpec, OwnerModel
from ..condor.states import JobState
from ..sim import PoolMetrics, RngStream, Simulator
from .machines import BaselineMachine


class UnknownQueueError(KeyError):
    """Submitting to a queue the administrator never configured."""


@dataclass
class JobQueue:
    """One configured queue and its FCFS backlog."""

    name: str
    machines: List[BaselineMachine]
    waiting: Deque[Job] = field(default_factory=deque)


class QueueBasedScheduler:
    """The complete static-queue system on a simulator."""

    def __init__(self, seed: int = 1):
        self.sim = Simulator()
        self.rng = RngStream(seed)
        self.metrics = PoolMetrics()
        self.queues: Dict[str, JobQueue] = {}
        self._machine_queues: Dict[str, List[JobQueue]] = {}
        self.machines: Dict[str, BaselineMachine] = {}
        self._pending_submissions = 0

    # -- configuration -------------------------------------------------

    def add_machine(
        self, spec: MachineSpec, owner_model: Optional[OwnerModel] = None
    ) -> BaselineMachine:
        machine = BaselineMachine(
            self.sim,
            spec,
            owner_model=owner_model,
            rng=self.rng.fork(f"owner/{spec.name}"),
            on_available=self._machine_available,
            on_eviction=self._job_evicted,
        )
        self.machines[spec.name] = machine
        self._machine_queues[spec.name] = []
        return machine

    def add_queue(self, name: str, machine_names: Sequence[str]) -> JobQueue:
        """Bind a queue to a fixed machine subset (admin-time decision)."""
        machines = [self.machines[m] for m in machine_names]
        queue = JobQueue(name=name, machines=machines)
        self.queues[name] = queue
        for machine_name in machine_names:
            self._machine_queues[machine_name].append(queue)
        return queue

    # -- submission ---------------------------------------------------------

    def submit(self, job: Job, queue_name: str, at: Optional[float] = None) -> None:
        """Submit *job* to *queue_name* — the a-priori binding the paper
        criticizes: this fixes the set of usable resources forever."""
        if queue_name not in self.queues:
            raise UnknownQueueError(queue_name)
        if at is not None:
            self._pending_submissions += 1
            self.sim.schedule_at(at, self._arrive, (job, queue_name))
        else:
            self._enqueue(job, self.queues[queue_name])

    def _arrive(self, submission) -> None:
        job, queue_name = submission
        self._pending_submissions -= 1
        self._enqueue(job, self.queues[queue_name])

    def _enqueue(self, job: Job, queue: JobQueue) -> None:
        job.submit_time = self.sim.now
        job.state = JobState.IDLE
        self.metrics.jobs_submitted += 1
        queue.waiting.append(job)
        self._dispatch(queue)

    # -- dispatch -----------------------------------------------------------

    def _dispatch(self, queue: JobQueue) -> None:
        """FCFS: start waiting jobs on the queue's idle machines.

        Head-of-line semantics: a job that fits no currently-idle machine
        blocks the ones behind it only if nothing else can start — we
        scan past unplaceable jobs, which is the kinder variant (pure
        head-of-line would make this baseline look even worse).
        """
        if not queue.waiting:
            return
        still_waiting: Deque[Job] = deque()
        while queue.waiting:
            job = queue.waiting.popleft()
            machine = self._find_idle_machine(queue, job)
            if machine is None:
                still_waiting.append(job)
            else:
                self._start(job, machine)
        queue.waiting = still_waiting

    def _find_idle_machine(self, queue: JobQueue, job: Job) -> Optional[BaselineMachine]:
        for machine in queue.machines:
            if machine.available and machine.can_run(job):
                return machine
        return None

    def _start(self, job: Job, machine: BaselineMachine) -> None:
        job.state = JobState.RUNNING
        job.running_on = machine.spec.name
        if job.first_start_time is None:
            job.first_start_time = self.sim.now
            self.metrics.wait_time.add(job.first_start_time - job.submit_time)
        machine.start_job(job, self._job_done)

    def _job_done(self, job: Job, work_done: float) -> None:
        job.state = JobState.COMPLETED
        job.completion_time = self.sim.now
        job.running_on = None
        self.metrics.jobs_completed += 1
        self.metrics.goodput += work_done
        self.metrics.turnaround.add(job.completion_time - job.submit_time)

    def _job_evicted(self, job: Job, work_done: float, checkpointed: bool) -> None:
        # Static binding: the job goes back to (the front of) a queue the
        # evicting machine belongs to — it can never escape its queue.
        evicting_machine = job.running_on
        job.state = JobState.IDLE
        job.running_on = None
        job.evictions += 1
        self.metrics.evictions += 1
        if checkpointed:
            job.completed_work += work_done
            self.metrics.evictions_checkpointed += 1
            self.metrics.goodput += work_done
        else:
            job.restarts += 1
            self.metrics.badput += work_done
        home = self._home_queue(evicting_machine)
        if home is None:
            raise RuntimeError(f"machine {evicting_machine} belongs to no queue")
        home.waiting.appendleft(job)
        self._dispatch(home)

    def _home_queue(self, machine_name: str) -> Optional[JobQueue]:
        queues = self._machine_queues.get(machine_name, [])
        return queues[0] if queues else None

    def _machine_available(self, machine: BaselineMachine) -> None:
        for queue in self._machine_queues[machine.spec.name]:
            self._dispatch(queue)
            if not machine.available:
                return

    # -- execution ----------------------------------------------------------

    def start(self) -> None:
        for machine in self.machines.values():
            machine.start()

    def run_until(self, time: float) -> None:
        self.sim.run_until(time)

    def unfinished(self) -> int:
        return self.metrics.jobs_submitted - self.metrics.jobs_completed

    def run_until_quiescent(self, check_interval: float = 300.0, max_time: float = 1e7) -> float:
        self.start()
        while self.sim.now < max_time:
            self.sim.run_until(self.sim.now + check_interval)
            if self._pending_submissions == 0 and self.unfinished() == 0:
                return self.sim.now
        return self.sim.now
