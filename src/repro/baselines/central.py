"""Centralized system-model allocator — S19, the Section 1 baseline.

Section 1: the conventional paradigm needs "a system model, which is an
abstraction of the underlying resources", and "distributed ownership
makes it impossible to formulate a monolithic system model": the model
has no language for "a job can run on a workstation only if ... the
keyboard hasn't been touched for over fifteen minutes", so owners of
personal workstations will not hand their machines to a scheduler that
cannot promise to respect them.

We therefore give the central allocator what it historically got:
**only the dedicated machines** (those with no interactive owner).  The
allocator itself is a perfectly good global FCFS scheduler over its
system model — its handicap is coverage, not cleverness, which is
precisely the paper's argument for why opportunistic matchmaking
harvests more cycles.

A configuration knob (``include_owned_machines``) lets experiment E3's
ablation also run the "angry owners" variant: owned machines join the
pool, the model ignores the owner, and every owner arrival kills the
running job without checkpoint (the pre-Condor experience that made
owners opt out).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from ..condor.jobs import Job
from ..condor.machine import MachineSpec, OwnerModel
from ..condor.states import JobState
from ..sim import PoolMetrics, RngStream, Simulator
from .machines import BaselineMachine


class CentralAllocator:
    """Global FCFS scheduling against a monolithic system model."""

    def __init__(self, seed: int = 1, include_owned_machines: bool = False):
        self.sim = Simulator()
        self.rng = RngStream(seed)
        self.metrics = PoolMetrics()
        self.machines: Dict[str, BaselineMachine] = {}
        self.waiting: Deque[Job] = deque()
        self.include_owned_machines = include_owned_machines
        self._pending_submissions = 0

    def add_machine(
        self, spec: MachineSpec, owner_model: Optional[OwnerModel] = None
    ) -> Optional[BaselineMachine]:
        """Add a machine to the system model.

        A machine with an interactive owner is refused unless
        ``include_owned_machines`` — the model cannot express the owner's
        policy, so by default the owner never donates it.
        """
        owned = owner_model is not None and type(owner_model) is not OwnerModel
        if owned and not self.include_owned_machines:
            return None
        machine = BaselineMachine(
            self.sim,
            spec,
            owner_model=owner_model,
            rng=self.rng.fork(f"owner/{spec.name}"),
            on_available=self._machine_available,
            on_eviction=self._job_evicted,
        )
        self.machines[spec.name] = machine
        return machine

    # -- submission ---------------------------------------------------------

    def submit(self, job: Job, at: Optional[float] = None) -> None:
        if at is not None:
            self._pending_submissions += 1
            self.sim.schedule_at(at, self._arrive, job)
        else:
            self._enqueue(job)

    def _arrive(self, job: Job) -> None:
        self._pending_submissions -= 1
        self._enqueue(job)

    def _enqueue(self, job: Job) -> None:
        job.submit_time = self.sim.now
        job.state = JobState.IDLE
        self.metrics.jobs_submitted += 1
        self.waiting.append(job)
        self._dispatch()

    # -- dispatch -----------------------------------------------------------

    def _dispatch(self) -> None:
        still_waiting: Deque[Job] = deque()
        while self.waiting:
            job = self.waiting.popleft()
            machine = self._find_machine(job)
            if machine is None:
                still_waiting.append(job)
            else:
                self._start(job, machine)
        self.waiting = still_waiting

    def _find_machine(self, job: Job) -> Optional[BaselineMachine]:
        for machine in self.machines.values():
            if machine.available and machine.can_run(job):
                return machine
        return None

    def _start(self, job: Job, machine: BaselineMachine) -> None:
        job.state = JobState.RUNNING
        job.running_on = machine.spec.name
        if job.first_start_time is None:
            job.first_start_time = self.sim.now
            self.metrics.wait_time.add(job.first_start_time - job.submit_time)
        machine.start_job(job, self._job_done)

    def _job_done(self, job: Job, work_done: float) -> None:
        job.state = JobState.COMPLETED
        job.completion_time = self.sim.now
        job.running_on = None
        self.metrics.jobs_completed += 1
        self.metrics.goodput += work_done
        self.metrics.turnaround.add(job.completion_time - job.submit_time)

    def _job_evicted(self, job: Job, work_done: float, checkpointed: bool) -> None:
        # The monolithic model has no checkpoint protocol with owners:
        # an owner arrival simply kills the job (the "angry owner" cost).
        job.state = JobState.IDLE
        job.running_on = None
        job.evictions += 1
        job.restarts += 1
        self.metrics.evictions += 1
        self.metrics.badput += work_done
        self.waiting.appendleft(job)
        self._dispatch()

    def _machine_available(self, machine: BaselineMachine) -> None:
        self._dispatch()

    # -- execution ----------------------------------------------------------

    def start(self) -> None:
        for machine in self.machines.values():
            machine.start()

    def run_until(self, time: float) -> None:
        self.sim.run_until(time)

    def unfinished(self) -> int:
        return self.metrics.jobs_submitted - self.metrics.jobs_completed

    def run_until_quiescent(self, check_interval: float = 300.0, max_time: float = 1e7) -> float:
        self.start()
        while self.sim.now < max_time:
            self.sim.run_until(self.sim.now + check_interval)
            if self._pending_submissions == 0 and self.unfinished() == 0:
                return self.sim.now
        return self.sim.now
