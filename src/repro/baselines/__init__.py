"""Conventional resource-management baselines — S18–S19 in DESIGN.md.

These reimplement the structural properties of the systems the paper
contrasts matchmaking against (Sections 1–2):

* :class:`QueueBasedScheduler` — NQE/PBS/LSF-style static queues: jobs
  are bound to a queue (and hence a fixed resource set) a priori;
* :class:`CentralAllocator` — a centralized scheduler over a monolithic
  system model, which cannot express owner policies and therefore only
  ever receives the dedicated machines (or, in the ablation variant,
  runs on owned machines and gets jobs killed by returning owners).
"""

from .central import CentralAllocator
from .machines import BaselineMachine
from .queues import JobQueue, QueueBasedScheduler, UnknownQueueError

__all__ = [
    "BaselineMachine",
    "CentralAllocator",
    "JobQueue",
    "QueueBasedScheduler",
    "UnknownQueueError",
]
