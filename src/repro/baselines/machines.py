"""Shared machine model for the baseline schedulers — part of S18/S19.

The baselines of Sections 1–2 (static queues, centralized system model)
predate the matchmaking protocols, so they are simulated without the
advertising/claiming stack: a scheduler object holds direct references
to machines and assigns jobs synchronously.  The *physical* behaviour —
owner arrivals evicting jobs, speed scaling, checkpoint retention — is
identical to :class:`repro.condor.machine.MachineAgent`, so throughput
comparisons (experiment E3) isolate the allocation architecture rather
than the workload model.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..condor.jobs import REFERENCE_MIPS, Job
from ..condor.machine import MachineSpec, OwnerModel
from ..sim import Simulator


class BaselineMachine:
    """A workstation under a baseline scheduler's direct control."""

    def __init__(
        self,
        sim: Simulator,
        spec: MachineSpec,
        owner_model: Optional[OwnerModel] = None,
        rng=None,
        on_available: Optional[Callable[["BaselineMachine"], None]] = None,
        on_eviction: Optional[Callable[[Job, float, bool], None]] = None,
    ):
        self.sim = sim
        self.spec = spec
        self.owner_model = owner_model or OwnerModel()
        self.rng = rng
        self.on_available = on_available
        self.on_eviction = on_eviction
        self.owner_active = False
        self.running: Optional[Job] = None
        self._started_at = 0.0
        self._completion_handle = None
        self._on_done: Optional[Callable[[Job, float], None]] = None
        self.jobs_completed = 0
        self.evictions = 0

    def start(self) -> None:
        active, until_change = self.owner_model.first_event(self.rng)
        self.owner_active = active
        if until_change != float("inf"):
            self.sim.schedule(until_change, self._owner_flip)

    # -- state -------------------------------------------------------------

    @property
    def available(self) -> bool:
        return not self.owner_active and self.running is None

    def _owner_flip(self) -> None:
        if self.owner_active:
            self.owner_active = False
            next_in = self.owner_model.idle_duration(self.rng)
            if self.on_available is not None:
                self.on_available(self)
        else:
            self.owner_active = True
            if self.running is not None:
                self._evict()
            next_in = self.owner_model.active_duration(self.rng)
        if next_in != float("inf"):
            self.sim.schedule(next_in, self._owner_flip)

    # -- execution ----------------------------------------------------------

    def can_run(self, job: Job) -> bool:
        """Static compatibility: platform and memory fit."""
        return (
            job.req_arch == self.spec.arch
            and job.req_opsys == self.spec.opsys
            and job.memory <= self.spec.memory
        )

    def start_job(self, job: Job, on_done: Callable[[Job, float], None]) -> None:
        if not self.available:
            raise RuntimeError(f"{self.spec.name} is not available")
        self.running = job
        self._on_done = on_done
        self._started_at = self.sim.now
        wall = job.remaining_work * REFERENCE_MIPS / self.spec.mips
        self._completion_handle = self.sim.schedule(wall, self._complete)

    def _work_done(self) -> float:
        return (self.sim.now - self._started_at) * self.spec.mips / REFERENCE_MIPS

    def _complete(self) -> None:
        job, on_done = self.running, self._on_done
        self.running = None
        self._on_done = None
        self.jobs_completed += 1
        on_done(job, self._work_done())
        if self.available and self.on_available is not None:
            self.on_available(self)

    def _evict(self) -> None:
        job = self.running
        self.running = None
        self._on_done = None
        if self._completion_handle is not None:
            self.sim.cancel(self._completion_handle)
            self._completion_handle = None
        self.evictions += 1
        if self.on_eviction is not None:
            self.on_eviction(job, self._work_done(), job.want_checkpoint)
