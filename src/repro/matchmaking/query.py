"""One-way matching — the query side of the framework.

Section 4: "One-way matching protocols are used to find all objects
matching a given pattern.  For example, there are tools to check on the
status of job queues and browse existing resources."

Two styles are provided:

* :func:`select` — the ``condor_status -constraint`` style: a bare
  expression evaluated with each target ad as ``self``.
* :func:`one_way_match` — a query *classad* whose Constraint is checked
  against each target (only the query's constraint matters; the target's
  constraint is not consulted — that is what makes it one-way).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

from ..classads import ClassAd, Expr, is_true, parse
from ..classads.compile import compile_expr
from .match import DEFAULT_POLICY, MatchPolicy, constraint_holds

# String constraints recur verbatim — every negotiate() re-selects with
# 'Type == "Machine"', status tools poll with a fixed query — so the
# parse for a string source is memoized (compilation itself is served by
# the compile module's structural memo, which also keeps the
# REPRO_NO_COMPILE toggle live).  Bounded like that memo; a workload
# cycling through thousands of distinct query strings just loses the
# shortcut, never correctness.
_PARSED_STRINGS: dict = {}
_PARSED_STRINGS_LIMIT = 512


def _parsed(constraint: Union[str, Expr]) -> Expr:
    if not isinstance(constraint, str):
        return constraint
    expr = _PARSED_STRINGS.get(constraint)
    if expr is None:
        if len(_PARSED_STRINGS) >= _PARSED_STRINGS_LIMIT:
            _PARSED_STRINGS.clear()
        expr = _PARSED_STRINGS[constraint] = parse(constraint)
    return expr


def select(
    ads: Iterable[ClassAd],
    constraint: Union[str, Expr],
    limit: Optional[int] = None,
) -> List[ClassAd]:
    """All ads for which *constraint* evaluates to true (ad as ``self``).

    Ads for which the constraint is undefined or error are excluded, per
    the matchmaking rule that only ``true`` matches.  The constraint is
    compiled once per distinct source (memoized) and the closure probes
    the whole pool.
    """
    compiled = compile_expr(_parsed(constraint))
    found: List[ClassAd] = []
    for ad in ads:
        if is_true(compiled.evaluate(ad)):
            found.append(ad)
            if limit is not None and len(found) >= limit:
                break
    return found


def one_way_match(
    query: ClassAd,
    ads: Iterable[ClassAd],
    policy: MatchPolicy = DEFAULT_POLICY,
    limit: Optional[int] = None,
) -> List[ClassAd]:
    """All ads satisfying the *query* ad's Constraint.

    The query ad may carry auxiliary attributes its Constraint refers to
    via ``self.``; the target is ``other``.
    """
    found: List[ClassAd] = []
    for ad in ads:
        if constraint_holds(query, ad, policy):
            found.append(ad)
            if limit is not None and len(found) >= limit:
                break
    return found


def count_matching(ads: Iterable[ClassAd], constraint: Union[str, Expr]) -> int:
    """Number of ads satisfying *constraint* (status-tool helper)."""
    return len(select(ads, constraint))
