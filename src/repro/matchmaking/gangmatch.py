"""Gangmatching: multilateral matching / co-allocation — S20 in DESIGN.md.

Section 3.1 motivates it ("classads ... can be arbitrarily nested,
leading to a natural language for expressing resource aggregates or
co-allocation requests") and Section 5 names it future work ("Group
matching may be used to both boost matchmaking throughput and service
co-allocation requests").

A *gang request* extends a customer ad with an ordered list of **ports**,
each a sub-request with its own Constraint and Rank.  Ports are matched
in order; when port *i* is being matched, the ads already bound to
earlier ports are visible as nested classads under their labels, so a
later port's constraint can correlate with an earlier binding::

    cpu port:      other.Type == "Machine" && other.Arch == "INTEL"
    license port:  other.Type == "License" && other.App == "run_sim"
                   && other.Host == cpu.Name      # same machine!

Matching is bilateral at every port: the candidate's own Constraint is
evaluated against the request (with current bindings visible), so a
license server can still say ``member(other.Owner, AllowedUsers)``.

The search is depth-first with per-port Rank ordering and backtracking,
which handles the scarce-resource interleavings a greedy binder misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..classads import ClassAd, Expr, is_true, parse, rank_value
from .match import DEFAULT_POLICY, MatchPolicy


@dataclass
class Port:
    """One slot of a gang request."""

    label: str
    constraint: str  # classad expression source
    rank: str = "0"

    def __post_init__(self):
        self._constraint_expr: Expr = parse(self.constraint)
        self._rank_expr: Expr = parse(self.rank)


@dataclass
class GangRequest:
    """A co-allocation request: base attributes plus ordered ports."""

    base: ClassAd
    ports: List[Port]

    def __post_init__(self):
        labels = [p.label.lower() for p in self.ports]
        if len(set(labels)) != len(labels):
            raise ValueError("port labels must be unique")
        for port in self.ports:
            if port.label in self.base:
                raise ValueError(
                    f"port label {port.label!r} collides with a base attribute"
                )


@dataclass
class GangMatch:
    """A successful co-allocation: one provider ad per port label."""

    request: GangRequest
    bindings: Dict[str, ClassAd]
    total_rank: float

    def provider(self, label: str) -> ClassAd:
        return self.bindings[label]


@dataclass
class GangStats:
    """Search effort accounting (the E9 benchmark reports these)."""

    nodes_explored: int = 0
    candidates_evaluated: int = 0
    backtracks: int = 0


def _working_ad(request: GangRequest, bindings: Dict[str, ClassAd]) -> ClassAd:
    """The request as seen by candidates: base + bound ports nested in."""
    working = request.base.copy()
    for label, ad in bindings.items():
        working[label] = ad
    return working


def gang_match(
    request: GangRequest,
    providers: Sequence[ClassAd],
    policy: MatchPolicy = DEFAULT_POLICY,
    stats: Optional[GangStats] = None,
) -> Optional[GangMatch]:
    """Find a full assignment of providers to ports, or None.

    Each provider may serve at most one port.  Candidates at each port
    are tried best-Rank-first; the first complete assignment found is
    returned (rank-greedy with backtracking, not a global optimum —
    matching the matchmaker's hint semantics).
    """
    stats = stats if stats is not None else GangStats()

    def candidates_for(port: Port, bindings: Dict[str, ClassAd], used: set) -> List[Tuple[float, int, ClassAd]]:
        working = _working_ad(request, bindings)
        found = []
        for index, provider in enumerate(providers):
            if id(provider) in used:
                continue
            stats.candidates_evaluated += 1
            # Port-side constraint, with bindings visible via `working`.
            if not is_true(working.eval_expr(port._constraint_expr, other=provider)):
                continue
            # Provider-side constraint (bilateral, as always).
            name = policy.constraint_of(provider)
            if name is not None and not is_true(
                provider.evaluate(name, other=working)
            ):
                continue
            rank = rank_value(working.eval_expr(port._rank_expr, other=provider))
            found.append((rank, -index, provider))
        found.sort(reverse=True)
        return found

    def solve(i: int, bindings: Dict[str, ClassAd], used: set) -> Optional[Dict[str, ClassAd]]:
        if i == len(request.ports):
            return dict(bindings)
        stats.nodes_explored += 1
        port = request.ports[i]
        for rank, _, provider in candidates_for(port, bindings, used):
            bindings[port.label] = provider
            used.add(id(provider))
            solution = solve(i + 1, bindings, used)
            if solution is not None:
                return solution
            del bindings[port.label]
            used.discard(id(provider))
            stats.backtracks += 1
        return None

    solution = solve(0, {}, set())
    if solution is None:
        return None
    total = 0.0
    for port in request.ports:
        working = _working_ad(request, {k: v for k, v in solution.items()})
        total += rank_value(working.eval_expr(port._rank_expr, other=solution[port.label]))
    return GangMatch(request=request, bindings=solution, total_rank=total)


def gang_match_all(
    requests: Sequence[GangRequest],
    providers: Sequence[ClassAd],
    policy: MatchPolicy = DEFAULT_POLICY,
) -> List[Optional[GangMatch]]:
    """Serve multiple gang requests; providers bound by earlier requests
    are unavailable to later ones (one negotiation pass)."""
    used: set = set()
    results: List[Optional[GangMatch]] = []
    for request in requests:
        available = [p for p in providers if id(p) not in used]
        match = gang_match(request, available, policy)
        results.append(match)
        if match is not None:
            for provider in match.bindings.values():
                used.add(id(provider))
    return results
