"""The matchmaker service — S6 in DESIGN.md.

"A designated matchmaking service (matchmaker) matches classads in a
manner that satisfies the constraints specified in the respective
advertisements and informs the relevant entities of the match.  The
responsibility of the matchmaker then ceases with respect to the match."
(Section 3.)

Two layers live here:

* :class:`Matchmaker` — the stateless match engine: given the current ad
  collection it identifies matches; it retains *no state about matches*
  (the paper's end-to-end argument), only the ads most recently
  advertised to it, which are soft state refreshed by the advertising
  protocol and fully reconstructible after a crash (experiment E1).
* :func:`negotiation_cycle` — the pure algorithm of Section 4's
  "negotiation cycle": serve submitters in fair-share order, pick the
  best-ranked compatible resource for each request, honouring
  Rank-driven preemption.

Since PR 4 the cycle is *batched*: the paper's Section 5 observation
that ad lists "exhibit a high degree of regularity" holds for requests
too — a submitter's queue is typically thousands of jobs with a handful
of distinct Requirements/Rank combinations.  The cycle groups requests
into behavioural equivalence classes (see :func:`_request_signature`),
evaluates constraints and ranks once per (class, provider), and lets
class members consume the shared ranked candidate list under the
per-cycle ``taken`` set.  The batched cycle is assignment-identical to
the naive scan — same matches, same preemptions, same tie-breaks, and
(with the event log on) the same forensic event stream, replayed per
member from the per-class dispositions.  ``REPRO_NO_BATCH=1`` or
:func:`set_batching` falls back to the naive reference path, mirroring
PR 3's ``REPRO_NO_COMPILE`` switch.

Since PR 7 the batched engine's per-class candidate construction can
additionally fan out to a persistent pool of scoring worker *processes*
(:mod:`.parallel`): constraint checks and bilateral rank evaluations for
each ``(class, provider)`` pair run on every core, results are merged in
deterministic provider order, and assignment/preemption/fair-share
commit stays serial and unchanged — so parallel cycles are bit-for-bit
identical to serial ones.  ``REPRO_SCORING_WORKERS=<n>`` opts in,
``REPRO_NO_PARALLEL=1`` kills it, and small classes fall back to the
serial scorer automatically (IPC overhead dominates tiny pools).
"""

from __future__ import annotations

import itertools
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..classads import ClassAd
from ..classads.ast import Expr, Literal, external_references
from ..classads.compile import cache_hits_total as _compiled_cache_hits, structural_key
from ..obs import event_log as _events, metrics as _metrics, tracer as _tracer
from . import parallel as _parallel
from .accounting import Accountant
from .diagnose import attribute_failure
from .index import MaintainedIndex, ProviderIndex
from .match import (
    DEFAULT_POLICY,
    Match,
    MatchPolicy,
    availability_of,
    best_match,
    constraints_satisfied,
    current_owner_of,
    current_rank_of,
    evaluate_rank,
    rank_candidates,
)
from .query import select

# Observability: the hot loop accumulates into the (pre-existing, local)
# CycleStats and the global counters are bumped once per cycle, so an
# enabled registry adds a handful of dict updates per cycle — not per
# (request, provider) pair.
_MM_CYCLES = _metrics.counter("matchmaker.cycles", "negotiation cycles run")
_MM_REQUESTS = _metrics.counter("matchmaker.requests", "requests considered")
_MM_MATCHED = _metrics.counter("matchmaker.matched", "requests matched")
_MM_REJECTED = _metrics.counter(
    "matchmaker.rejected", "requests with no compatible provider this cycle"
)
_MM_PREEMPTIONS = _metrics.counter(
    "matchmaker.preemptions", "matches that preempt a running customer"
)
_MM_PRUNED = _metrics.counter(
    "matchmaker.index_pruned", "constraint evaluations saved by index pre-filtering"
)
_MM_CLASSES = _metrics.counter(
    "matchmaker.request_classes", "request equivalence classes built per cycle"
)
_MM_CYCLE_SECONDS = _metrics.histogram(
    "matchmaker.cycle_seconds", "wall-clock duration of one negotiation cycle"
)

#: Process-wide negotiation-cycle numbering for the forensic event log —
#: every ``cycle.*``/``match.*`` event carries one of these so post-mortem
#: queries can group a run's events by cycle.
_CYCLE_IDS = itertools.count(1)


def reset_cycle_ids() -> None:
    """Restart cycle numbering at 1 (fresh recordings — ``repro chaos``
    resets before each run so same-seed event streams are bitwise
    identical)."""
    global _CYCLE_IDS
    _CYCLE_IDS = itertools.count(1)


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


_BATCH_ENABLED = not _env_flag("REPRO_NO_BATCH")


def batching_enabled() -> bool:
    """Whether request batching is active (see ``REPRO_NO_BATCH``)."""
    return _BATCH_ENABLED


def set_batching(enabled: bool) -> None:
    """Programmatic kill-switch (benchmarks and tests toggle this)."""
    global _BATCH_ENABLED
    _BATCH_ENABLED = bool(enabled)


def _identity_field(ad: ClassAd, name: str):
    """Fast identity read for event fields: ads bind ``Name``/``JobId``
    to plain literals, which can be read off the AST without paying the
    evaluator — the per-rejection emit path must stay cheap enough to
    hold the <=5% events-enabled overhead bar."""
    expr = ad.lookup(name)
    if expr is None:
        return None
    if isinstance(expr, Literal):
        value = expr.value
    else:
        value = ad.evaluate(name)
    return value if isinstance(value, (int, float, str)) and not isinstance(value, bool) else None


def _job_identity(request: ClassAd) -> Dict[str, object]:
    """The fields that name a request in forensic events."""
    return {"job": _identity_field(request, "JobId")}


def _provider_name(provider: ClassAd):
    return _identity_field(provider, "Name")


@dataclass(frozen=True)
class Assignment:
    """One negotiated match: a request ad paired with a provider ad.

    ``preempts`` names the submitter currently occupying the provider
    when the match is preemptive, else None.
    """

    submitter: str
    request: ClassAd
    provider: ClassAd
    customer_rank: float
    provider_rank: float
    preempts: Optional[str] = None


@dataclass
class CycleStats:
    """Bookkeeping for one negotiation cycle (feeds E6's benchmarks)."""

    submitters_considered: int = 0
    requests_considered: int = 0
    matched: int = 0
    preemptions: int = 0
    constraint_evaluations_saved: int = 0  # by index pre-filtering
    request_classes: int = 0  # equivalence classes built (0 on the naive path)
    pairings_saved: int = 0  # (request, provider) pairings served from a class
    parallel_chunks: int = 0  # worker chunks engaged by class builds
    parallel_pairs_scored: int = 0  # pairs evaluated in worker processes
    parallel_fallbacks: int = 0  # class builds scored serially despite config


# Backwards-compatible aliases: these classification helpers moved to
# .match in PR 4 so the batched engine and the naive reference path share
# one definition.
_availability = availability_of
_current_rank = current_rank_of
_current_owner = current_owner_of


# -- request equivalence ------------------------------------------------------
#
# Two requests are behaviourally interchangeable inside a cycle when every
# expression the matching algorithm can possibly evaluate against them is
# structurally identical (refined by literal types — the compile module's
# memo key).  That covers (a) the request's own Constraint and Rank plus
# every self/bare attribute they transitively read, and (b) every request
# attribute some provider in the pool reads through ``other.`` (or a bare
# name the provider doesn't define itself) — providers constrain customers
# too, so the signature must close over what the *pool* observes, not just
# what the request mentions.

_REFS_MEMO: Dict[Expr, frozenset] = {}
_REFS_LIMIT = 2048


def _expr_refs(expr: Expr) -> frozenset:
    """Memoized :func:`external_references`.

    Keyed structurally: equal ASTs reference equal attribute sets even
    when their literal *types* differ, so the conflation that forces
    ``structural_key`` to carry a type signature is harmless here.
    """
    refs = _REFS_MEMO.get(expr)
    if refs is None:
        if len(_REFS_MEMO) >= _REFS_LIMIT:
            _REFS_MEMO.clear()
        refs = frozenset(external_references(expr))
        _REFS_MEMO[expr] = refs
    return refs


def _provider_observed_attrs(provider: ClassAd, policy: MatchPolicy) -> Set[str]:
    """Request attributes this provider's Constraint/Rank can read.

    Transitive: a Constraint referencing the provider's own ``MyPolicy``
    attribute observes whatever *that* expression reads.  ``other.X``
    always reads the request; a bare ``X`` only falls through to the
    request when the provider does not define it.
    """
    observed: Set[str] = set()
    seen: Set[str] = set()
    stack: List[Expr] = []
    cname = policy.constraint_of(provider)
    if cname is not None:
        stack.append(provider.lookup(cname))
    rank_expr = provider.lookup(policy.rank_attr)
    if rank_expr is not None:
        stack.append(rank_expr)
    while stack:
        expr = stack.pop()
        for scope, name in _expr_refs(expr):
            if scope == "other":
                observed.add(name)
            elif scope == "self" or name in provider:
                if name not in seen:
                    seen.add(name)
                    sub = provider.lookup(name)
                    if sub is not None:
                        stack.append(sub)
            else:
                observed.add(name)
    return observed


def _pool_observed_attrs(providers: Sequence[ClassAd], policy: MatchPolicy) -> Set[str]:
    """Union of request attributes any provider in the pool can read."""
    observed: Set[str] = set()
    for provider in providers:
        observed |= _provider_observed_attrs(provider, policy)
    return observed


def _request_signature(
    request: ClassAd, policy: MatchPolicy, observed: Set[str]
) -> Tuple:
    """The equivalence-class key for *request* against this cycle's pool.

    Maps every attribute the cycle can evaluate on the request — its
    Constraint/Rank, their transitive self/bare references, and the
    pool-observed attributes — to its expression's ``structural_key``
    (None when absent; absence is behaviour too: it evaluates to
    ``undefined``).  Equal signatures imply identical constraint, rank,
    and provider-side evaluations against every provider, hence
    identical candidate lists.
    """
    cname = policy.constraint_of(request)
    visited: Dict[str, Optional[Tuple]] = {}
    stack: List[str] = [policy.rank_attr.lower()]
    if cname is not None:
        stack.append(cname.lower())
    stack.extend(observed)
    while stack:
        name = stack.pop()
        if name in visited:
            continue
        expr = request.lookup(name)
        if expr is None:
            visited[name] = None
            continue
        visited[name] = structural_key(expr)
        for scope, ref in _expr_refs(expr):
            if scope != "other":
                stack.append(ref)
    return (None if cname is None else cname.lower(), frozenset(visited.items()))


class _ClassState:
    """Shared per-cycle state of one request equivalence class."""

    __slots__ = ("pool", "cands", "head", "dispositions", "members")

    def __init__(self, pool, cands, dispositions):
        self.pool = pool
        #: Viable candidates as (customer_rank, provider_rank, -pos,
        #: provider, preempts) tuples, best first.  ``-pos`` is unique
        #: within the pool, so sorting never compares the ad objects and
        #: the order equals the naive max()'s preference order.
        self.cands = cands
        self.head = 0  # first candidate not yet known to be taken
        #: Per pool position: None for viable candidates, else the
        #: reject reason replayed into the event log for each member.
        #: Only built while the event log is enabled.
        self.dispositions = dispositions
        self.members = 0  # match attempts served from this class


def negotiation_cycle(
    requests_by_submitter: Mapping[str, Sequence[ClassAd]],
    providers: Sequence[ClassAd],
    accountant: Optional[Accountant] = None,
    policy: MatchPolicy = DEFAULT_POLICY,
    allow_preemption: bool = True,
    index: Optional[ProviderIndex] = None,
    stats: Optional[CycleStats] = None,
    batch: Optional[bool] = None,
    parallel: Optional[bool] = None,
) -> List[Assignment]:
    """Run one negotiation cycle and return the assignments.

    Fair matching (Section 4) happens in two mechanisms, both driven by
    the accountant: submitters are served in ascending effective-priority
    order, *and* each submitter's matches in the first serving round are
    capped at its fair-share "pie slice" of the available resources
    (shares ∝ 1/effective-priority).  Remaining capacity is then handed
    out unrestricted in priority order so no machine idles while work is
    queued.  Ordering alone cannot yield factor-weighted shares — two
    lock-step users would simply alternate whole cycles — which is why
    deployed Condor spins the pie; we reproduce that.

    For each request, the best compatible provider is chosen by
    (customer Rank, provider Rank) per Section 3.1.  A claimed provider
    may be matched only when preemption is allowed and the provider
    ranks the new customer *strictly above* its advertised
    ``CurrentRank`` — Section 4's "it is still interested in hearing
    from higher priority customers".

    ``batch`` overrides the module-level batching switch for this cycle
    (None follows :func:`batching_enabled`).  Batched and naive cycles
    produce identical assignments; the batched one evaluates each
    distinct (class, provider) pairing once.

    ``parallel`` likewise overrides the parallel-scoring switch (None
    follows :func:`.parallel.parallelism_enabled`); it engages only on
    the batched path, only when ``REPRO_SCORING_WORKERS`` configures a
    worker pool, and only for classes whose candidate pool clears the
    pair-count threshold — everything else scores serially, and the
    results are identical either way.

    The cycle only *identifies* matches; claiming is the parties' own
    business (separation of matching and claiming).
    """
    start = time.perf_counter()
    stats = stats if stats is not None else CycleStats()
    # Callers may pass an accumulating CycleStats; count only this
    # cycle's delta into the global registry.
    base_requests = stats.requests_considered
    base_matched = stats.matched
    base_preemptions = stats.preemptions
    base_pruned = stats.constraint_evaluations_saved
    base_classes = stats.request_classes
    base_pairings = stats.pairings_saved
    use_batch = _BATCH_ENABLED if batch is None else bool(batch)
    # Parallel scoring rides on the batched engine only: the naive path
    # is the semantic reference and stays single-core by construction.
    scoring = (
        _parallel.cycle_scoring(providers, enabled=parallel) if use_batch else None
    )
    submitters = list(requests_by_submitter.keys())
    if accountant is not None:
        submitters = accountant.negotiation_order(submitters)
    else:
        submitters.sort()

    # Forensics: hoist the event-log switch into a local once per cycle, so
    # the per-pair hot loop pays one local-variable truth test while the
    # log is off — and records clause-level rejection attribution while on.
    emit_events = _events.enabled
    cycle_id = next(_CYCLE_IDS) if emit_events else None
    base_cache_hits = _compiled_cache_hits() if emit_events else 0
    if emit_events:
        _events.emit(
            "cycle.begin",
            cycle=cycle_id,
            submitters=len(submitters),
            providers=len(providers),
            indexed=index is not None,
            batched=use_batch,
        )

    taken: set = set()  # ids of providers already matched this cycle
    assignments: List[Assignment] = []

    # Per-cycle provider memo: availability, preempting occupant, and
    # CurrentRank are facts of the ad, not of the pairing — compute each
    # once per provider per cycle instead of once per (request, provider).
    provider_states: Dict[int, Tuple[str, Optional[str], float]] = {}

    def _provider_state(provider: ClassAd) -> Tuple[str, Optional[str], float]:
        key = id(provider)
        state = provider_states.get(key)
        if state is None:
            avail = availability_of(provider)
            if avail == "preemptable":
                state = (avail, current_owner_of(provider) or "<unknown>", current_rank_of(provider))
            else:
                state = (avail, None, 0.0)
            provider_states[key] = state
        return state

    # Identity fields recur on every rejection event — a busy cycle emits
    # thousands of rejects, each naming the same few ads — so the ClassAd
    # lookups behind them are memoized per cycle like the provider state.
    provider_names: Dict[int, object] = {}
    job_identities: Dict[int, Dict[str, object]] = {}

    def _name_of(provider: ClassAd):
        key = id(provider)
        name = provider_names.get(key)
        if name is None:
            name = provider_names[key] = _provider_name(provider)
        return name

    def _identity_of(request: ClassAd) -> Dict[str, object]:
        key = id(request)
        ident = job_identities.get(key)
        if ident is None:
            ident = job_identities[key] = _job_identity(request)
        return ident

    def emit_reject(submitter: str, request: ClassAd, provider: ClassAd, **fields) -> None:
        _events.emit(
            "match.reject",
            cycle=cycle_id,
            submitter=submitter,
            provider=_name_of(provider),
            **_identity_of(request),
            **fields,
        )

    def emit_constraint_reject(submitter: str, request: ClassAd, provider: ClassAd) -> None:
        """The Section 5 diagnosis, captured at match time: which side's
        Constraint failed, and on which top-level conjunct."""
        attribution = attribute_failure(request, provider, policy)
        fields: Dict[str, object] = {"reason": "constraint"}
        if attribution is not None:
            fields.update(
                side=attribution.side,
                constraint=attribution.constraint,
                conjunct=attribution.conjunct,
                value=attribution.value,
            )
            if attribution.undefined_attrs:
                fields["undefined"] = list(attribution.undefined_attrs)
        emit_reject(submitter, request, provider, **fields)

    def emit_match(submitter: str, request: ClassAd, provider: ClassAd,
                   customer_rank: float, provider_rank: float,
                   preempts: Optional[str]) -> None:
        _events.emit(
            "match.made",
            cycle=cycle_id,
            submitter=submitter,
            provider=_name_of(provider),
            customer_rank=customer_rank,
            provider_rank=provider_rank,
            preempts=preempts,
            **_identity_of(request),
        )
        if preempts is not None:
            _events.emit(
                "preemption",
                cycle=cycle_id,
                submitter=submitter,
                provider=_name_of(provider),
                evicted=preempts,
                **_identity_of(request),
            )

    def _commit(submitter: str, request: ClassAd, provider: ClassAd,
                customer_rank: float, provider_rank: float,
                preempts: Optional[str]) -> None:
        taken.add(id(provider))
        assignments.append(
            Assignment(
                submitter=submitter,
                request=request,
                provider=provider,
                customer_rank=customer_rank,
                provider_rank=provider_rank,
                preempts=preempts,
            )
        )
        stats.matched += 1
        if preempts is not None:
            stats.preemptions += 1
        if emit_events:
            emit_match(submitter, request, provider, customer_rank, provider_rank, preempts)

    # -- naive reference path ---------------------------------------------

    def _naive_try_match(submitter: str, request: ClassAd) -> bool:
        stats.requests_considered += 1
        if index is not None:
            pool = index.candidates_for(request, policy)
            stats.constraint_evaluations_saved += len(providers) - len(pool)
        else:
            pool = providers
        chosen: Optional[Tuple[Match, Optional[str]]] = None
        for pid, provider in enumerate(pool):
            if id(provider) in taken:
                if emit_events:
                    emit_reject(submitter, request, provider, reason="taken")
                continue
            availability, owner, current = _provider_state(provider)
            if availability == "unavailable":
                if emit_events:
                    emit_reject(submitter, request, provider, reason="unavailable")
                continue
            preempts: Optional[str] = None
            if availability == "preemptable":
                if not allow_preemption:
                    if emit_events:
                        emit_reject(
                            submitter, request, provider, reason="preemption-disabled"
                        )
                    continue
                preempts = owner
            if not constraints_satisfied(request, provider, policy):
                if emit_events:
                    emit_constraint_reject(submitter, request, provider)
                continue
            provider_rank = evaluate_rank(provider, request, policy)
            if preempts is not None and provider_rank <= current:
                if emit_events:
                    emit_reject(
                        submitter,
                        request,
                        provider,
                        reason="rank-not-above-current",
                        provider_rank=provider_rank,
                        current_rank=current,
                    )
                continue  # not strictly preferred: no preemption
            candidate = Match(
                customer=request,
                provider=provider,
                customer_rank=evaluate_rank(request, provider, policy),
                provider_rank=provider_rank,
                index=pid,
            )
            if chosen is None or candidate.sort_key > chosen[0].sort_key:
                chosen = (candidate, preempts)
        if chosen is None:
            if emit_events:
                _events.emit(
                    "job.unmatched",
                    cycle=cycle_id,
                    submitter=submitter,
                    candidates=len(pool),
                    **_identity_of(request),
                )
            return False
        match, preempts = chosen
        _commit(
            submitter, request, match.provider,
            match.customer_rank, match.provider_rank, preempts,
        )
        return True

    # -- batched path ------------------------------------------------------

    observed_attrs: Optional[Set[str]] = None
    classes: Dict[Tuple, _ClassState] = {}
    signatures: Dict[int, Tuple] = {}  # id(request) -> signature, this cycle

    def _build_class(rep: ClassAd) -> _ClassState:
        """Evaluate every (class, provider) pairing once, exactly in the
        naive path's check order, and record the outcome.

        With a scoring pool attached, the per-pair evaluations fan out
        to worker processes and come back as outcome tuples in candidate
        order; the serial loop below is both the fallback (small
        classes, kill-switch, worker failure) and the semantic
        reference — outcome tuples are interchangeable between the two.
        """
        if index is not None:
            pool = index.candidates_for(rep, policy)
        else:
            pool = providers
        cands: List[Tuple] = []
        dispositions: Optional[List[Optional[Tuple]]] = (
            [None] * len(pool) if emit_events else None
        )
        if scoring is not None:
            outcomes = scoring.score_class(rep, pool, policy, allow_preemption)
            if outcomes is not None:
                for pid, outcome in enumerate(outcomes):
                    if outcome[0] == "ok":
                        _, customer_rank, provider_rank, preempts = outcome
                        cands.append(
                            (customer_rank, provider_rank, -pid, pool[pid], preempts)
                        )
                    elif emit_events:
                        dispositions[pid] = outcome
                cands.sort(reverse=True)
                return _ClassState(pool, cands, dispositions)
        for pid, provider in enumerate(pool):
            availability, owner, current = _provider_state(provider)
            if availability == "unavailable":
                if emit_events:
                    dispositions[pid] = ("unavailable",)
                continue
            preempts: Optional[str] = None
            if availability == "preemptable":
                if not allow_preemption:
                    if emit_events:
                        dispositions[pid] = ("preemption-disabled",)
                    continue
                preempts = owner
            if not constraints_satisfied(rep, provider, policy):
                if emit_events:
                    dispositions[pid] = ("constraint",)
                continue
            provider_rank = evaluate_rank(provider, rep, policy)
            if preempts is not None and provider_rank <= current:
                if emit_events:
                    dispositions[pid] = ("rank", provider_rank, current)
                continue
            cands.append(
                (evaluate_rank(rep, provider, policy), provider_rank, -pid, provider, preempts)
            )
        cands.sort(reverse=True)
        return _ClassState(pool, cands, dispositions)

    def _replay(submitter: str, request: ClassAd, state: _ClassState) -> None:
        """Reproduce the naive event stream for one member from the class
        dispositions plus the current ``taken`` set (checked first, as
        the naive scan does)."""
        dispositions = state.dispositions
        for pid, provider in enumerate(state.pool):
            if id(provider) in taken:
                emit_reject(submitter, request, provider, reason="taken")
                continue
            d = dispositions[pid]
            if d is None:
                continue
            reason = d[0]
            if reason == "constraint":
                emit_constraint_reject(submitter, request, provider)
            elif reason == "rank":
                emit_reject(
                    submitter,
                    request,
                    provider,
                    reason="rank-not-above-current",
                    provider_rank=d[1],
                    current_rank=d[2],
                )
            else:
                emit_reject(submitter, request, provider, reason=reason)

    def _batched_try_match(submitter: str, request: ClassAd) -> bool:
        nonlocal observed_attrs
        stats.requests_considered += 1
        if observed_attrs is None:
            observed_attrs = _pool_observed_attrs(providers, policy)
        key = id(request)
        sig = signatures.get(key)
        if sig is None:
            sig = signatures[key] = _request_signature(request, policy, observed_attrs)
        state = classes.get(sig)
        if state is None:
            state = classes[sig] = _build_class(request)
            stats.request_classes += 1
        else:
            stats.pairings_saved += len(state.pool)
        state.members += 1
        if index is not None:
            stats.constraint_evaluations_saved += len(providers) - len(state.pool)
        cands = state.cands
        head = state.head
        while head < len(cands) and id(cands[head][3]) in taken:
            head += 1
        state.head = head
        winner = cands[head] if head < len(cands) else None
        if emit_events:
            _replay(submitter, request, state)
        if winner is None:
            if emit_events:
                _events.emit(
                    "job.unmatched",
                    cycle=cycle_id,
                    submitter=submitter,
                    candidates=len(state.pool),
                    **_identity_of(request),
                )
            return False
        customer_rank, provider_rank, _negpid, provider, preempts = winner
        _commit(submitter, request, provider, customer_rank, provider_rank, preempts)
        return True

    _try_match = _batched_try_match if use_batch else _naive_try_match

    def try_match(submitter: str, request: ClassAd) -> bool:
        with _tracer.span("try_match", submitter=submitter) as span:
            matched = _try_match(submitter, request)
            span.annotate(matched=matched)
            return matched

    # Pie slices: cap the first round at each submitter's fair share of
    # the currently matchable capacity.  Rounding each share up to at
    # least one match can over-commit the pie with many low-share
    # submitters, so the quotas are additionally capped to never exceed
    # the matchable capacity in total: later (lower-priority) submitters
    # absorb the shortfall and are served from the spin-pie round.
    quotas: Dict[str, int] = {}
    if accountant is not None and len(submitters) > 1:
        matchable = sum(1 for p in providers if _provider_state(p)[0] != "unavailable")
        shares = accountant.fair_shares(submitters)
        capacity = matchable
        for s in submitters:
            quota = min(max(1, int(round(shares[s] * matchable))), capacity)
            quotas[s] = quota
            capacity -= quota
        if emit_events:
            for position, s in enumerate(submitters):
                _events.emit(
                    "fairshare.quota",
                    cycle=cycle_id,
                    submitter=s,
                    position=position,
                    quota=quotas[s],
                    share=shares[s],
                )

    with _tracer.span(
        "negotiation_cycle",
        submitters=len(submitters),
        providers=len(providers),
        indexed=index is not None,
    ) as cycle_span:
        leftovers: List[Tuple[str, List[ClassAd]]] = []
        for submitter in submitters:
            stats.submitters_considered += 1
            quota = quotas.get(submitter)
            served = 0
            remaining: List[ClassAd] = []
            with _tracer.span("submitter", submitter=submitter) as submitter_span:
                for position, request in enumerate(requests_by_submitter[submitter]):
                    if quota is not None and served >= quota:
                        remaining = list(requests_by_submitter[submitter][position:])
                        break
                    if try_match(submitter, request):
                        served += 1
                submitter_span.annotate(served=served)
            if remaining:
                leftovers.append((submitter, remaining))

        # Spin the pie: hand unused capacity to still-hungry submitters in
        # priority order, unrestricted.
        with _tracer.span("spin_pie", submitters=len(leftovers)):
            for submitter, requests in leftovers:
                for request in requests:
                    try_match(submitter, request)
        cycle_span.annotate(matched=stats.matched, preemptions=stats.preemptions)

    if scoring is not None:
        stats.parallel_chunks += scoring.chunks
        stats.parallel_pairs_scored += scoring.pairs
        stats.parallel_fallbacks += scoring.fallbacks
    if _metrics.enabled:
        requests_seen = stats.requests_considered - base_requests
        matched = stats.matched - base_matched
        _MM_CYCLES.inc()
        _MM_REQUESTS.inc(requests_seen)
        _MM_MATCHED.inc(matched)
        _MM_REJECTED.inc(requests_seen - matched)
        _MM_PREEMPTIONS.inc(stats.preemptions - base_preemptions)
        _MM_PRUNED.inc(stats.constraint_evaluations_saved - base_pruned)
        _MM_CLASSES.inc(stats.request_classes - base_classes)
        _MM_CYCLE_SECONDS.observe(time.perf_counter() - start)
    if emit_events:
        requests_seen = stats.requests_considered - base_requests
        matched = stats.matched - base_matched
        _events.emit(
            "cycle.end",
            cycle=cycle_id,
            requests=requests_seen,
            matched=matched,
            rejected=requests_seen - matched,
            preemptions=stats.preemptions - base_preemptions,
            # Full AST walks avoided this cycle: evaluations served from
            # the compiled-expression cache (0 when REPRO_NO_COMPILE=1).
            evals_saved=_compiled_cache_hits() - base_cache_hits,
            # Request-batching yield: classes built and (request, provider)
            # pairings served from a shared class instead of re-evaluated
            # (both 0 on the naive path).
            request_classes=stats.request_classes - base_classes,
            pairings_saved=stats.pairings_saved - base_pairings,
            # Parallel-scoring yield: configured worker count and chunks
            # dispatched this cycle (both 0 when scoring stayed serial).
            # Like duration_s these describe *how* the cycle computed,
            # not what it decided — differential suites normalize them.
            workers=scoring.workers if scoring is not None else 0,
            chunks=scoring.chunks if scoring is not None else 0,
            duration_s=time.perf_counter() - start,
        )
    return assignments


class Matchmaker:
    """An ad collection plus the matching algorithms — the paper's service.

    The matchmaker holds only *advertisements* (soft state): entities
    re-advertise periodically and ads expire, so a restarted matchmaker
    reconverges without recovery protocol (experiments E1/E2 exercise
    this through the simulated collector, which wraps this class).

    No match state is retained: ``match`` and ``negotiate`` compute from
    the current ads and return; claiming is end-to-end between the
    matched parties.

    Since PR 4 the provider index used by ``negotiate(use_index=True)``
    is *persistent*: a :class:`MaintainedIndex` hangs off the matchmaker
    and is delta-updated by ``advertise``/``withdraw`` instead of being
    rebuilt from the ad collection every cycle.  Note one contract this
    sharpens: an ad must be **re-advertised after mutation** for the
    index to observe the change (which the advertising protocol does
    anyway — soft state is refreshed, not edited in place).
    """

    def __init__(self, policy: MatchPolicy = DEFAULT_POLICY):
        self.policy = policy
        self._ads: Dict[str, ClassAd] = {}
        self._mindex: Optional[MaintainedIndex] = None

    # -- advertising side -------------------------------------------------

    def advertise(self, name: str, ad: ClassAd) -> None:
        """Insert or refresh the ad advertised under *name*."""
        mindex = self._mindex
        if mindex is not None:
            if not mindex.advertise(name, ad, had_prior=name in self._ads):
                # Candidate order can no longer be preserved by deltas;
                # drop the index and rebuild lazily on the next negotiate.
                self._mindex = None
        self._ads[name] = ad

    def withdraw(self, name: str) -> None:
        """Remove an ad; absent names are ignored (idempotent)."""
        if self._mindex is not None:
            self._mindex.withdraw(name)
        self._ads.pop(name, None)

    def clear(self) -> None:
        """Forget everything — simulates a matchmaker crash/restart."""
        self._ads.clear()
        if self._mindex is not None:
            self._mindex.clear()

    def ads(self, constraint: Optional[str] = None) -> List[ClassAd]:
        """All ads, optionally filtered by a one-way constraint."""
        if constraint is None:
            return list(self._ads.values())
        return select(self._ads.values(), constraint)

    def __len__(self) -> int:
        return len(self._ads)

    def __contains__(self, name: str) -> bool:
        return name in self._ads

    # -- matching side ------------------------------------------------------

    def match(self, customer: ClassAd, constraint: Optional[str] = None) -> Optional[Match]:
        """Best provider for a single customer ad among stored ads."""
        providers = self.ads(constraint)
        return best_match(customer, providers, self.policy)

    def matches(self, customer: ClassAd, constraint: Optional[str] = None) -> List[Match]:
        """All compatible providers for *customer*, best first."""
        return rank_candidates(customer, self.ads(constraint), self.policy)

    def query(self, constraint: str) -> List[ClassAd]:
        """One-way matching over the stored ads (status tools)."""
        return select(self.ads(), constraint)

    def provider_index(self, constraint: str = 'Type == "Machine"') -> MaintainedIndex:
        """The persistent provider index for *constraint*, built lazily
        and kept current by ``advertise``/``withdraw`` thereafter."""
        mindex = self._mindex
        if mindex is None or mindex.constraint_source != constraint:
            mindex = self._mindex = MaintainedIndex(
                constraint, items=self._ads.items()
            )
        return mindex

    def negotiate(
        self,
        requests_by_submitter: Mapping[str, Sequence[ClassAd]],
        provider_constraint: str = 'Type == "Machine"',
        accountant: Optional[Accountant] = None,
        allow_preemption: bool = True,
        use_index: bool = False,
        stats: Optional[CycleStats] = None,
        parallel: Optional[bool] = None,
    ) -> List[Assignment]:
        """One negotiation cycle over the stored provider ads.

        ``parallel`` overrides the parallel-scoring switch for this
        cycle; the worker pool itself is persistent (spawned on first
        parallel cycle, reused by every later one — see
        :meth:`scoring_pool`).
        """
        if use_index:
            mindex = self.provider_index(provider_constraint)
            providers: Sequence[ClassAd] = mindex.providers()
            index: Optional[ProviderIndex] = mindex.index
        else:
            providers = self.ads(provider_constraint)
            index = None
        return negotiation_cycle(
            requests_by_submitter,
            providers,
            accountant=accountant,
            policy=self.policy,
            allow_preemption=allow_preemption,
            index=index,
            stats=stats,
            parallel=parallel,
        )

    def scoring_pool(self):
        """The persistent scoring worker pool this matchmaker's cycles
        use, or None when ``REPRO_SCORING_WORKERS`` leaves scoring
        serial.  The pool is shared process-wide (workers hold no
        per-matchmaker state between commands) and is shut down and
        respawned when the worker count changes."""
        return _parallel.scoring_pool()
