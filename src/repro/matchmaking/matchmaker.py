"""The matchmaker service — S6 in DESIGN.md.

"A designated matchmaking service (matchmaker) matches classads in a
manner that satisfies the constraints specified in the respective
advertisements and informs the relevant entities of the match.  The
responsibility of the matchmaker then ceases with respect to the match."
(Section 3.)

Two layers live here:

* :class:`Matchmaker` — the stateless match engine: given the current ad
  collection it identifies matches; it retains *no state about matches*
  (the paper's end-to-end argument), only the ads most recently
  advertised to it, which are soft state refreshed by the advertising
  protocol and fully reconstructible after a crash (experiment E1).
* :func:`negotiation_cycle` — the pure algorithm of Section 4's
  "negotiation cycle": serve submitters in fair-share order, pick the
  best-ranked compatible resource for each request, honouring
  Rank-driven preemption.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..classads import ClassAd, is_true
from ..classads.ast import Literal
from ..classads.compile import cache_hits_total as _compiled_cache_hits
from ..obs import event_log as _events, metrics as _metrics, tracer as _tracer
from .accounting import Accountant
from .diagnose import attribute_failure
from .index import ProviderIndex
from .match import (
    DEFAULT_POLICY,
    Match,
    MatchPolicy,
    best_match,
    constraints_satisfied,
    evaluate_rank,
    rank_candidates,
)
from .query import one_way_match, select

# Observability: the hot loop accumulates into the (pre-existing, local)
# CycleStats and the global counters are bumped once per cycle, so an
# enabled registry adds a handful of dict updates per cycle — not per
# (request, provider) pair.
_MM_CYCLES = _metrics.counter("matchmaker.cycles", "negotiation cycles run")
_MM_REQUESTS = _metrics.counter("matchmaker.requests", "requests considered")
_MM_MATCHED = _metrics.counter("matchmaker.matched", "requests matched")
_MM_REJECTED = _metrics.counter(
    "matchmaker.rejected", "requests with no compatible provider this cycle"
)
_MM_PREEMPTIONS = _metrics.counter(
    "matchmaker.preemptions", "matches that preempt a running customer"
)
_MM_PRUNED = _metrics.counter(
    "matchmaker.index_pruned", "constraint evaluations saved by index pre-filtering"
)
_MM_CYCLE_SECONDS = _metrics.histogram(
    "matchmaker.cycle_seconds", "wall-clock duration of one negotiation cycle"
)

#: Process-wide negotiation-cycle numbering for the forensic event log —
#: every ``cycle.*``/``match.*`` event carries one of these so post-mortem
#: queries can group a run's events by cycle.
_CYCLE_IDS = itertools.count(1)


def _identity_field(ad: ClassAd, name: str):
    """Fast identity read for event fields: ads bind ``Name``/``JobId``
    to plain literals, which can be read off the AST without paying the
    evaluator — the per-rejection emit path must stay cheap enough to
    hold the <=5% events-enabled overhead bar."""
    expr = ad.lookup(name)
    if expr is None:
        return None
    if isinstance(expr, Literal):
        value = expr.value
    else:
        value = ad.evaluate(name)
    return value if isinstance(value, (int, float, str)) and not isinstance(value, bool) else None


def _job_identity(request: ClassAd) -> Dict[str, object]:
    """The fields that name a request in forensic events."""
    return {"job": _identity_field(request, "JobId")}


def _provider_name(provider: ClassAd):
    return _identity_field(provider, "Name")


@dataclass(frozen=True)
class Assignment:
    """One negotiated match: a request ad paired with a provider ad.

    ``preempts`` names the submitter currently occupying the provider
    when the match is preemptive, else None.
    """

    submitter: str
    request: ClassAd
    provider: ClassAd
    customer_rank: float
    provider_rank: float
    preempts: Optional[str] = None


@dataclass
class CycleStats:
    """Bookkeeping for one negotiation cycle (feeds E6's benchmarks)."""

    submitters_considered: int = 0
    requests_considered: int = 0
    matched: int = 0
    preemptions: int = 0
    constraint_evaluations_saved: int = 0  # by index pre-filtering


def _availability(provider: ClassAd) -> str:
    """Classify a provider: "available", "preemptable", or "unavailable".

    Providers that do not advertise State are assumed available — the
    matchmaker works with whatever schema the ads actually use
    (semi-structured model: no schema is *required*).  Only Claimed
    providers are preemption candidates; an Owner-state machine is its
    owner's and is skipped outright.
    """
    state = provider.evaluate("State")
    if not isinstance(state, str):
        return "available"
    lowered = state.lower()
    if lowered in ("unclaimed", "available", "idle"):
        return "available"
    if lowered == "claimed":
        return "preemptable"
    return "unavailable"


def _current_rank(provider: ClassAd) -> float:
    """The provider's advertised rank of its current occupant.

    Condor startds advertise ``CurrentRank`` while claimed so the
    negotiator can decide preemption without the occupant's ad.
    """
    from ..classads import rank_value

    return rank_value(provider.evaluate("CurrentRank"))


def _current_owner(provider: ClassAd) -> Optional[str]:
    owner = provider.evaluate("RemoteOwner")
    return owner if isinstance(owner, str) else None


def negotiation_cycle(
    requests_by_submitter: Mapping[str, Sequence[ClassAd]],
    providers: Sequence[ClassAd],
    accountant: Optional[Accountant] = None,
    policy: MatchPolicy = DEFAULT_POLICY,
    allow_preemption: bool = True,
    index: Optional[ProviderIndex] = None,
    stats: Optional[CycleStats] = None,
) -> List[Assignment]:
    """Run one negotiation cycle and return the assignments.

    Fair matching (Section 4) happens in two mechanisms, both driven by
    the accountant: submitters are served in ascending effective-priority
    order, *and* each submitter's matches in the first serving round are
    capped at its fair-share "pie slice" of the available resources
    (shares ∝ 1/effective-priority).  Remaining capacity is then handed
    out unrestricted in priority order so no machine idles while work is
    queued.  Ordering alone cannot yield factor-weighted shares — two
    lock-step users would simply alternate whole cycles — which is why
    deployed Condor spins the pie; we reproduce that.

    For each request, the best compatible provider is chosen by
    (customer Rank, provider Rank) per Section 3.1.  A claimed provider
    may be matched only when preemption is allowed and the provider
    ranks the new customer *strictly above* its advertised
    ``CurrentRank`` — Section 4's "it is still interested in hearing
    from higher priority customers".

    The cycle only *identifies* matches; claiming is the parties' own
    business (separation of matching and claiming).
    """
    start = time.perf_counter()
    stats = stats if stats is not None else CycleStats()
    # Callers may pass an accumulating CycleStats; count only this
    # cycle's delta into the global registry.
    base_requests = stats.requests_considered
    base_matched = stats.matched
    base_preemptions = stats.preemptions
    base_pruned = stats.constraint_evaluations_saved
    submitters = list(requests_by_submitter.keys())
    if accountant is not None:
        submitters = accountant.negotiation_order(submitters)
    else:
        submitters.sort()

    # Forensics: hoist the event-log switch into a local once per cycle, so
    # the per-pair hot loop pays one local-variable truth test while the
    # log is off — and records clause-level rejection attribution while on.
    emit_events = _events.enabled
    cycle_id = next(_CYCLE_IDS) if emit_events else None
    base_cache_hits = _compiled_cache_hits() if emit_events else 0
    if emit_events:
        _events.emit(
            "cycle.begin",
            cycle=cycle_id,
            submitters=len(submitters),
            providers=len(providers),
            indexed=index is not None,
        )

    taken: set = set()  # ids of providers already matched this cycle
    assignments: List[Assignment] = []

    def emit_reject(submitter: str, request: ClassAd, provider: ClassAd, **fields) -> None:
        _events.emit(
            "match.reject",
            cycle=cycle_id,
            submitter=submitter,
            provider=_provider_name(provider),
            **_job_identity(request),
            **fields,
        )

    def emit_constraint_reject(submitter: str, request: ClassAd, provider: ClassAd) -> None:
        """The Section 5 diagnosis, captured at match time: which side's
        Constraint failed, and on which top-level conjunct."""
        attribution = attribute_failure(request, provider, policy)
        fields: Dict[str, object] = {"reason": "constraint"}
        if attribution is not None:
            fields.update(
                side=attribution.side,
                constraint=attribution.constraint,
                conjunct=attribution.conjunct,
                value=attribution.value,
            )
            if attribution.undefined_attrs:
                fields["undefined"] = list(attribution.undefined_attrs)
        emit_reject(submitter, request, provider, **fields)

    def try_match(submitter: str, request: ClassAd) -> bool:
        with _tracer.span("try_match", submitter=submitter) as span:
            matched = _try_match(submitter, request)
            span.annotate(matched=matched)
            return matched

    def _try_match(submitter: str, request: ClassAd) -> bool:
        stats.requests_considered += 1
        if index is not None:
            pool = index.candidates_for(request, policy)
            stats.constraint_evaluations_saved += len(providers) - len(pool)
        else:
            pool = providers
        chosen: Optional[Tuple[Match, Optional[str]]] = None
        for pid, provider in enumerate(pool):
            if id(provider) in taken:
                if emit_events:
                    emit_reject(submitter, request, provider, reason="taken")
                continue
            preempts: Optional[str] = None
            availability = _availability(provider)
            if availability == "unavailable":
                if emit_events:
                    emit_reject(submitter, request, provider, reason="unavailable")
                continue
            if availability == "preemptable":
                if not allow_preemption:
                    if emit_events:
                        emit_reject(
                            submitter, request, provider, reason="preemption-disabled"
                        )
                    continue
                preempts = _current_owner(provider) or "<unknown>"
            if not constraints_satisfied(request, provider, policy):
                if emit_events:
                    emit_constraint_reject(submitter, request, provider)
                continue
            provider_rank = evaluate_rank(provider, request, policy)
            if preempts is not None and provider_rank <= _current_rank(provider):
                if emit_events:
                    emit_reject(
                        submitter,
                        request,
                        provider,
                        reason="rank-not-above-current",
                        provider_rank=provider_rank,
                        current_rank=_current_rank(provider),
                    )
                continue  # not strictly preferred: no preemption
            candidate = Match(
                customer=request,
                provider=provider,
                customer_rank=evaluate_rank(request, provider, policy),
                provider_rank=provider_rank,
                index=pid,
            )
            if chosen is None or candidate.sort_key > chosen[0].sort_key:
                chosen = (candidate, preempts)
        if chosen is None:
            if emit_events:
                _events.emit(
                    "job.unmatched",
                    cycle=cycle_id,
                    submitter=submitter,
                    candidates=len(pool),
                    **_job_identity(request),
                )
            return False
        match, preempts = chosen
        taken.add(id(match.provider))
        assignments.append(
            Assignment(
                submitter=submitter,
                request=request,
                provider=match.provider,
                customer_rank=match.customer_rank,
                provider_rank=match.provider_rank,
                preempts=preempts,
            )
        )
        stats.matched += 1
        if preempts is not None:
            stats.preemptions += 1
        if emit_events:
            _events.emit(
                "match.made",
                cycle=cycle_id,
                submitter=submitter,
                provider=_provider_name(match.provider),
                customer_rank=match.customer_rank,
                provider_rank=match.provider_rank,
                preempts=preempts,
                **_job_identity(request),
            )
            if preempts is not None:
                _events.emit(
                    "preemption",
                    cycle=cycle_id,
                    submitter=submitter,
                    provider=_provider_name(match.provider),
                    evicted=preempts,
                    **_job_identity(request),
                )
        return True

    # Pie slices: cap the first round at each submitter's fair share of
    # the currently matchable capacity.
    quotas: Dict[str, int] = {}
    if accountant is not None and len(submitters) > 1:
        matchable = sum(1 for p in providers if _availability(p) != "unavailable")
        shares = accountant.fair_shares(submitters)
        quotas = {
            s: max(1, int(round(shares[s] * matchable))) for s in submitters
        }
        if emit_events:
            for position, s in enumerate(submitters):
                _events.emit(
                    "fairshare.quota",
                    cycle=cycle_id,
                    submitter=s,
                    position=position,
                    quota=quotas[s],
                    share=shares[s],
                )

    with _tracer.span(
        "negotiation_cycle",
        submitters=len(submitters),
        providers=len(providers),
        indexed=index is not None,
    ) as cycle_span:
        leftovers: List[Tuple[str, List[ClassAd]]] = []
        for submitter in submitters:
            stats.submitters_considered += 1
            quota = quotas.get(submitter)
            served = 0
            remaining: List[ClassAd] = []
            with _tracer.span("submitter", submitter=submitter) as submitter_span:
                for position, request in enumerate(requests_by_submitter[submitter]):
                    if quota is not None and served >= quota:
                        remaining = list(requests_by_submitter[submitter][position:])
                        break
                    if try_match(submitter, request):
                        served += 1
                submitter_span.annotate(served=served)
            if remaining:
                leftovers.append((submitter, remaining))

        # Spin the pie: hand unused capacity to still-hungry submitters in
        # priority order, unrestricted.
        with _tracer.span("spin_pie", submitters=len(leftovers)):
            for submitter, requests in leftovers:
                for request in requests:
                    try_match(submitter, request)
        cycle_span.annotate(matched=stats.matched, preemptions=stats.preemptions)

    if _metrics.enabled:
        requests_seen = stats.requests_considered - base_requests
        matched = stats.matched - base_matched
        _MM_CYCLES.inc()
        _MM_REQUESTS.inc(requests_seen)
        _MM_MATCHED.inc(matched)
        _MM_REJECTED.inc(requests_seen - matched)
        _MM_PREEMPTIONS.inc(stats.preemptions - base_preemptions)
        _MM_PRUNED.inc(stats.constraint_evaluations_saved - base_pruned)
        _MM_CYCLE_SECONDS.observe(time.perf_counter() - start)
    if emit_events:
        requests_seen = stats.requests_considered - base_requests
        matched = stats.matched - base_matched
        _events.emit(
            "cycle.end",
            cycle=cycle_id,
            requests=requests_seen,
            matched=matched,
            rejected=requests_seen - matched,
            preemptions=stats.preemptions - base_preemptions,
            # Full AST walks avoided this cycle: evaluations served from
            # the compiled-expression cache (0 when REPRO_NO_COMPILE=1).
            evals_saved=_compiled_cache_hits() - base_cache_hits,
            duration_s=time.perf_counter() - start,
        )
    return assignments


class Matchmaker:
    """An ad collection plus the matching algorithms — the paper's service.

    The matchmaker holds only *advertisements* (soft state): entities
    re-advertise periodically and ads expire, so a restarted matchmaker
    reconverges without recovery protocol (experiments E1/E2 exercise
    this through the simulated collector, which wraps this class).

    No match state is retained: ``match`` and ``negotiate`` compute from
    the current ads and return; claiming is end-to-end between the
    matched parties.
    """

    def __init__(self, policy: MatchPolicy = DEFAULT_POLICY):
        self.policy = policy
        self._ads: Dict[str, ClassAd] = {}

    # -- advertising side -------------------------------------------------

    def advertise(self, name: str, ad: ClassAd) -> None:
        """Insert or refresh the ad advertised under *name*."""
        self._ads[name] = ad

    def withdraw(self, name: str) -> None:
        """Remove an ad; absent names are ignored (idempotent)."""
        self._ads.pop(name, None)

    def clear(self) -> None:
        """Forget everything — simulates a matchmaker crash/restart."""
        self._ads.clear()

    def ads(self, constraint: Optional[str] = None) -> List[ClassAd]:
        """All ads, optionally filtered by a one-way constraint."""
        ads = list(self._ads.values())
        if constraint is None:
            return ads
        return select(ads, constraint)

    def __len__(self) -> int:
        return len(self._ads)

    def __contains__(self, name: str) -> bool:
        return name in self._ads

    # -- matching side ------------------------------------------------------

    def match(self, customer: ClassAd, constraint: Optional[str] = None) -> Optional[Match]:
        """Best provider for a single customer ad among stored ads."""
        providers = self.ads(constraint)
        return best_match(customer, providers, self.policy)

    def matches(self, customer: ClassAd, constraint: Optional[str] = None) -> List[Match]:
        """All compatible providers for *customer*, best first."""
        return rank_candidates(customer, self.ads(constraint), self.policy)

    def query(self, constraint: str) -> List[ClassAd]:
        """One-way matching over the stored ads (status tools)."""
        return select(self.ads(), constraint)

    def negotiate(
        self,
        requests_by_submitter: Mapping[str, Sequence[ClassAd]],
        provider_constraint: str = 'Type == "Machine"',
        accountant: Optional[Accountant] = None,
        allow_preemption: bool = True,
        use_index: bool = False,
        stats: Optional[CycleStats] = None,
    ) -> List[Assignment]:
        """One negotiation cycle over the stored provider ads."""
        providers = self.ads(provider_constraint)
        index = ProviderIndex(providers) if use_index else None
        return negotiation_cycle(
            requests_by_submitter,
            providers,
            accountant=accountant,
            policy=self.policy,
            allow_preemption=allow_preemption,
            index=index,
            stats=stats,
        )
