"""Constraint diagnostics — S22 in DESIGN.md.

Section 5: "The complexity of constraints imposed by resources and
customers may hinder the diagnostic capability of administrators and
customers who may wonder why certain requests are unable to find
resources with particular characteristics.  To alleviate this problem,
we are researching methods for identifying constraints which can never
be satisfied by the pool.  In addition to diagnostic utilities, this
tool may help discovering hidden characteristics of a pool."

This module is that tool (the ancestor of HTCondor's
``condor_q -better-analyze``):

* decompose the request's Constraint into top-level conjuncts and count,
  for every conjunct, how many pool ads satisfy it;
* identify *unsatisfiable* conjuncts (zero ads) — the "never satisfied
  by the pool" detector;
* for equality predicates on a pool attribute, report the values the
  pool actually advertises (the "hidden characteristics" discovery);
* analyze the reverse direction too: of the ads satisfying the request,
  how many refuse the *requester* (provider-side policy rejections).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..classads import ClassAd, Expr, is_true, unparse
from ..classads.evaluator import evaluate
from ..classads.values import is_number, is_string
from .index import Predicate, conjuncts, extract_predicates
from .match import DEFAULT_POLICY, MatchPolicy, constraint_holds


@dataclass
class ClauseReport:
    """Per-conjunct satisfaction statistics against the pool."""

    expression: str
    satisfied: int
    total: int
    suggestion: Optional[str] = None

    @property
    def unsatisfiable(self) -> bool:
        return self.satisfied == 0

    def __str__(self) -> str:
        line = f"[{self.satisfied:5d} / {self.total}] {self.expression}"
        if self.suggestion:
            line += f"\n        hint: {self.suggestion}"
        return line


@dataclass
class Diagnosis:
    """The full analysis of one request against one pool."""

    request_summary: str
    pool_size: int
    clauses: List[ClauseReport]
    full_constraint_matches: int
    bilateral_matches: int
    rejected_by_provider_policy: int

    @property
    def unsatisfiable_clauses(self) -> List[ClauseReport]:
        return [c for c in self.clauses if c.unsatisfiable]

    @property
    def never_matches(self) -> bool:
        return self.bilateral_matches == 0

    def render(self) -> str:
        lines = [
            f"Analysis of {self.request_summary} against {self.pool_size} ads:",
            "",
            "Constraint clauses (ads satisfying each / pool size):",
        ]
        lines += [f"  {clause}" for clause in self.clauses]
        lines += [
            "",
            f"ads satisfying the full Constraint : {self.full_constraint_matches}",
            f"of those, rejecting this requester : {self.rejected_by_provider_policy}",
            f"bilateral matches                  : {self.bilateral_matches}",
        ]
        if self.unsatisfiable_clauses:
            lines.append("")
            lines.append("UNSATISFIABLE clauses (no ad in the pool satisfies them):")
            lines += [f"  {c.expression}" for c in self.unsatisfiable_clauses]
        return "\n".join(lines)


def _clause_satisfied(clause: Expr, request: ClassAd, target: ClassAd) -> bool:
    return is_true(evaluate(clause, request, other=target))


def _value_census(
    predicate: Predicate, pool: Sequence[ClassAd], limit: int = 6
) -> Optional[str]:
    """What values does the pool actually advertise for this attribute?"""
    census: Counter = Counter()
    missing = 0
    for ad in pool:
        value = ad.evaluate(predicate.attr)
        if is_string(value):
            census[value] += 1
        elif is_number(value):
            census[value] += 1
        else:
            missing += 1
    if not census and not missing:
        return None
    parts = [
        f"{value!r}×{count}" for value, count in census.most_common(limit)
    ]
    if missing:
        parts.append(f"<undefined>×{missing}")
    return f"pool advertises {predicate.attr} ∈ {{ {', '.join(parts)} }}"


def diagnose(
    request: ClassAd,
    pool: Sequence[ClassAd],
    policy: MatchPolicy = DEFAULT_POLICY,
) -> Diagnosis:
    """Why does (or doesn't) *request* match the *pool*?"""
    pool = list(pool)
    constraint_name = policy.constraint_of(request)
    clauses: List[ClauseReport] = []
    full_matches = 0
    bilateral = 0
    rejected_by_policy = 0

    clause_exprs = (
        conjuncts(request[constraint_name]) if constraint_name is not None else []
    )
    predicates = (
        extract_predicates(request[constraint_name], request)
        if constraint_name is not None
        else []
    )
    predicate_by_clause: Dict[int, Predicate] = {}
    # extract_predicates walks the same conjunct list in order; rebuild the
    # association clause-by-clause for suggestion lookup.
    for clause in clause_exprs:
        for predicate in extract_predicates(clause, request):
            predicate_by_clause[id(clause)] = predicate
            break

    for clause in clause_exprs:
        satisfied = sum(1 for ad in pool if _clause_satisfied(clause, request, ad))
        suggestion = None
        if satisfied == 0:
            predicate = predicate_by_clause.get(id(clause))
            if predicate is not None:
                suggestion = _value_census(predicate, pool)
        clauses.append(
            ClauseReport(
                expression=unparse(clause),
                satisfied=satisfied,
                total=len(pool),
                suggestion=suggestion,
            )
        )

    for ad in pool:
        if constraint_name is None or is_true(
            request.evaluate(constraint_name, other=ad)
        ):
            full_matches += 1
            if constraint_holds(ad, request, policy):
                bilateral += 1
            else:
                rejected_by_policy += 1

    owner = request.evaluate("Owner")
    job_id = request.evaluate("JobId")
    summary = "request"
    if isinstance(owner, str):
        summary = f"job {job_id} of {owner}" if isinstance(job_id, int) else f"request of {owner}"
    return Diagnosis(
        request_summary=summary,
        pool_size=len(pool),
        clauses=clauses,
        full_constraint_matches=full_matches,
        bilateral_matches=bilateral,
        rejected_by_provider_policy=rejected_by_policy,
    )


def is_unsatisfiable(
    request: ClassAd, pool: Sequence[ClassAd], policy: MatchPolicy = DEFAULT_POLICY
) -> bool:
    """True iff no ad in *pool* can bilaterally match *request* — the
    Section 5 "constraints which can never be satisfied" detector."""
    return diagnose(request, pool, policy).never_matches


def pool_attribute_census(
    pool: Sequence[ClassAd], attrs: Sequence[str]
) -> Dict[str, Counter]:
    """Value distribution per attribute — "discovering hidden
    characteristics of a pool" (Section 5)."""
    out: Dict[str, Counter] = {}
    for attr in attrs:
        census: Counter = Counter()
        for ad in pool:
            value = ad.evaluate(attr)
            if is_string(value) or is_number(value) or isinstance(value, bool):
                census[value] += 1
            else:
                census["<undefined>"] += 1
        out[attr] = census
    return out
