"""Constraint diagnostics — S22 in DESIGN.md.

Section 5: "The complexity of constraints imposed by resources and
customers may hinder the diagnostic capability of administrators and
customers who may wonder why certain requests are unable to find
resources with particular characteristics.  To alleviate this problem,
we are researching methods for identifying constraints which can never
be satisfied by the pool.  In addition to diagnostic utilities, this
tool may help discovering hidden characteristics of a pool."

This module is that tool (the ancestor of HTCondor's
``condor_q -better-analyze``):

* decompose the request's Constraint into top-level conjuncts and count,
  for every conjunct, how many pool ads satisfy it;
* identify *unsatisfiable* conjuncts (zero ads) — the "never satisfied
  by the pool" detector;
* for equality predicates on a pool attribute, report the values the
  pool actually advertises (the "hidden characteristics" discovery);
* analyze the reverse direction too: of the ads satisfying the request,
  *which provider-side conjuncts* refuse the requester (not just how
  many ads) — provider policy is as diagnosable as customer policy;
* attribute a single failed (request, provider) pair to the side and
  first failing top-level conjunct that killed it
  (:func:`attribute_failure`) — the negotiation event log calls this at
  match time, so the offline analysis above is also captured live for
  every rejection (see :mod:`repro.obs.events`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..classads import ClassAd, Expr, is_true, unparse
from ..classads.ast import AttributeRef, walk
from ..classads.evaluator import evaluate
from ..classads.values import is_error, is_number, is_string, is_undefined
from .index import Predicate, conjuncts, extract_predicates
from .match import DEFAULT_POLICY, MatchPolicy, constraint_holds


@dataclass
class ClauseReport:
    """Per-conjunct satisfaction statistics against the pool."""

    expression: str
    satisfied: int
    total: int
    suggestion: Optional[str] = None

    @property
    def unsatisfiable(self) -> bool:
        return self.satisfied == 0

    def __str__(self) -> str:
        line = f"[{self.satisfied:5d} / {self.total}] {self.expression}"
        if self.suggestion:
            line += f"\n        hint: {self.suggestion}"
        return line


@dataclass
class ReverseReport:
    """One provider-side conjunct that rejected the requester.

    ``value`` is the three-valued verdict of that conjunct against the
    requester (``false``, ``undefined``, or ``error`` — remember that
    ``undefined`` is *not* ``false``: it usually means the request ad is
    missing an attribute the provider's policy reads)."""

    expression: str
    value: str
    count: int
    examples: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        line = f"[{self.count:5d}×] {self.expression}"
        if self.value != "false":
            line += f"  (evaluates to {self.value})"
        if self.examples:
            line += f"  e.g. {', '.join(self.examples)}"
        return line


@dataclass
class Diagnosis:
    """The full analysis of one request against one pool."""

    request_summary: str
    pool_size: int
    clauses: List[ClauseReport]
    full_constraint_matches: int
    bilateral_matches: int
    rejected_by_provider_policy: int
    provider_rejections: List[ReverseReport] = field(default_factory=list)

    @property
    def unsatisfiable_clauses(self) -> List[ClauseReport]:
        return [c for c in self.clauses if c.unsatisfiable]

    @property
    def never_matches(self) -> bool:
        return self.bilateral_matches == 0

    def render(self) -> str:
        lines = [
            f"Analysis of {self.request_summary} against {self.pool_size} ads:",
            "",
            "Constraint clauses (ads satisfying each / pool size):",
        ]
        lines += [f"  {clause}" for clause in self.clauses]
        lines += [
            "",
            f"ads satisfying the full Constraint : {self.full_constraint_matches}",
            f"of those, rejecting this requester : {self.rejected_by_provider_policy}",
            f"bilateral matches                  : {self.bilateral_matches}",
        ]
        if self.provider_rejections:
            lines.append("")
            lines.append(
                "provider-side rejections (their Constraint, evaluated against"
                " this requester):"
            )
            lines += [f"  {r}" for r in self.provider_rejections]
        if self.unsatisfiable_clauses:
            lines.append("")
            lines.append("UNSATISFIABLE clauses (no ad in the pool satisfies them):")
            lines += [f"  {c.expression}" for c in self.unsatisfiable_clauses]
        return "\n".join(lines)


def _clause_satisfied(clause: Expr, request: ClassAd, target: ClassAd) -> bool:
    return is_true(evaluate(clause, request, other=target))


# ---------------------------------------------------------------------------
# pairwise failure attribution (the live half of Section 5)


@dataclass(frozen=True)
class FailureAttribution:
    """Why one candidate (request, provider) pair failed to match.

    ``side`` names whose Constraint failed first — the matchmaking
    predicate checks the customer's, then the provider's, and so does
    this.  ``conjunct`` is the first failing top-level conjunct of that
    Constraint, ``value`` its three-valued verdict (``false`` /
    ``undefined`` / ``error``), and ``undefined_attrs`` the attribute
    references inside that conjunct which evaluated to ``undefined`` —
    the "you asked for an attribute nobody advertises" signal.
    """

    side: str  # "customer" | "provider"
    constraint: str  # the Constraint/Requirements attribute that failed
    conjunct: str  # first failing top-level conjunct, unparsed
    value: str  # "false" | "undefined" | "error"
    undefined_attrs: Tuple[str, ...] = ()

    def describe(self) -> str:
        text = f"{self.side} {self.constraint}: {self.conjunct} is {self.value}"
        if self.undefined_attrs:
            text += f" (undefined: {', '.join(self.undefined_attrs)})"
        return text


def _verdict(value) -> str:
    if is_undefined(value):
        return "undefined"
    if is_error(value):
        return "error"
    return "false"


def _undefined_refs(clause: Expr, ad: ClassAd, other: ClassAd) -> Tuple[str, ...]:
    """Attribute references in *clause* that evaluate to ``undefined``."""
    names: List[str] = []
    for node in walk(clause):
        if not isinstance(node, AttributeRef):
            continue
        if is_undefined(evaluate(node, ad, other=other)):
            display = node.name if node.scope is None else f"{node.scope}.{node.name}"
            if display not in names:
                names.append(display)
    return tuple(names)


def _attribute_side(
    side: str, ad: ClassAd, other: ClassAd, policy: MatchPolicy
) -> FailureAttribution:
    """*ad*'s Constraint rejected *other*; find the first failing conjunct."""
    name = policy.constraint_of(ad)
    assert name is not None, "an unconstrained ad cannot reject"
    for clause in conjuncts(ad[name]):
        value = evaluate(clause, ad, other=other)
        if not is_true(value):
            return FailureAttribution(
                side=side,
                constraint=name,
                conjunct=unparse(clause),
                value=_verdict(value),
                undefined_attrs=_undefined_refs(clause, ad, other),
            )
    # Unreachable for a pure top-level conjunction, but non-strict
    # operators could in principle make the whole fail while every
    # conjunct holds; attribute to the full expression.
    return FailureAttribution(
        side=side,
        constraint=name,
        conjunct=unparse(ad[name]),
        value=_verdict(ad.evaluate(name, other=other)),
    )


def attribute_failure(
    request: ClassAd,
    provider: ClassAd,
    policy: MatchPolicy = DEFAULT_POLICY,
) -> Optional[FailureAttribution]:
    """Which side's Constraint killed this pair, and which conjunct?

    Returns None when the pair is actually bilaterally compatible.  The
    customer's Constraint is checked first, mirroring the order of
    :func:`~repro.matchmaking.match.constraints_satisfied`.
    """
    if not constraint_holds(request, provider, policy):
        return _attribute_side("customer", request, provider, policy)
    if not constraint_holds(provider, request, policy):
        return _attribute_side("provider", provider, request, policy)
    return None


def _value_census(
    predicate: Predicate, pool: Sequence[ClassAd], limit: int = 6
) -> Optional[str]:
    """What values does the pool actually advertise for this attribute?"""
    census: Counter = Counter()
    missing = 0
    for ad in pool:
        value = ad.evaluate(predicate.attr)
        if is_string(value):
            census[value] += 1
        elif is_number(value):
            census[value] += 1
        else:
            missing += 1
    if not census and not missing:
        return None
    parts = [
        f"{value!r}×{count}" for value, count in census.most_common(limit)
    ]
    if missing:
        parts.append(f"<undefined>×{missing}")
    return f"pool advertises {predicate.attr} ∈ {{ {', '.join(parts)} }}"


def diagnose(
    request: ClassAd,
    pool: Sequence[ClassAd],
    policy: MatchPolicy = DEFAULT_POLICY,
) -> Diagnosis:
    """Why does (or doesn't) *request* match the *pool*?"""
    pool = list(pool)
    constraint_name = policy.constraint_of(request)
    clauses: List[ClauseReport] = []
    full_matches = 0
    bilateral = 0
    rejected_by_policy = 0

    clause_exprs = (
        conjuncts(request[constraint_name]) if constraint_name is not None else []
    )
    predicates = (
        extract_predicates(request[constraint_name], request)
        if constraint_name is not None
        else []
    )
    predicate_by_clause: Dict[int, Predicate] = {}
    # extract_predicates walks the same conjunct list in order; rebuild the
    # association clause-by-clause for suggestion lookup.
    for clause in clause_exprs:
        for predicate in extract_predicates(clause, request):
            predicate_by_clause[id(clause)] = predicate
            break

    for clause in clause_exprs:
        satisfied = sum(1 for ad in pool if _clause_satisfied(clause, request, ad))
        suggestion = None
        if satisfied == 0:
            predicate = predicate_by_clause.get(id(clause))
            if predicate is not None:
                suggestion = _value_census(predicate, pool)
        clauses.append(
            ClauseReport(
                expression=unparse(clause),
                satisfied=satisfied,
                total=len(pool),
                suggestion=suggestion,
            )
        )

    reverse: Dict[Tuple[str, str], ReverseReport] = {}
    for ad in pool:
        if constraint_name is None or is_true(
            request.evaluate(constraint_name, other=ad)
        ):
            full_matches += 1
            if constraint_holds(ad, request, policy):
                bilateral += 1
            else:
                rejected_by_policy += 1
                attribution = _attribute_side("provider", ad, request, policy)
                key = (attribution.conjunct, attribution.value)
                report = reverse.get(key)
                if report is None:
                    report = reverse[key] = ReverseReport(
                        expression=attribution.conjunct,
                        value=attribution.value,
                        count=0,
                    )
                report.count += 1
                name = ad.evaluate("Name")
                if isinstance(name, str) and len(report.examples) < 4:
                    report.examples.append(name)

    owner = request.evaluate("Owner")
    job_id = request.evaluate("JobId")
    summary = "request"
    if isinstance(owner, str):
        summary = f"job {job_id} of {owner}" if isinstance(job_id, int) else f"request of {owner}"
    return Diagnosis(
        request_summary=summary,
        pool_size=len(pool),
        clauses=clauses,
        full_constraint_matches=full_matches,
        bilateral_matches=bilateral,
        rejected_by_provider_policy=rejected_by_policy,
        provider_rejections=sorted(
            reverse.values(), key=lambda r: r.count, reverse=True
        ),
    )


def is_unsatisfiable(
    request: ClassAd, pool: Sequence[ClassAd], policy: MatchPolicy = DEFAULT_POLICY
) -> bool:
    """True iff no ad in *pool* can bilaterally match *request* — the
    Section 5 "constraints which can never be satisfied" detector."""
    return diagnose(request, pool, policy).never_matches


def pool_attribute_census(
    pool: Sequence[ClassAd], attrs: Sequence[str]
) -> Dict[str, Counter]:
    """Value distribution per attribute — "discovering hidden
    characteristics of a pool" (Section 5)."""
    out: Dict[str, Counter] = {}
    for attr in attrs:
        census: Counter = Counter()
        for ad in pool:
            value = ad.evaluate(attr)
            if is_string(value) or is_number(value) or isinstance(value, bool):
                census[value] += 1
            else:
                census["<undefined>"] += 1
        out[attr] = census
    return out
