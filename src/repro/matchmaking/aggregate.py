"""ClassAd aggregation / group matching — S21 in DESIGN.md.

Section 5: "lists of classads representing resources and customers
exhibit a high degree of regularity, which is manifest in two ways:
structural regularity and value regularity.  The former occurs when
entities tend to publish attributes with the same names, and the latter
occurs when groups of entities publish attributes with similar values.
We are currently investigating techniques for exploiting this
regularity, and automatically aggregating classads so that matches may
be performed in groups."

Implementation: two ads belong to the same **group** when they are
structurally identical after dropping a configurable set of
identity-only attributes (``Name``, ``ContactAddress``, ``AuthTicket``
by default — attributes that identify an instance but never appear in
matching constraints).  The matchmaker then evaluates constraints
against one *representative* per group and fans the verdict out to all
members, turning O(#ads) constraint evaluations into O(#groups).

Soundness requires that customers not constrain on the dropped
attributes; :func:`AdAggregation.safe_for` checks a customer's
constraint against the dropped set and falls back to exact matching
when it references one (so group matching is *never* wrong, only
sometimes unavailable — a property test enforces equivalence with the
naive matcher).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..classads import ClassAd, external_references, unparse
from .match import (
    DEFAULT_POLICY,
    Match,
    MatchPolicy,
    constraints_satisfied,
    evaluate_rank,
)

#: Attributes that identify an instance rather than describe a service;
#: dropped from group signatures.
DEFAULT_IDENTITY_ATTRS = frozenset(
    {"name", "contactaddress", "authticket", "advertisedat"}
)


@dataclass
class AdGroup:
    """A set of structurally identical ads (modulo identity attrs)."""

    signature: Tuple
    representative: ClassAd
    members: List[ClassAd] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.members)


def group_signature(
    ad: ClassAd, identity_attrs: frozenset = DEFAULT_IDENTITY_ATTRS
) -> Tuple:
    """A hashable signature capturing the ad's matching-relevant content.

    Structural regularity: the sorted attribute-name set.  Value
    regularity: the expressions themselves (rendered, since Expr nodes
    hash structurally but rendering keeps the signature debuggable).
    """
    parts = []
    for key in sorted(ad.canonical_keys()):
        if key in identity_attrs:
            continue
        parts.append((key, unparse(ad[key])))
    return tuple(parts)


class AdAggregation:
    """Grouped view of a provider-ad population."""

    def __init__(
        self,
        ads: Sequence[ClassAd],
        identity_attrs: Iterable[str] = DEFAULT_IDENTITY_ATTRS,
    ):
        self.identity_attrs = frozenset(a.lower() for a in identity_attrs)
        self.groups: List[AdGroup] = []
        table: Dict[Tuple, AdGroup] = {}
        for ad in ads:
            signature = group_signature(ad, self.identity_attrs)
            group = table.get(signature)
            if group is None:
                group = AdGroup(signature=signature, representative=ad)
                table[signature] = group
                self.groups.append(group)
            group.members.append(ad)

    @property
    def total_ads(self) -> int:
        return sum(len(g) for g in self.groups)

    @property
    def compression(self) -> float:
        """ads-per-group — the regularity factor E7 sweeps."""
        return self.total_ads / len(self.groups) if self.groups else 0.0

    def safe_for(self, customer: ClassAd, policy: MatchPolicy = DEFAULT_POLICY) -> bool:
        """Group verdicts are valid for *customer* iff its constraint and
        rank never reference a dropped (identity) attribute of the other
        ad."""
        exprs = []
        name = policy.constraint_of(customer)
        if name is not None:
            exprs.append(customer[name])
        rank = customer.lookup(policy.rank_attr)
        if rank is not None:
            exprs.append(rank)
        for expr in exprs:
            for scope, attr in external_references(expr):
                if scope in ("other", None) and attr in self.identity_attrs:
                    return False
        return True


@dataclass
class GroupMatchStats:
    constraint_evaluations: int = 0
    groups_tested: int = 0
    fallbacks: int = 0  # customers unsafe for grouping


def group_match(
    customer: ClassAd,
    aggregation: AdAggregation,
    policy: MatchPolicy = DEFAULT_POLICY,
    stats: Optional[GroupMatchStats] = None,
) -> List[ClassAd]:
    """All providers matching *customer*, evaluated per group.

    Equivalent to filtering every ad with
    :func:`~repro.matchmaking.match.constraints_satisfied` (a hypothesis
    property enforces this); cost scales with the number of *groups*.
    Falls back to exact per-ad matching when the customer references an
    identity attribute.
    """
    stats = stats if stats is not None else GroupMatchStats()
    if not aggregation.safe_for(customer, policy):
        stats.fallbacks += 1
        matched = []
        for group in aggregation.groups:
            for ad in group.members:
                stats.constraint_evaluations += 1
                if constraints_satisfied(customer, ad, policy):
                    matched.append(ad)
        return matched
    matched = []
    for group in aggregation.groups:
        stats.groups_tested += 1
        stats.constraint_evaluations += 1
        if constraints_satisfied(customer, group.representative, policy):
            matched.extend(group.members)
    return matched


def group_best_match(
    customer: ClassAd,
    aggregation: AdAggregation,
    policy: MatchPolicy = DEFAULT_POLICY,
    stats: Optional[GroupMatchStats] = None,
) -> Optional[Match]:
    """Best provider by (customer Rank, provider Rank), one evaluation
    per group: all members share rank values because they share every
    matching-relevant attribute."""
    stats = stats if stats is not None else GroupMatchStats()
    if not aggregation.safe_for(customer, policy):
        stats.fallbacks += 1
        from .match import best_match

        flat = [ad for group in aggregation.groups for ad in group.members]
        stats.constraint_evaluations += len(flat)
        return best_match(customer, flat, policy)
    best: Optional[Tuple[float, float, int, AdGroup]] = None
    for order, group in enumerate(aggregation.groups):
        stats.groups_tested += 1
        stats.constraint_evaluations += 1
        representative = group.representative
        if not constraints_satisfied(customer, representative, policy):
            continue
        key = (
            evaluate_rank(customer, representative, policy),
            evaluate_rank(representative, customer, policy),
            -order,
        )
        if best is None or key > best[:3]:
            best = (*key, group)
    if best is None:
        return None
    group = best[3]
    chosen = group.members[0]
    return Match(
        customer=customer,
        provider=chosen,
        customer_rank=best[0],
        provider_rank=best[1],
        index=0,
    )
