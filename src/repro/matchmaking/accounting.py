"""Fair-share accounting — S8 in DESIGN.md.

Section 4: "The matchmaking algorithm also uses past resource usage
information to enforce a fair matching policy."

This module implements the up-down style accountant deployed Condor
uses: each submitter has a *real priority* that exponentially tracks the
number of resources in use (rising while the user hogs machines, decaying
back when idle, with a configurable half-life), and an *effective
priority* — real priority times a per-user priority factor.  Lower
effective priority is better; the negotiator serves submitters in
ascending effective-priority order, and the steady-state share of two
competing users is inversely proportional to their effective priorities
(experiment E4 measures exactly this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

#: Floor on real priority: even an unused account negotiates at this
#: priority (matches Condor's 0.5 floor).
MINIMUM_PRIORITY = 0.5

#: Default half-life of priority decay, in simulated seconds (Condor's
#: PRIORITY_HALFLIFE default is one day; our simulated days are shorter,
#: so benchmarks pass explicit values).
DEFAULT_HALF_LIFE = 86_400.0


@dataclass
class SubmitterRecord:
    """Accounting state for one submitter."""

    name: str
    real_priority: float = MINIMUM_PRIORITY
    priority_factor: float = 1.0
    resources_in_use: int = 0
    accumulated_usage: float = 0.0  # resource-seconds, for reporting
    last_update: float = 0.0

    @property
    def effective_priority(self) -> float:
        return self.real_priority * self.priority_factor


class Accountant:
    """Tracks submitter usage and produces negotiation order.

    Usage model: call :meth:`resource_claimed` / :meth:`resource_released`
    as claims start and end, and :meth:`advance_to` as simulated time
    passes.  Real priority follows the ODE

        dP/dt = (in_use - P) * ln(2) / half_life

    i.e. it converges exponentially toward the current number of
    resources in use — Condor's up-down algorithm.
    """

    def __init__(self, half_life: float = DEFAULT_HALF_LIFE, now: float = 0.0):
        if half_life <= 0:
            raise ValueError("half_life must be positive")
        self.half_life = half_life
        self.now = now
        self._records: Dict[str, SubmitterRecord] = {}

    # -- record access ---------------------------------------------------

    def record(self, submitter: str) -> SubmitterRecord:
        """The record for *submitter*, created on first use."""
        rec = self._records.get(submitter)
        if rec is None:
            rec = SubmitterRecord(name=submitter, last_update=self.now)
            self._records[submitter] = rec
        return rec

    def submitters(self) -> List[str]:
        return list(self._records)

    def set_priority_factor(self, submitter: str, factor: float) -> None:
        """Administrative knob: larger factor ⇒ worse priority ⇒ smaller share."""
        if factor <= 0:
            raise ValueError("priority factor must be positive")
        self.record(submitter).priority_factor = factor

    # -- time and usage ---------------------------------------------------

    def advance_to(self, now: float) -> None:
        """Decay/grow priorities up to simulated time *now*."""
        if now < self.now:
            raise ValueError(f"time went backwards: {now} < {self.now}")
        for rec in self._records.values():
            self._update_record(rec, now)
        self.now = now

    def _update_record(self, rec: SubmitterRecord, now: float) -> None:
        dt = now - rec.last_update
        if dt > 0:
            # Exponential approach of real_priority toward resources_in_use.
            beta = math.exp(-dt * math.log(2.0) / self.half_life)
            target = float(rec.resources_in_use)
            rec.real_priority = target + (rec.real_priority - target) * beta
            rec.real_priority = max(MINIMUM_PRIORITY, rec.real_priority)
            rec.accumulated_usage += rec.resources_in_use * dt
        rec.last_update = now

    def resource_claimed(self, submitter: str, now: float = None) -> None:
        """Note that *submitter* started using one more resource."""
        if now is not None:
            self.advance_to(now)
        rec = self.record(submitter)
        self._update_record(rec, self.now)
        rec.resources_in_use += 1

    def resource_released(self, submitter: str, now: float = None) -> None:
        """Note that *submitter* stopped using one resource."""
        if now is not None:
            self.advance_to(now)
        rec = self.record(submitter)
        self._update_record(rec, self.now)
        if rec.resources_in_use <= 0:
            raise ValueError(f"{submitter} released a resource it did not hold")
        rec.resources_in_use -= 1

    # -- negotiation interface ---------------------------------------------

    def effective_priority(self, submitter: str) -> float:
        return self.record(submitter).effective_priority

    def negotiation_order(self, submitters: List[str]) -> List[str]:
        """*submitters* sorted best-first (ascending effective priority).

        Name breaks ties so the order is deterministic.
        """
        return sorted(
            submitters,
            key=lambda s: (self.record(s).effective_priority, s),
        )

    def fair_shares(self, submitters: List[str]) -> Dict[str, float]:
        """Ideal steady-state share of the pool for each submitter.

        Shares are inversely proportional to effective priority and sum
        to 1 — the quantity experiment E4 compares measured allocation
        against.
        """
        weights = {s: 1.0 / self.record(s).effective_priority for s in submitters}
        total = sum(weights.values())
        if total == 0:
            return {s: 0.0 for s in submitters}
        return {s: w / total for s, w in weights.items()}

    def usage_report(self) -> List[Tuple[str, float, float, int]]:
        """(name, effective priority, accumulated usage, in use) rows,
        best priority first — the `condor_userprio` view."""
        rows = [
            (r.name, r.effective_priority, r.accumulated_usage, r.resources_in_use)
            for r in self._records.values()
        ]
        rows.sort(key=lambda row: (row[1], row[0]))
        return rows
