"""Multi-core candidate scoring for the negotiation cycle — DESIGN.md S23.

PRs 3–4 took the negotiation hot path (constraint checks + bilateral
rank evaluation per ``(request class, provider)`` pair) as far as one
core goes: compiled closures, incremental indexing, and equivalence
batching.  The remaining cost is *pure query evaluation* — Robinson &
DeWitt's observation that matchmaking is data management — and pure
query evaluation parallelises embarrassingly: each pairing is evaluated
independently, and only the *commit* (assignment under the ``taken``
set, preemption, fair-share accounting) is order-sensitive.

This module supplies the scoring tier:

* :class:`ScoringPool` — a persistent pool of worker *processes*
  (spawned once, reused across negotiation cycles, cleanly shut down
  and respawned when the configuration changes).  Per cycle the parent
  ships each worker a contiguous chunk of the provider ads over a
  compact wire format built on :mod:`repro.classads.serialize`; per
  request class it ships the class representative's ad and collects
  ``(pid, outcome)`` tuples.  Each worker deserialises into its own
  :class:`~repro.classads.classad.ClassAd` objects and compiles
  expressions into its own per-worker ``_ccache``/structural memo, so
  warm cycles evaluate closure-only on every core.
* :class:`CycleScoring` — the per-cycle handle
  :func:`~repro.matchmaking.matchmaker.negotiation_cycle` drives:
  lazy provider upload, per-class fan-out, deterministic merge.

**Determinism.** Chunks are contiguous slices of the provider list and
results are merged in worker order, so the concatenated outcome list is
in ascending provider-id order — exactly the serial scan order.  The
parent then sorts/commits **serially and unchanged**, so assignments,
tie-breaks, preemptions, fair-share outcomes, and the forensic event
stream are bit-for-bit identical to the serial engine (enforced by
``tests/matchmaking/test_parallel_equivalence.py``).  Workers consult
no wall clock and no RNG; scoring is a pure function of the shipped
ads.

**Configuration.**

* ``REPRO_SCORING_WORKERS=<n>`` / :func:`set_scoring_workers` — worker
  count; 0 (the default) leaves scoring serial.
* ``REPRO_NO_PARALLEL=1`` / :func:`set_parallelism` — kill-switch: the
  cycle routes everything back through the serial scorer even when
  workers are configured (mirrors ``REPRO_NO_COMPILE`` /
  ``REPRO_NO_BATCH``).
* ``REPRO_PARALLEL_THRESHOLD=<pairs>`` / :func:`set_pair_threshold` —
  the automatic serial fallback: a class whose candidate pool is
  smaller than this many pairs is scored in-process, because IPC
  overhead dominates tiny pools.  Tune it from
  ``benchmarks/profile_negotiation.py``'s per-stage breakdown.

Failures degrade, never break: a worker crash or serialization surprise
marks the pool dead, the class is scored serially (counted in
``parallel.fallbacks``), and the next cycle respawns a fresh pool.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..classads import ClassAd
from ..classads.fingerprint import fingerprint
from ..classads.serialize import SerializationError, from_json_obj, to_json_obj
from ..obs import metrics as _metrics
from .match import (
    DEFAULT_POLICY,
    MatchPolicy,
    availability_of,
    constraints_satisfied,
    current_owner_of,
    current_rank_of,
    evaluate_rank,
)

__all__ = [
    "CycleScoring",
    "ScoringPool",
    "ScoringPoolError",
    "cycle_scoring",
    "pair_threshold",
    "parallelism_enabled",
    "scoring_pool",
    "scoring_workers",
    "set_pair_threshold",
    "set_parallelism",
    "set_scoring_workers",
    "shutdown_scoring_pool",
]

# Observability: one registry update per *class build*, never per pair —
# the counters cost nothing against the work they describe.
_PAR_CHUNKS = _metrics.counter(
    "parallel.chunks", "provider chunks dispatched to scoring workers"
)
_PAR_PAIRS = _metrics.counter(
    "parallel.pairs_scored", "(class, provider) pairs scored in worker processes"
)
_PAR_FALLBACKS = _metrics.counter(
    "parallel.fallbacks",
    "class builds scored serially despite parallel configuration "
    "(below threshold, or the pool was unavailable)",
)


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


#: Default serial-fallback bar: a class build below this many
#: (class, provider) pairs is cheaper in-process than over IPC
#: (measured with ``profile_negotiation.py --workers N``; see
#: docs/PERFORMANCE.md for the tuning walkthrough).
DEFAULT_PAIR_THRESHOLD = 1024

_WORKERS = _env_int("REPRO_SCORING_WORKERS", 0)
_PARALLEL_ENABLED = not _env_flag("REPRO_NO_PARALLEL")
_THRESHOLD = _env_int("REPRO_PARALLEL_THRESHOLD", DEFAULT_PAIR_THRESHOLD)


def scoring_workers() -> int:
    """Configured worker count (0 = scoring stays serial)."""
    return _WORKERS


def set_scoring_workers(n: int) -> None:
    """Set the worker count; the shared pool is respawned lazily on the
    next cycle that needs it (and shut down now if the count shrank to
    zero)."""
    global _WORKERS
    _WORKERS = max(0, int(n))
    if _WORKERS == 0:
        shutdown_scoring_pool()


def parallelism_enabled() -> bool:
    """Whether parallel scoring is active (see ``REPRO_NO_PARALLEL``)."""
    return _PARALLEL_ENABLED


def set_parallelism(enabled: bool) -> None:
    """Programmatic kill-switch (benchmarks and tests toggle this)."""
    global _PARALLEL_ENABLED
    _PARALLEL_ENABLED = bool(enabled)


def pair_threshold() -> int:
    """Pair count below which a class build falls back to serial."""
    return _THRESHOLD


def set_pair_threshold(pairs: int) -> None:
    """Tune the serial-fallback bar (0 = always fan out)."""
    global _THRESHOLD
    _THRESHOLD = max(0, int(pairs))


class ScoringPoolError(RuntimeError):
    """A worker died, answered garbage, or refused a command."""


# ---------------------------------------------------------------------------
# worker side
#
# The worker is a plain command loop over a Pipe.  It holds one chunk of
# deserialized provider ads between commands; scoring mirrors the serial
# `_build_class` check order *exactly* so the outcome tuples are
# interchangeable with the in-process ones.


def _score_pair(
    rep: ClassAd, provider: ClassAd, policy: MatchPolicy, allow_preemption: bool
) -> Tuple:
    """One (class representative, provider) outcome, serial check order."""
    availability = availability_of(provider)
    if availability == "unavailable":
        return ("unavailable",)
    preempts: Optional[str] = None
    current = 0.0
    if availability == "preemptable":
        if not allow_preemption:
            return ("preemption-disabled",)
        preempts = current_owner_of(provider) or "<unknown>"
        current = current_rank_of(provider)
    if not constraints_satisfied(rep, provider, policy):
        return ("constraint",)
    provider_rank = evaluate_rank(provider, rep, policy)
    if preempts is not None and provider_rank <= current:
        return ("rank", provider_rank, current)
    return ("ok", evaluate_rank(rep, provider, policy), provider_rank, preempts)


def _worker_main(conn) -> None:
    """Worker process entry point: deserialize, compile, score, repeat.

    Per-worker state is exactly the provider chunk plus the compile
    caches that grow on its ads — no wall clock, no RNG, nothing that
    could make two runs differ.
    """
    providers: List[ClassAd] = []
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        tag = message[0]
        try:
            if tag == "pool":
                providers = [from_json_obj(obj) for obj in message[1]]
                conn.send(("ok", len(providers)))
            elif tag == "score":
                _, rep_obj, policy_fields, allow_preemption, local_ids = message
                started = time.perf_counter()
                rep = from_json_obj(rep_obj)
                policy = MatchPolicy(tuple(policy_fields[0]), policy_fields[1])
                indices = range(len(providers)) if local_ids is None else local_ids
                outcomes = [
                    _score_pair(rep, providers[i], policy, allow_preemption)
                    for i in indices
                ]
                conn.send(("ok", outcomes, time.perf_counter() - started))
            elif tag == "ping":
                conn.send(("ok",))
            else:  # "quit"
                conn.close()
                return
        except Exception as exc:  # surface, don't hang the parent
            try:
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
            except (OSError, ValueError):
                return


# ---------------------------------------------------------------------------
# parent side


def _chunk_bounds(n: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous, near-equal [lo, hi) slices of range(n), one per worker."""
    base, extra = divmod(n, workers)
    bounds = []
    lo = 0
    for i in range(workers):
        hi = lo + base + (1 if i < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


class ScoringPool:
    """A persistent pool of scoring worker processes.

    Spawned once and reused across negotiation cycles; ``close`` (or the
    module's atexit hook) shuts the workers down.  All communication is
    over per-worker pipes; chunk uploads are skipped when a worker's
    chunk is unchanged since the previous cycle, so a steady-state pool
    pays per-cycle IPC proportional to churn, not pool size.

    ``stage_seconds`` accumulates the parent-visible cost of each stage
    (serialize / ipc / score / merge) for
    ``benchmarks/profile_negotiation.py``'s breakdown; ``score`` is the
    workers' own in-process evaluation time, so ``ipc`` ≈ wait − score.
    """

    def __init__(self, workers: int, start_method: Optional[str] = None):
        if workers < 1:
            raise ValueError("a ScoringPool needs at least one worker")
        self.workers = workers
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        ctx = mp.get_context(start_method)
        self._procs = []
        self._conns = []
        for _ in range(workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(child_conn,), daemon=True)
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        self.alive = True
        #: Wire-format memo keyed by content fingerprint: equal-content
        #: ads — the same object refreshed in place, or a re-advertised
        #: replacement carrying identical attributes — share one
        #: serialized object.  Mutation invalidates the ad's cached
        #: fingerprint, so a changed ad can never hit a stale entry.
        self._ser_memo: Dict[str, dict] = {}
        self._ser_memo_limit = 65536
        #: Last uploaded chunk signature per worker (content
        #: fingerprints), used to skip redundant uploads.
        self._chunk_sigs: List[Optional[Tuple[str, ...]]] = [None] * workers
        self._bounds: List[Tuple[int, int]] = []
        self._loaded_count = 0
        self.stage_seconds = {"serialize": 0.0, "ipc": 0.0, "score": 0.0, "merge": 0.0}

    # -- wire format -------------------------------------------------------

    def _serialize(self, ad: ClassAd) -> dict:
        key = fingerprint(ad)
        obj = self._ser_memo.get(key)
        if obj is None:
            if len(self._ser_memo) >= self._ser_memo_limit:
                self._ser_memo.clear()
            obj = self._ser_memo[key] = to_json_obj(ad)
        return obj

    # -- worker protocol ---------------------------------------------------

    def _recv(self, worker: int):
        try:
            reply = self._conns[worker].recv()
        except (EOFError, OSError) as exc:
            self.alive = False
            raise ScoringPoolError(f"scoring worker {worker} died") from exc
        if not isinstance(reply, tuple) or not reply or reply[0] != "ok":
            self.alive = False
            detail = reply[1] if isinstance(reply, tuple) and len(reply) > 1 else reply
            raise ScoringPoolError(f"scoring worker {worker} failed: {detail}")
        return reply

    def _send(self, worker: int, message) -> None:
        try:
            self._conns[worker].send(message)
        except (OSError, ValueError) as exc:
            self.alive = False
            raise ScoringPoolError(f"scoring worker {worker} unreachable") from exc

    def load_providers(self, providers: Sequence[ClassAd]) -> None:
        """Ship the cycle's provider list, chunked, to the workers.

        Chunks whose content fingerprints are unchanged since the last
        upload are skipped entirely — object replacement by an equal ad
        no longer defeats the skip.
        """
        started = time.perf_counter()
        self._bounds = _chunk_bounds(len(providers), self.workers)
        self._loaded_count = len(providers)
        payloads: List[Optional[List[dict]]] = []
        for worker, (lo, hi) in enumerate(self._bounds):
            chunk = providers[lo:hi]
            sig = tuple(fingerprint(ad) for ad in chunk)
            if sig == self._chunk_sigs[worker]:
                payloads.append(None)  # unchanged content — skip the upload
            else:
                payloads.append([self._serialize(ad) for ad in chunk])
                self._chunk_sigs[worker] = sig
        self.stage_seconds["serialize"] += time.perf_counter() - started
        started = time.perf_counter()
        engaged = [w for w, objs in enumerate(payloads) if objs is not None]
        for worker in engaged:
            self._send(worker, ("pool", payloads[worker]))
        for worker in engaged:
            self._recv(worker)
        self.stage_seconds["ipc"] += time.perf_counter() - started

    def score(
        self,
        rep: ClassAd,
        policy: MatchPolicy,
        allow_preemption: bool,
        subset: Optional[Sequence[int]] = None,
    ) -> Tuple[List[Tuple], int]:
        """Score one class representative against the loaded providers.

        *subset*, when given, is an ascending list of global provider
        ids to score (the index-pruned candidate pool).  Returns the
        outcome tuples in ascending provider-id order — the serial scan
        order — plus the number of worker chunks engaged.
        """
        started = time.perf_counter()
        rep_obj = self._serialize(rep)
        policy_fields = (tuple(policy.constraint_attrs), policy.rank_attr)
        if subset is None:
            tasks: List[Tuple[int, Optional[List[int]]]] = [
                (worker, None)
                for worker, (lo, hi) in enumerate(self._bounds)
                if hi > lo
            ]
        else:
            per_worker: List[List[int]] = [[] for _ in range(self.workers)]
            bounds = self._bounds
            worker = 0
            for gid in subset:  # ascending, like the chunk layout
                while gid >= bounds[worker][1]:
                    worker += 1
                per_worker[worker].append(gid - bounds[worker][0])
            tasks = [
                (worker, local_ids)
                for worker, local_ids in enumerate(per_worker)
                if local_ids
            ]
        self.stage_seconds["serialize"] += time.perf_counter() - started
        started = time.perf_counter()
        for worker, local_ids in tasks:
            self._send(
                worker, ("score", rep_obj, policy_fields, allow_preemption, local_ids)
            )
        outcomes: List[Tuple] = []
        scored_seconds = 0.0
        merge_seconds = 0.0
        for worker, _local_ids in tasks:
            reply = self._recv(worker)
            scored_seconds += reply[2]
            merge_started = time.perf_counter()
            outcomes.extend(reply[1])
            merge_seconds += time.perf_counter() - merge_started
        waited = time.perf_counter() - started
        self.stage_seconds["score"] += scored_seconds
        self.stage_seconds["merge"] += merge_seconds
        self.stage_seconds["ipc"] += max(0.0, waited - scored_seconds - merge_seconds)
        return outcomes, len(tasks)

    def ping(self) -> bool:
        """Round-trip every worker; False (and dead) on any failure."""
        try:
            for worker in range(self.workers):
                self._send(worker, ("ping",))
            for worker in range(self.workers):
                self._recv(worker)
        except ScoringPoolError:
            return False
        return True

    def reset_stage_seconds(self) -> None:
        for key in self.stage_seconds:
            self.stage_seconds[key] = 0.0

    def close(self) -> None:
        """Shut the workers down; safe to call repeatedly."""
        self.alive = False
        for conn in self._conns:
            try:
                conn.send(("quit",))
            except (OSError, ValueError):
                pass
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        self._procs = []
        self._conns = []


# ---------------------------------------------------------------------------
# the shared pool + per-cycle handle

_POOL: Optional[ScoringPool] = None


def scoring_pool() -> Optional[ScoringPool]:
    """The process-wide pool for the configured worker count.

    Spawned on first use, reused across cycles (and across Matchmaker
    instances — workers are stateless between commands), shut down and
    respawned when :func:`set_scoring_workers` changes the count or the
    previous pool died.  None when workers are configured to 0 or the
    pool cannot be spawned.
    """
    global _POOL
    workers = scoring_workers()
    if workers <= 0:
        return None
    if _POOL is not None and (_POOL.workers != workers or not _POOL.alive):
        _POOL.close()
        _POOL = None
    if _POOL is None:
        try:
            _POOL = ScoringPool(workers)
        except (OSError, ValueError):
            return None
    return _POOL


def shutdown_scoring_pool() -> None:
    """Terminate the shared pool (tests, config changes, interpreter exit)."""
    global _POOL
    if _POOL is not None:
        _POOL.close()
        _POOL = None


atexit.register(shutdown_scoring_pool)


class CycleScoring:
    """One negotiation cycle's view of the scoring pool.

    Created by :func:`cycle_scoring` at cycle start; uploads the
    provider list lazily (first class that actually fans out) so cycles
    that never cross the threshold pay nothing but the per-class size
    check.  Tallies are plain ints consumed by ``cycle.end`` events and
    ``CycleStats``; the registry counters settle once per class build.
    """

    __slots__ = ("pool", "providers", "threshold", "chunks", "pairs", "fallbacks",
                 "_loaded", "_gid_of")

    def __init__(self, pool: ScoringPool, providers: Sequence[ClassAd], threshold: int):
        self.pool = pool
        self.providers = providers
        self.threshold = threshold
        self.chunks = 0
        self.pairs = 0
        self.fallbacks = 0
        self._loaded = False
        self._gid_of: Optional[Dict[int, int]] = None

    @property
    def workers(self) -> int:
        return self.pool.workers

    def score_class(
        self,
        rep: ClassAd,
        pool_ads: Sequence[ClassAd],
        policy: MatchPolicy = DEFAULT_POLICY,
        allow_preemption: bool = True,
    ) -> Optional[List[Tuple]]:
        """Fan one class build out to the workers.

        Returns outcome tuples in candidate order, or None when the
        class should be scored serially (below the threshold, or the
        pool failed — the caller's serial path is always correct).
        """
        if len(pool_ads) < self.threshold or not self.pool.alive:
            self.fallbacks += 1
            if _metrics.enabled:
                _PAR_FALLBACKS.inc()
            return None
        try:
            if not self._loaded:
                self.pool.load_providers(self.providers)
                self._loaded = True
            if pool_ads is self.providers:
                subset: Optional[List[int]] = None
            else:
                gid_of = self._gid_of
                if gid_of is None:
                    gid_of = self._gid_of = {
                        id(ad): gid for gid, ad in enumerate(self.providers)
                    }
                subset = [gid_of[id(ad)] for ad in pool_ads]
            outcomes, engaged = self.pool.score(rep, policy, allow_preemption, subset)
            if len(outcomes) != len(pool_ads):
                raise ScoringPoolError(
                    f"worker results misaligned: {len(outcomes)} outcomes"
                    f" for {len(pool_ads)} candidates"
                )
        except (ScoringPoolError, SerializationError, KeyError):
            # Degrade to the serial scorer; a fresh pool is spawned on
            # the next cycle.  KeyError: a candidate ad not in the
            # cycle's provider list (caller contract violation).
            self.pool.alive = False
            self.fallbacks += 1
            if _metrics.enabled:
                _PAR_FALLBACKS.inc()
            return None
        self.chunks += engaged
        self.pairs += len(pool_ads)
        if _metrics.enabled:
            _PAR_CHUNKS.inc(engaged)
            _PAR_PAIRS.inc(len(pool_ads))
        return outcomes


def cycle_scoring(
    providers: Sequence[ClassAd], enabled: Optional[bool] = None
) -> Optional[CycleScoring]:
    """The cycle-start hook: a :class:`CycleScoring` handle when parallel
    scoring is configured, enabled, and a pool is available — else None
    (the cycle stays serial).  *enabled* overrides the module switch for
    this cycle, mirroring ``negotiation_cycle``'s ``batch`` argument."""
    if not (_PARALLEL_ENABLED if enabled is None else enabled) or not providers:
        return None
    pool = scoring_pool()
    if pool is None:
        return None
    return CycleScoring(pool, providers, _THRESHOLD)
