"""Attribute indexing for matchmaking throughput — S7 in DESIGN.md.

The naive matchmaking algorithm evaluates every (customer, provider)
Constraint pair: O(N·M) full expression evaluations per negotiation
cycle.  The paper observes (Section 5) that real pools "exhibit a high
degree of regularity"; this module exploits *value regularity* directly
by pre-filtering providers on indexable predicates extracted from the
customer's Constraint.

Extraction is conservative and the filter is **sound**: a provider is
pruned only if some top-level conjunct of the customer's Constraint is
*provably* false against it.  Providers whose indexed attribute is not a
concrete constant (policy expressions, missing attributes) are never
pruned.  Soundness is enforced by a hypothesis property test comparing
indexed and naive match sets, and the speedup is measured by the E6
ablation benchmark.

Since PR 4 the index is **delta-maintained**: :meth:`ProviderIndex.add`
/ :meth:`~ProviderIndex.remove` / :meth:`~ProviderIndex.replace` update
the posting lists in place, so a long-lived matchmaker pays O(attrs)
per advertisement instead of an O(N) rebuild per negotiation cycle.
Provider ids are stable across deltas (``replace`` keeps the id), which
preserves the deterministic input-order tie-break of the naive matcher.
Correctness never depends on the delta bookkeeping: any inconsistency
marks the index *dirty* and the next operation falls back to a full
rebuild from the authoritative ad collection — the ``index.rebuilds``
counter makes that fallback observable (a steady-state pool should show
exactly the initial build).

:class:`MaintainedIndex` layers the advertising protocol on top: a
name-keyed membership view (``Type == "Machine"`` by default) that the
:class:`~repro.matchmaking.matchmaker.Matchmaker` and the simulated
collector keep in sync with advertise/withdraw/expiry.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..classads import ClassAd, is_true
from ..classads.ast import AttributeRef, BinaryOp, Expr
from ..classads.compile import compile_expr, evaluate
from ..classads.values import is_number, is_string
from ..obs import metrics as _metrics
from .match import DEFAULT_POLICY, MatchPolicy

# Observability: a "hit" is a lookup whose constraint yielded at least
# one indexable predicate (the index could prune); a "miss" fell back
# to the full provider list.  Pruned/candidate totals quantify how much
# work the index saves ahead of full constraint evaluation, and the
# delta/rebuild counters watch the incremental-maintenance machinery —
# a steady-state pool performs deltas only.
_IDX_HITS = _metrics.counter(
    "index.hits", "lookups where indexable predicates pruned the pool"
)
_IDX_MISSES = _metrics.counter(
    "index.misses", "lookups with no indexable predicate (full scan)"
)
_IDX_CANDIDATES = _metrics.counter(
    "index.candidates", "providers surviving index pre-filtering"
)
_IDX_PRUNED = _metrics.counter(
    "index.pruned", "providers eliminated by index pre-filtering"
)
_IDX_DELTA = _metrics.counter(
    "index.delta_updates", "incremental index updates (add/remove/replace)"
)
_IDX_REBUILDS = _metrics.counter(
    "index.rebuilds", "full index (re)builds, including the initial build"
)

#: Attributes indexed for equality by default: the discrete machine
#: descriptors every job constrains on.
DEFAULT_EQUALITY_ATTRS = ("type", "arch", "opsys", "state")

#: Attributes indexed for range predicates by default.
DEFAULT_RANGE_ATTRS = ("memory", "disk", "mips", "kflops")


@dataclass(frozen=True)
class Predicate:
    """One extracted conjunct: ``attr <op> value`` over the provider ad."""

    attr: str  # canonical (lowercase) provider attribute
    op: str  # one of == < <= > >=
    value: object  # concrete string or number


def conjuncts(expr: Expr) -> List[Expr]:
    """Split *expr* into its top-level ``&&`` conjuncts."""
    out: List[Expr] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, BinaryOp) and node.op == "&&":
            stack.append(node.right)
            stack.append(node.left)
        else:
            out.append(node)
    return out


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}


def _provider_side_ref(node: Expr, customer: ClassAd) -> Optional[str]:
    """If *node* references a provider attribute, return its canonical name.

    A reference targets the provider when it is ``other.X``, or a bare
    ``X`` that the customer ad does not itself define (bare names resolve
    self-first, then fall through to the other ad).
    """
    if not isinstance(node, AttributeRef):
        return None
    if node.scope == "other":
        return node.canonical
    if node.scope is None and node.canonical not in customer:
        return node.canonical
    return None


def _customer_constant(node: Expr, customer: ClassAd) -> Optional[object]:
    """Evaluate *node* using only the customer ad; None unless concrete.

    This is what lets Figure 2's ``other.Memory >= self.Memory`` become
    the predicate ``memory >= 31``.
    """
    if isinstance(node, AttributeRef) and _provider_side_ref(node, customer) is not None:
        return None  # references the provider — not a constant
    value = evaluate(node, customer)
    if is_string(value) or is_number(value):
        return value
    return None


def extract_predicates(
    constraint: Expr, customer: ClassAd
) -> List[Predicate]:
    """Indexable predicates implied by the customer's Constraint.

    Only comparisons at the top-level conjunction are considered; any
    predicate inside ``||``/``?:`` could be satisfied another way and is
    ignored (soundness).
    """
    predicates: List[Predicate] = []
    for node in conjuncts(constraint):
        if not isinstance(node, BinaryOp) or node.op not in _FLIP:
            continue
        attr = _provider_side_ref(node.left, customer)
        if attr is not None:
            value = _customer_constant(node.right, customer)
            if value is not None:
                predicates.append(Predicate(attr, node.op, value))
            continue
        attr = _provider_side_ref(node.right, customer)
        if attr is not None:
            value = _customer_constant(node.left, customer)
            if value is not None:
                predicates.append(Predicate(attr, _FLIP[node.op], value))
    return predicates


#: Sentinel above any provider id, for bisecting (value, pid) pairs.
_PID_INF = float("inf")


class ProviderIndex:
    """A delta-maintained index over a collection of provider ads.

    Equality attributes map concrete values to provider-id sets; range
    attributes keep ``(value, pid)`` pairs sorted for bisect pruning.
    Providers whose attribute does not evaluate to a concrete constant
    (policy expressions, missing attributes) join that attribute's
    wildcard set and are never pruned on it.

    Provider ids are assigned at insertion and *stable*: ``replace``
    re-indexes a refreshed advertisement under its old id, so the
    candidate order (ascending id = insertion order) matches what a
    naive scan of the same ad collection would see.  Posting-list
    membership per provider is remembered in an undo log, so removal is
    exact even if the ad object was mutated since insertion; any
    bookkeeping surprise instead sets a dirty flag and the next
    operation rebuilds from scratch — correctness never rests on the
    delta path.
    """

    def __init__(
        self,
        providers: Sequence[ClassAd] = (),
        equality_attrs: Iterable[str] = DEFAULT_EQUALITY_ATTRS,
        range_attrs: Iterable[str] = DEFAULT_RANGE_ATTRS,
    ):
        self.equality_attrs = {a.lower() for a in equality_attrs}
        self.range_attrs = {a.lower() for a in range_attrs}
        self._ads: Dict[int, ClassAd] = {}  # pid -> ad, insertion order
        self._pid_of: Dict[int, int] = {}  # id(ad) -> pid
        self._next_pid = 0
        # pid -> posting-list entries to undo on removal
        self._undo: Dict[int, List[Tuple]] = {}
        self._eq: Dict[str, Dict[object, Set[int]]] = {}
        self._eq_wild: Dict[str, Set[int]] = {}
        # attr -> sorted [(value, pid), ...]
        self._range: Dict[str, List[Tuple[float, int]]] = {}
        self._range_wild: Dict[str, Set[int]] = {}
        self._dirty = False
        self._provider_list: Optional[List[ClassAd]] = None
        #: Always-on instance tallies (benchmarks assert on these without
        #: enabling the metrics registry).
        self.rebuilds = 0
        self.delta_updates = 0
        for ad in providers:
            pid = self._next_pid
            self._next_pid += 1
            self._ads[pid] = ad
            self._pid_of[id(ad)] = pid
        self._rebuild()

    # -- construction / maintenance ---------------------------------------

    def _rebuild(self) -> None:
        """Rebuild every posting list from ``self._ads`` (the fallback)."""
        self._eq = {attr: {} for attr in self.equality_attrs}
        self._eq_wild = {attr: set() for attr in self.equality_attrs}
        self._range = {attr: [] for attr in self.range_attrs}
        self._range_wild = {attr: set() for attr in self.range_attrs}
        self._undo = {}
        for pid, ad in self._ads.items():
            self._index_ad(pid, ad, sort_ranges=False)
        for pairs in self._range.values():
            pairs.sort()
        self._dirty = False
        self._provider_list = None
        self.rebuilds += 1
        if _metrics.enabled:
            _IDX_REBUILDS.inc()

    def _index_ad(self, pid: int, ad: ClassAd, sort_ranges: bool = True) -> None:
        """Insert *ad*'s postings under *pid*, recording the undo log."""
        undo: List[Tuple] = []
        for attr in self.equality_attrs:
            value = self._concrete(ad, attr)
            if value is None:
                self._eq_wild[attr].add(pid)
                undo.append(("ew", attr))
            else:
                key = value.lower() if isinstance(value, str) else value
                self._eq[attr].setdefault(key, set()).add(pid)
                undo.append(("eq", attr, key))
        for attr in self.range_attrs:
            value = self._concrete(ad, attr)
            if is_number(value):
                pair = (float(value), pid)
                if sort_ranges:
                    bisect.insort(self._range[attr], pair)
                else:
                    self._range[attr].append(pair)
                undo.append(("r", attr, pair))
            else:
                self._range_wild[attr].add(pid)
                undo.append(("rw", attr))
        self._undo[pid] = undo

    def _unindex_ad(self, pid: int) -> None:
        """Undo exactly the postings recorded for *pid*."""
        for entry in self._undo.pop(pid, ()):
            kind = entry[0]
            if kind == "eq":
                _, attr, key = entry
                postings = self._eq[attr].get(key)
                if postings is None:
                    self._dirty = True
                    continue
                postings.discard(pid)
                if not postings:
                    del self._eq[attr][key]
            elif kind == "ew":
                self._eq_wild[entry[1]].discard(pid)
            elif kind == "r":
                _, attr, pair = entry
                pairs = self._range[attr]
                i = bisect.bisect_left(pairs, pair)
                if i < len(pairs) and pairs[i] == pair:
                    pairs.pop(i)
                else:  # postings drifted — fall back to a rebuild
                    self._dirty = True
            else:  # "rw"
                self._range_wild[entry[1]].discard(pid)

    def _settle(self) -> None:
        if self._dirty:
            self._rebuild()

    def add(self, ad: ClassAd) -> None:
        """Index *ad* (appended in candidate order); re-adding the same
        object refreshes its postings in place."""
        self._settle()
        pid = self._pid_of.get(id(ad))
        if pid is not None:  # same object re-advertised: refresh postings
            self._unindex_ad(pid)
        else:
            pid = self._next_pid
            self._next_pid += 1
            self._pid_of[id(ad)] = pid
            self._ads[pid] = ad
            self._provider_list = None
        self._index_ad(pid, ad)
        self.delta_updates += 1
        if _metrics.enabled:
            _IDX_DELTA.inc()

    def remove(self, ad: ClassAd) -> bool:
        """Drop *ad* from the index; False when it was not indexed."""
        self._settle()
        pid = self._pid_of.pop(id(ad), None)
        if pid is None:
            return False
        del self._ads[pid]
        self._unindex_ad(pid)
        self._provider_list = None
        self.delta_updates += 1
        if _metrics.enabled:
            _IDX_DELTA.inc()
        return True

    def replace(self, old: ClassAd, new: ClassAd) -> None:
        """Swap a refreshed advertisement in under *old*'s provider id,
        preserving its position in the candidate order."""
        if old is new:
            self.add(new)
            return
        self._settle()
        pid = self._pid_of.pop(id(old), None)
        if pid is None:  # unknown predecessor: plain append
            self.add(new)
            return
        self._unindex_ad(pid)
        self._ads[pid] = new
        self._pid_of[id(new)] = pid
        self._index_ad(pid, new)
        self._provider_list = None
        self.delta_updates += 1
        if _metrics.enabled:
            _IDX_DELTA.inc()

    def refresh(self) -> None:
        """Force a full rebuild (e.g. after mutating indexed ads in
        place, which the delta path cannot observe)."""
        self._dirty = True
        self._settle()

    def mark_dirty(self) -> None:
        """Flag the postings as untrusted; the next operation rebuilds."""
        self._dirty = True

    @staticmethod
    def _concrete(ad: ClassAd, attr: str):
        value = ad.evaluate(attr)
        if is_string(value) or is_number(value):
            return value
        return None

    @property
    def providers(self) -> List[ClassAd]:
        """The indexed ads in candidate (insertion) order."""
        cached = self._provider_list
        if cached is None:
            cached = self._provider_list = list(self._ads.values())
        return cached

    def __len__(self) -> int:
        return len(self._ads)

    def __contains__(self, ad: object) -> bool:
        return id(ad) in self._pid_of

    # -- pruning -----------------------------------------------------------

    def candidate_ids(self, predicates: Iterable[Predicate]) -> Set[int]:
        """Provider ids surviving every applicable predicate."""
        self._settle()
        surviving = set(self._ads)
        for pred in predicates:
            allowed = self._allowed_for(pred)
            if allowed is not None:
                surviving &= allowed
                if not surviving:
                    break
        return surviving

    def _allowed_for(self, pred: Predicate) -> Optional[Set[int]]:
        attr = pred.attr
        if pred.op == "==" and attr in self.equality_attrs:
            key = pred.value.lower() if isinstance(pred.value, str) else pred.value
            return self._eq[attr].get(key, set()) | self._eq_wild[attr]
        if pred.op in ("<", "<=", ">", ">=") and attr in self.range_attrs:
            if not is_number(pred.value):
                return None
            pairs = self._range[attr]
            bound = float(pred.value)
            if pred.op == ">":
                chosen = pairs[bisect.bisect_right(pairs, (bound, _PID_INF)):]
            elif pred.op == ">=":
                chosen = pairs[bisect.bisect_left(pairs, (bound,)):]
            elif pred.op == "<":
                chosen = pairs[: bisect.bisect_left(pairs, (bound,))]
            else:  # <=
                chosen = pairs[: bisect.bisect_right(pairs, (bound, _PID_INF))]
            return {pid for _, pid in chosen} | self._range_wild[attr]
        return None

    def candidates_for(
        self, customer: ClassAd, policy: MatchPolicy = DEFAULT_POLICY
    ) -> List[ClassAd]:
        """Providers that *might* match *customer* (sound superset).

        A customer without a constraint gets every provider.  Candidates
        come back in insertion order, matching a naive scan of the same
        ad collection.
        """
        self._settle()
        name = policy.constraint_of(customer)
        if name is None:
            if _metrics.enabled:
                _IDX_MISSES.inc()
                _IDX_CANDIDATES.inc(len(self._ads))
            return list(self.providers)
        predicates = extract_predicates(customer[name], customer)
        ids = self.candidate_ids(predicates)
        if _metrics.enabled:
            if predicates:
                _IDX_HITS.inc()
            else:
                _IDX_MISSES.inc()
            _IDX_CANDIDATES.inc(len(ids))
            _IDX_PRUNED.inc(len(self._ads) - len(ids))
        ads = self._ads
        return [ads[i] for i in sorted(ids)]


class MaintainedIndex:
    """A persistent, name-keyed :class:`ProviderIndex` for a long-lived
    matchmaker.

    The advertising protocol names ads; this wrapper tracks which names
    currently satisfy the membership *constraint* (the matchmaker's
    provider filter, ``Type == "Machine"`` by default) and keeps the
    underlying index in sync by deltas as ads are advertised, withdrawn,
    or expired — instead of re-selecting and re-indexing the whole
    collection every negotiation cycle.

    One ordering subtlety: the naive matcher scans ads in first-
    advertisement order, and a re-advertisement under an existing name
    keeps its original position (dict semantics).  ``replace`` preserves
    that.  The one case deltas cannot preserve — a known name that
    *becomes* a member (e.g. an ad re-advertised with a new Type) would
    append rather than keep its historical slot — makes
    :meth:`advertise` return False, telling the owner to discard this
    instance and rebuild in authoritative order.
    """

    def __init__(
        self,
        constraint: Optional[str] = 'Type == "Machine"',
        items: Iterable[Tuple[str, ClassAd]] = (),
        equality_attrs: Iterable[str] = DEFAULT_EQUALITY_ATTRS,
        range_attrs: Iterable[str] = DEFAULT_RANGE_ATTRS,
    ):
        from ..classads import parse

        self.constraint_source = constraint
        self._admit = compile_expr(parse(constraint)) if constraint else None
        self._members: Dict[str, ClassAd] = {}
        for name, ad in items:
            if self._belongs(ad):
                self._members[name] = ad
        self.index = ProviderIndex(
            list(self._members.values()), equality_attrs, range_attrs
        )

    def _belongs(self, ad: ClassAd) -> bool:
        return self._admit is None or is_true(self._admit.evaluate(ad))

    def advertise(self, name: str, ad: ClassAd, had_prior: bool = False) -> bool:
        """Fold one advertisement in; *had_prior* says whether the owner's
        ad collection already knew *name*.  Returns False when candidate
        order can no longer be preserved (caller should drop and lazily
        rebuild)."""
        old = self._members.get(name)
        belongs = self._belongs(ad)
        if old is not None:
            if belongs:
                self._members[name] = ad
                self.index.replace(old, ad)
            else:
                del self._members[name]
                self.index.remove(old)
            return True
        if belongs:
            if had_prior:
                # The name existed as a non-member; appending now would
                # put it after ads it historically precedes.
                return False
            self._members[name] = ad
            self.index.add(ad)
        return True

    def withdraw(self, name: str) -> None:
        old = self._members.pop(name, None)
        if old is not None:
            self.index.remove(old)

    def clear(self) -> None:
        self._members.clear()
        self.index = ProviderIndex(
            (), self.index.equality_attrs, self.index.range_attrs
        )

    def providers(self) -> List[ClassAd]:
        """Member ads in candidate (first-advertisement) order."""
        return self.index.providers

    def is_member(self, name: str) -> bool:
        return name in self._members

    def __len__(self) -> int:
        return len(self._members)
