"""Attribute indexing for matchmaking throughput — S7 in DESIGN.md.

The naive matchmaking algorithm evaluates every (customer, provider)
Constraint pair: O(N·M) full expression evaluations per negotiation
cycle.  The paper observes (Section 5) that real pools "exhibit a high
degree of regularity"; this module exploits *value regularity* directly
by pre-filtering providers on indexable predicates extracted from the
customer's Constraint.

Extraction is conservative and the filter is **sound**: a provider is
pruned only if some top-level conjunct of the customer's Constraint is
*provably* false against it.  Providers whose indexed attribute is not a
concrete constant (policy expressions, missing attributes) are never
pruned.  Soundness is enforced by a hypothesis property test comparing
indexed and naive match sets, and the speedup is measured by the E6
ablation benchmark.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..classads import ClassAd, is_true
from ..classads.ast import AttributeRef, BinaryOp, Expr, Literal
from ..classads.compile import evaluate
from ..classads.values import is_number, is_string
from ..obs import metrics as _metrics
from .match import DEFAULT_POLICY, MatchPolicy

# Observability: a "hit" is a lookup whose constraint yielded at least
# one indexable predicate (the index could prune); a "miss" fell back
# to the full provider list.  Pruned/candidate totals quantify how much
# work the index saves ahead of full constraint evaluation.
_IDX_HITS = _metrics.counter(
    "index.hits", "lookups where indexable predicates pruned the pool"
)
_IDX_MISSES = _metrics.counter(
    "index.misses", "lookups with no indexable predicate (full scan)"
)
_IDX_CANDIDATES = _metrics.counter(
    "index.candidates", "providers surviving index pre-filtering"
)
_IDX_PRUNED = _metrics.counter(
    "index.pruned", "providers eliminated by index pre-filtering"
)

#: Attributes indexed for equality by default: the discrete machine
#: descriptors every job constrains on.
DEFAULT_EQUALITY_ATTRS = ("type", "arch", "opsys", "state")

#: Attributes indexed for range predicates by default.
DEFAULT_RANGE_ATTRS = ("memory", "disk", "mips", "kflops")


@dataclass(frozen=True)
class Predicate:
    """One extracted conjunct: ``attr <op> value`` over the provider ad."""

    attr: str  # canonical (lowercase) provider attribute
    op: str  # one of == < <= > >=
    value: object  # concrete string or number


def conjuncts(expr: Expr) -> List[Expr]:
    """Split *expr* into its top-level ``&&`` conjuncts."""
    out: List[Expr] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, BinaryOp) and node.op == "&&":
            stack.append(node.right)
            stack.append(node.left)
        else:
            out.append(node)
    return out


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}


def _provider_side_ref(node: Expr, customer: ClassAd) -> Optional[str]:
    """If *node* references a provider attribute, return its canonical name.

    A reference targets the provider when it is ``other.X``, or a bare
    ``X`` that the customer ad does not itself define (bare names resolve
    self-first, then fall through to the other ad).
    """
    if not isinstance(node, AttributeRef):
        return None
    if node.scope == "other":
        return node.canonical
    if node.scope is None and node.canonical not in customer:
        return node.canonical
    return None


def _customer_constant(node: Expr, customer: ClassAd) -> Optional[object]:
    """Evaluate *node* using only the customer ad; None unless concrete.

    This is what lets Figure 2's ``other.Memory >= self.Memory`` become
    the predicate ``memory >= 31``.
    """
    if isinstance(node, AttributeRef) and _provider_side_ref(node, customer) is not None:
        return None  # references the provider — not a constant
    value = evaluate(node, customer)
    if is_string(value) or is_number(value):
        return value
    return None


def extract_predicates(
    constraint: Expr, customer: ClassAd
) -> List[Predicate]:
    """Indexable predicates implied by the customer's Constraint.

    Only comparisons at the top-level conjunction are considered; any
    predicate inside ``||``/``?:`` could be satisfied another way and is
    ignored (soundness).
    """
    predicates: List[Predicate] = []
    for node in conjuncts(constraint):
        if not isinstance(node, BinaryOp) or node.op not in _FLIP:
            continue
        attr = _provider_side_ref(node.left, customer)
        if attr is not None:
            value = _customer_constant(node.right, customer)
            if value is not None:
                predicates.append(Predicate(attr, node.op, value))
            continue
        attr = _provider_side_ref(node.right, customer)
        if attr is not None:
            value = _customer_constant(node.left, customer)
            if value is not None:
                predicates.append(Predicate(attr, _FLIP[node.op], value))
    return predicates


class ProviderIndex:
    """Pre-computed index over a fixed set of provider ads.

    Equality attributes map concrete values to provider-id sets; range
    attributes keep providers sorted by value for bisect pruning.
    Providers whose attribute does not evaluate to a concrete constant
    (without an ``other`` ad) join that attribute's wildcard set and are
    never pruned on it.
    """

    def __init__(
        self,
        providers: Sequence[ClassAd],
        equality_attrs: Iterable[str] = DEFAULT_EQUALITY_ATTRS,
        range_attrs: Iterable[str] = DEFAULT_RANGE_ATTRS,
    ):
        self.providers = list(providers)
        self.equality_attrs = {a.lower() for a in equality_attrs}
        self.range_attrs = {a.lower() for a in range_attrs}
        self._eq: Dict[str, Dict[object, Set[int]]] = {}
        self._eq_wild: Dict[str, Set[int]] = {}
        # attr -> (sorted values, provider ids in the same order)
        self._range: Dict[str, Tuple[List[float], List[int]]] = {}
        self._range_wild: Dict[str, Set[int]] = {}
        self._build()

    def _build(self) -> None:
        for attr in self.equality_attrs:
            table: Dict[object, Set[int]] = {}
            wild: Set[int] = set()
            for pid, ad in enumerate(self.providers):
                value = self._concrete(ad, attr)
                if value is None:
                    wild.add(pid)
                else:
                    key = value.lower() if isinstance(value, str) else value
                    table.setdefault(key, set()).add(pid)
            self._eq[attr] = table
            self._eq_wild[attr] = wild
        for attr in self.range_attrs:
            pairs: List[Tuple[float, int]] = []
            wild: Set[int] = set()
            for pid, ad in enumerate(self.providers):
                value = self._concrete(ad, attr)
                if is_number(value):
                    pairs.append((float(value), pid))
                else:
                    wild.add(pid)
            pairs.sort()
            self._range[attr] = ([v for v, _ in pairs], [p for _, p in pairs])
            self._range_wild[attr] = wild

    @staticmethod
    def _concrete(ad: ClassAd, attr: str):
        value = ad.evaluate(attr)
        if is_string(value) or is_number(value):
            return value
        return None

    def __len__(self) -> int:
        return len(self.providers)

    # -- pruning -----------------------------------------------------------

    def candidate_ids(self, predicates: Iterable[Predicate]) -> Set[int]:
        """Provider ids surviving every applicable predicate."""
        surviving = set(range(len(self.providers)))
        for pred in predicates:
            allowed = self._allowed_for(pred)
            if allowed is not None:
                surviving &= allowed
                if not surviving:
                    break
        return surviving

    def _allowed_for(self, pred: Predicate) -> Optional[Set[int]]:
        attr = pred.attr
        if pred.op == "==" and attr in self.equality_attrs:
            key = pred.value.lower() if isinstance(pred.value, str) else pred.value
            return self._eq[attr].get(key, set()) | self._eq_wild[attr]
        if pred.op in ("<", "<=", ">", ">=") and attr in self.range_attrs:
            if not is_number(pred.value):
                return None
            values, pids = self._range[attr]
            bound = float(pred.value)
            if pred.op == ">":
                lo = bisect.bisect_right(values, bound)
                chosen = pids[lo:]
            elif pred.op == ">=":
                lo = bisect.bisect_left(values, bound)
                chosen = pids[lo:]
            elif pred.op == "<":
                hi = bisect.bisect_left(values, bound)
                chosen = pids[:hi]
            else:  # <=
                hi = bisect.bisect_right(values, bound)
                chosen = pids[:hi]
            return set(chosen) | self._range_wild[attr]
        return None

    def candidates_for(
        self, customer: ClassAd, policy: MatchPolicy = DEFAULT_POLICY
    ) -> List[ClassAd]:
        """Providers that *might* match *customer* (sound superset).

        A customer without a constraint gets every provider.
        """
        name = policy.constraint_of(customer)
        if name is None:
            if _metrics.enabled:
                _IDX_MISSES.inc()
                _IDX_CANDIDATES.inc(len(self.providers))
            return list(self.providers)
        predicates = extract_predicates(customer[name], customer)
        ids = self.candidate_ids(predicates)
        if _metrics.enabled:
            if predicates:
                _IDX_HITS.inc()
            else:
                _IDX_MISSES.inc()
            _IDX_CANDIDATES.inc(len(ids))
            _IDX_PRUNED.inc(len(self.providers) - len(ids))
        return [self.providers[i] for i in sorted(ids)]
