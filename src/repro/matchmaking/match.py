"""The bilateral matching algorithm — S5 in DESIGN.md.

Section 3.1: "The classads ... assume a matchmaking algorithm that
considers a pair of ads to be incompatible unless their Constraint
expressions both evaluate to true.  The Rank attributes [are] then used
to choose among compatible matches: Among provider ads matching a given
customer ad, the matchmaker chooses the one with the highest Rank value
(non-integer values are treated as zero), breaking ties according to the
provider's Rank value."

The match is deliberately *symmetric* in the constraint check — the
framework's distinguishing feature is that "service providers [may also]
express constraints on the customers they are willing to serve".

``undefined``/``error``-valued Constraints fail the match ("the match
fails if the Constraint evaluates to undefined").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..classads import ClassAd, is_true, rank_value
from ..obs import event_log as _events


@dataclass(frozen=True)
class MatchPolicy:
    """Names of the protocol-defined attributes.

    The advertising protocol "attaches a meaning to some attributes"
    (Section 3.2); the paper's convention is ``Constraint``/``Rank``,
    while deployed Condor spells the former ``Requirements``.  We accept
    a primary name plus aliases so ads from either era match.
    """

    constraint_attrs: Tuple[str, ...] = ("Constraint", "Requirements")
    rank_attr: str = "Rank"

    def constraint_of(self, ad: ClassAd):
        """The first present constraint attribute's name, or None."""
        for name in self.constraint_attrs:
            if name in ad:
                return name
        return None


DEFAULT_POLICY = MatchPolicy()


def constraint_holds(ad: ClassAd, other: ClassAd, policy: MatchPolicy = DEFAULT_POLICY) -> bool:
    """True iff *ad*'s Constraint evaluates to ``true`` against *other*.

    An ad with no constraint attribute imposes no requirements and always
    accepts (an entity that publishes no Constraint is unconstrained).

    Evaluation goes through the closure-compiled path
    (:mod:`repro.classads.compile`): the Constraint compiles once per ad
    and every later candidate pairing reuses the cached closure.
    """
    name = policy.constraint_of(ad)
    if name is None:
        return True
    return is_true(ad.evaluate(name, other=other))


def constraints_satisfied(a: ClassAd, b: ClassAd, policy: MatchPolicy = DEFAULT_POLICY) -> bool:
    """The symmetric compatibility predicate: both Constraints hold."""
    return constraint_holds(a, b, policy) and constraint_holds(b, a, policy)


def evaluate_rank(ad: ClassAd, other: ClassAd, policy: MatchPolicy = DEFAULT_POLICY) -> float:
    """*ad*'s Rank of *other*, with non-numeric values mapped to 0."""
    return rank_value(ad.evaluate(policy.rank_attr, other=other))


@dataclass(frozen=True)
class Match:
    """The outcome of ranking one provider against one customer.

    ``customer_rank`` orders candidates (higher is better);
    ``provider_rank`` breaks ties; ``index`` is the provider's position
    in the input sequence and breaks remaining ties deterministically.
    """

    customer: ClassAd = field(compare=False)
    provider: ClassAd = field(compare=False)
    customer_rank: float
    provider_rank: float
    index: int

    @property
    def sort_key(self) -> Tuple[float, float, int]:
        # Negated index: earlier providers win final ties under max().
        return (self.customer_rank, self.provider_rank, -self.index)


def _emit_pair_reject(
    customer: ClassAd, provider: ClassAd, policy: MatchPolicy, context: str
) -> None:
    """Record a failed candidate pair in the forensic event log, with the
    same clause-level attribution the negotiation cycle captures.

    Callers gate on ``_events.enabled`` (hoisted to a local), so the hot
    path pays nothing while the log is off.  The import is deferred:
    :mod:`.diagnose` imports this module.
    """
    from .diagnose import attribute_failure

    attribution = attribute_failure(customer, provider, policy)
    fields = {"reason": "constraint", "context": context}
    if attribution is not None:
        fields.update(
            side=attribution.side,
            constraint=attribution.constraint,
            conjunct=attribution.conjunct,
            value=attribution.value,
        )
        if attribution.undefined_attrs:
            fields["undefined"] = list(attribution.undefined_attrs)
    job_id = customer.evaluate("JobId")
    name = provider.evaluate("Name")
    _events.emit(
        "match.reject",
        job=job_id if isinstance(job_id, int) else None,
        provider=name if isinstance(name, str) else None,
        **fields,
    )


def rank_candidates(
    customer: ClassAd,
    providers: Sequence[ClassAd],
    policy: MatchPolicy = DEFAULT_POLICY,
) -> List[Match]:
    """All compatible providers for *customer*, best first.

    Ordering: customer's Rank of the provider, then the provider's Rank
    of the customer (the paper's tie-break), then input order.
    """
    emit_events = _events.enabled
    matches = []
    for index, provider in enumerate(providers):
        if not constraints_satisfied(customer, provider, policy):
            if emit_events:
                _emit_pair_reject(customer, provider, policy, "rank_candidates")
            continue
        matches.append(
            Match(
                customer=customer,
                provider=provider,
                customer_rank=evaluate_rank(customer, provider, policy),
                provider_rank=evaluate_rank(provider, customer, policy),
                index=index,
            )
        )
    matches.sort(key=lambda m: m.sort_key, reverse=True)
    return matches


def best_match(
    customer: ClassAd,
    providers: Sequence[ClassAd],
    policy: MatchPolicy = DEFAULT_POLICY,
) -> Optional[Match]:
    """The single best compatible provider, or None.

    Unlike :func:`rank_candidates` this is a single pass without sorting
    — it is the negotiation-cycle hot path (experiment E6).
    """
    emit_events = _events.enabled
    best: Optional[Match] = None
    for index, provider in enumerate(providers):
        if not constraints_satisfied(customer, provider, policy):
            if emit_events:
                _emit_pair_reject(customer, provider, policy, "best_match")
            continue
        candidate = Match(
            customer=customer,
            provider=provider,
            customer_rank=evaluate_rank(customer, provider, policy),
            provider_rank=evaluate_rank(provider, customer, policy),
            index=index,
        )
        if best is None or candidate.sort_key > best.sort_key:
            best = candidate
    return best


def symmetric_match(a: ClassAd, b: ClassAd, policy: MatchPolicy = DEFAULT_POLICY) -> bool:
    """Alias for :func:`constraints_satisfied` (paper terminology)."""
    return constraints_satisfied(a, b, policy)


# -- provider classification ------------------------------------------------
#
# The negotiation cycle reads three facts off every provider ad before any
# pairing work: its availability class, its advertised CurrentRank, and its
# current occupant.  They live here (rather than in matchmaker.py) because
# they are properties of one ad under the match policy, not of the cycle —
# and the batched engine memoizes them once per provider per cycle.


def availability_of(provider: ClassAd) -> str:
    """Classify a provider: "available", "preemptable", or "unavailable".

    Providers that do not advertise State are assumed available — the
    matchmaker works with whatever schema the ads actually use
    (semi-structured model: no schema is *required*).  Only Claimed
    providers are preemption candidates; an Owner-state machine is its
    owner's and is skipped outright.
    """
    state = provider.evaluate("State")
    if not isinstance(state, str):
        return "available"
    lowered = state.lower()
    if lowered in ("unclaimed", "available", "idle"):
        return "available"
    if lowered == "claimed":
        return "preemptable"
    return "unavailable"


def current_rank_of(provider: ClassAd) -> float:
    """The provider's advertised rank of its current occupant.

    Condor startds advertise ``CurrentRank`` while claimed so the
    negotiator can decide preemption without the occupant's ad.
    """
    return rank_value(provider.evaluate("CurrentRank"))


def current_owner_of(provider: ClassAd) -> Optional[str]:
    """The submitter currently occupying the provider, if advertised."""
    owner = provider.evaluate("RemoteOwner")
    return owner if isinstance(owner, str) else None
