"""The matchmaking framework — S5–S8 and S20–S22 in DESIGN.md.

Core matching (Section 3): :func:`constraints_satisfied`,
:func:`rank_candidates`, :func:`best_match`, :class:`Matchmaker`,
:func:`negotiation_cycle`.

Fair matching (Section 4): :class:`Accountant`.

Throughput optimization: :class:`ProviderIndex`.

Section 5 future-work systems: :mod:`repro.matchmaking.gangmatch`
(co-allocation), :mod:`repro.matchmaking.aggregate` (group matching),
:mod:`repro.matchmaking.diagnose` (unsatisfiable-constraint analysis).
"""

from .accounting import MINIMUM_PRIORITY, Accountant, SubmitterRecord
from .aggregate import (
    AdAggregation,
    AdGroup,
    GroupMatchStats,
    group_best_match,
    group_match,
    group_signature,
)
from .diagnose import (
    ClauseReport,
    Diagnosis,
    FailureAttribution,
    ReverseReport,
    attribute_failure,
    diagnose,
    is_unsatisfiable,
    pool_attribute_census,
)
from .gangmatch import (
    GangMatch,
    GangRequest,
    GangStats,
    Port,
    gang_match,
    gang_match_all,
)
from .index import (
    DEFAULT_EQUALITY_ATTRS,
    DEFAULT_RANGE_ATTRS,
    MaintainedIndex,
    Predicate,
    ProviderIndex,
    conjuncts,
    extract_predicates,
)
from .match import (
    DEFAULT_POLICY,
    Match,
    MatchPolicy,
    availability_of,
    best_match,
    constraint_holds,
    constraints_satisfied,
    current_owner_of,
    current_rank_of,
    evaluate_rank,
    rank_candidates,
    symmetric_match,
)
from .matchmaker import (
    Assignment,
    CycleStats,
    Matchmaker,
    batching_enabled,
    negotiation_cycle,
    set_batching,
)
from .parallel import (
    CycleScoring,
    ScoringPool,
    ScoringPoolError,
    pair_threshold,
    parallelism_enabled,
    scoring_pool,
    scoring_workers,
    set_pair_threshold,
    set_parallelism,
    set_scoring_workers,
    shutdown_scoring_pool,
)
from .query import count_matching, one_way_match, select

__all__ = [
    "Accountant",
    "AdAggregation",
    "AdGroup",
    "Assignment",
    "ClauseReport",
    "Diagnosis",
    "FailureAttribution",
    "ReverseReport",
    "attribute_failure",
    "GangMatch",
    "GangRequest",
    "GangStats",
    "GroupMatchStats",
    "Port",
    "diagnose",
    "gang_match",
    "gang_match_all",
    "group_best_match",
    "group_match",
    "group_signature",
    "is_unsatisfiable",
    "pool_attribute_census",
    "CycleScoring",
    "CycleStats",
    "DEFAULT_EQUALITY_ATTRS",
    "DEFAULT_POLICY",
    "DEFAULT_RANGE_ATTRS",
    "MINIMUM_PRIORITY",
    "MaintainedIndex",
    "Match",
    "MatchPolicy",
    "Matchmaker",
    "Predicate",
    "ProviderIndex",
    "ScoringPool",
    "ScoringPoolError",
    "SubmitterRecord",
    "availability_of",
    "batching_enabled",
    "best_match",
    "current_owner_of",
    "current_rank_of",
    "set_batching",
    "conjuncts",
    "constraint_holds",
    "constraints_satisfied",
    "count_matching",
    "evaluate_rank",
    "extract_predicates",
    "negotiation_cycle",
    "one_way_match",
    "pair_threshold",
    "parallelism_enabled",
    "rank_candidates",
    "scoring_pool",
    "scoring_workers",
    "select",
    "set_pair_threshold",
    "set_parallelism",
    "set_scoring_workers",
    "shutdown_scoring_pool",
    "symmetric_match",
]
