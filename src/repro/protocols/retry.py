"""At-least-once delivery over the datagram network — protocol hardening.

Section 3.2's robustness claim is end-to-end: the matchmaker may hand
out stale hints and the network may eat messages, because the claiming
protocol re-validates everything at claim time.  That argument still
needs the *messages themselves* to eventually arrive, which deployed
Condor gets from TCP and periodic refresh.  Our network is datagram-like
(:mod:`repro.sim.network`), so the agents retransmit:

* :class:`BackoffPolicy` — capped exponential backoff with optional
  jitter drawn from a forked :class:`~repro.sim.rng.RngStream` (so
  retry timing never perturbs other streams' draws);
* :class:`Retransmitter` — blindly resends a message on that schedule
  until a ``stop_when`` predicate says the exchange resolved, the
  policy's try budget runs out, or retries are globally disabled.

Retransmits are *blind*: no trace events, no protocol counters — only
the ``retries.sent`` / ``retries.exhausted`` observability counters —
so duplicate wire messages never inflate protocol statistics.
Receivers de-duplicate (the other half of at-least-once): see the
replay cache in :mod:`repro.condor.machine` and the match/notice
de-duplication in :mod:`repro.condor.schedd`.

``REPRO_NO_RETRY=1`` (or :func:`set_retries`\\ ``(False)``) is the
ablation kill-switch: every retransmission and lease-loss recovery in
the codebase consults :func:`retries_enabled`, so a chaos run with the
switch thrown demonstrates what the hardening buys (stranded work).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Optional

from ..obs import metrics as _metrics

_RETRIES_SENT = _metrics.counter(
    "retries.sent", "protocol retransmissions actually sent, by message kind"
)
_RETRIES_EXHAUSTED = _metrics.counter(
    "retries.exhausted", "retransmit series that ran out of tries, by message kind"
)


def _env_disabled() -> bool:
    return os.environ.get("REPRO_NO_RETRY", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


_retries_enabled = not _env_disabled()


def retries_enabled() -> bool:
    """Whether protocol retransmission/recovery is active (see
    ``REPRO_NO_RETRY``)."""
    return _retries_enabled


def set_retries(enabled: Optional[bool]) -> None:
    """Override the kill-switch; ``None`` re-reads the environment."""
    global _retries_enabled
    _retries_enabled = (not _env_disabled()) if enabled is None else bool(enabled)


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff: delay(n) = min(cap, base * factor**n),
    plus up to ``jitter`` (a fraction of the delay) of random smear."""

    base: float = 5.0
    factor: float = 2.0
    cap: float = 60.0
    jitter: float = 0.2
    #: Retransmissions *beyond* the first send.
    max_tries: int = 3

    def delay(self, attempt: int, rng=None) -> float:
        raw = min(self.cap, self.base * self.factor**attempt)
        if self.jitter and rng is not None:
            raw += rng.uniform(0.0, self.jitter * raw)
        return raw


DEFAULT_POLICY = BackoffPolicy()


class Retransmitter:
    """Resends messages on a :class:`BackoffPolicy` schedule.

    ``send`` transmits once unconditionally, then (while
    :func:`retries_enabled`) arms blind retransmissions that stop as
    soon as ``stop_when()`` returns true — e.g. "the claim is no longer
    pending" — or the try budget is spent.
    """

    def __init__(self, sim, net, rng=None, kind: str = "message", policy: BackoffPolicy = DEFAULT_POLICY):
        self.sim = sim
        self.net = net
        self.rng = rng
        self.kind = kind
        self.policy = policy

    def send(
        self,
        message,
        stop_when: Optional[Callable[[], bool]] = None,
        policy: Optional[BackoffPolicy] = None,
    ) -> None:
        self.net.send(message)
        pol = policy if policy is not None else self.policy
        if retries_enabled() and pol.max_tries > 0:
            self._arm((message, stop_when, pol, 0))

    # The retransmit state rides the kernel's argument slot as one
    # (message, stop_when, policy, attempt) tuple — no closure per
    # copy/attempt (bench_engine.py's anatomy check asserts this).

    def _arm(self, state) -> None:
        pol = state[2]
        self.sim.schedule(pol.delay(state[3], self.rng), self._fire, state)

    def _fire(self, state) -> None:
        message, stop_when, pol, attempt = state
        if not retries_enabled():
            return
        if stop_when is not None and stop_when():
            return
        _RETRIES_SENT.inc(kind=self.kind)
        self.net.send(message)
        if attempt + 1 >= pol.max_tries:
            _RETRIES_EXHAUSTED.inc(kind=self.kind)
            return
        self._arm((message, stop_when, pol, attempt + 1))
