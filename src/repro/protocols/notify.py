"""The matchmaking (notification) protocol — S10 in DESIGN.md.

Section 3.2: "After the matching phase, the matchmaker invokes a
matchmaking protocol to notify the two parties that were matched and
sends them the matching ads.  The matchmaking protocol could also
include the generation and hand-off of a session key for authentication
and security purposes."

This module turns an :class:`~repro.matchmaking.matchmaker.Assignment`
into the pair of :class:`~repro.protocols.messages.MatchNotification`
messages of Figure 3's step 3.  Contact addresses and tickets are read
from the matched ads per the Section 4 conventions.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

from ..classads import ClassAd
from .messages import MatchNotification, next_message_id
from .tickets import Ticket


def contact_address(ad: ClassAd) -> Optional[str]:
    """The advertised contact address, or None."""
    value = ad.evaluate("ContactAddress")
    return value if isinstance(value, str) else None


def ticket_from_ad(ad: ClassAd) -> Optional[Ticket]:
    """Reconstruct the authorization ticket embedded in a provider ad.

    The RA embeds its ticket as a nested record ``AuthTicket = [ Issuer
    = ...; Serial = ...; Token = ... ]``; the matchmaker forwards it
    opaquely to the customer (it never inspects or stores it — the
    end-to-end argument).
    """
    record = ad.evaluate("AuthTicket")
    if not isinstance(record, ClassAd):
        return None
    issuer = record.evaluate("Issuer")
    serial = record.evaluate("Serial")
    token = record.evaluate("Token")
    if not (isinstance(issuer, str) and isinstance(serial, int) and isinstance(token, str)):
        return None
    return Ticket(issuer=issuer, serial=serial, token=token)


def embed_ticket(ad: ClassAd, ticket: Ticket) -> None:
    """Embed *ticket* into *ad* as the ``AuthTicket`` record."""
    ad["AuthTicket"] = {
        "Issuer": ticket.issuer,
        "Serial": ticket.serial,
        "Token": ticket.token,
    }


def make_session_key(match_id: int, customer_ad: ClassAd, provider_ad: ClassAd) -> bytes:
    """Derive a per-match session key for the optional handshake.

    Deterministic over the match id and both parties' names so the
    simulation reproduces bit-for-bit; unguessable to third parties in
    the threat model the paper sketches (the matchmaker is trusted).
    """
    material = "|".join(
        [
            str(match_id),
            str(customer_ad.evaluate("Owner")),
            str(provider_ad.evaluate("Name")),
        ]
    )
    return hashlib.sha256(material.encode()).digest()


def build_notifications(
    matchmaker_address: str,
    customer_ad: ClassAd,
    provider_ad: ClassAd,
    with_session_key: bool = False,
) -> Tuple[MatchNotification, MatchNotification]:
    """The (to-customer, to-provider) notification pair for one match.

    Raises ValueError when either ad lacks a contact address — the
    advertising protocol requires one, so the matchmaker should never
    have admitted such an ad.
    """
    customer_addr = contact_address(customer_ad)
    provider_addr = contact_address(provider_ad)
    if customer_addr is None or provider_addr is None:
        raise ValueError("matched ad lacks a ContactAddress")
    match_id = next_message_id()
    ticket = ticket_from_ad(provider_ad)
    key = make_session_key(match_id, customer_ad, provider_ad) if with_session_key else None
    to_customer = MatchNotification(
        sender=matchmaker_address,
        recipient=customer_addr,
        peer_address=provider_addr,
        peer_ad=provider_ad,
        my_ad=customer_ad,
        ticket=ticket,
        session_key=key,
        match_id=match_id,
    )
    to_provider = MatchNotification(
        sender=matchmaker_address,
        recipient=provider_addr,
        peer_address=customer_addr,
        peer_ad=customer_ad,
        my_ad=provider_ad,
        ticket=None,  # the provider already owns its ticket
        session_key=key,
        match_id=match_id,
    )
    return to_customer, to_provider
