"""The matchmaking framework's protocols — S9–S11 in DESIGN.md.

Section 3 decomposes the framework into five components; three of them
are protocols and live here:

* :mod:`repro.protocols.advertising` — component 2, what a classad must
  contain to be admitted and how the matchmaker retains it (soft state);
* :mod:`repro.protocols.notify` — component 4, how matched parties are
  notified and what they are given (each other's ads, contact addresses,
  the authorization ticket, optionally a session key);
* :mod:`repro.protocols.claiming` — component 5, how the matched parties
  establish the working relationship end-to-end (ticket check +
  constraint re-verification against current state).

:mod:`repro.protocols.messages` defines the wire messages of Figure 3,
and :mod:`repro.protocols.tickets` the authorization-ticket machinery.
"""

from .advertising import (
    DEFAULT_AD_LIFETIME,
    DEFAULT_ADVERTISING_INTERVAL,
    VOLATILE_JOB_ATTRS,
    VOLATILE_MACHINE_ATTRS,
    AdStore,
    StoredAd,
    ValidationResult,
    refresh_enabled,
    set_refresh,
    stable_equal,
    validate_ad,
    volatile_values,
)
from .claiming import ClaimDecision, ClaimVerdict, respond_to_claim, verify_claim
from .messages import (
    Advertisement,
    ClaimRequest,
    ClaimResponse,
    EvictionNotice,
    MatchNotification,
    Message,
    Refresh,
    ReleaseNotice,
    ResendRequest,
    Withdrawal,
    next_message_id,
    reset_message_ids,
)
from .notify import (
    build_notifications,
    contact_address,
    embed_ticket,
    make_session_key,
    ticket_from_ad,
)
from .retry import (
    BackoffPolicy,
    Retransmitter,
    retries_enabled,
    set_retries,
)
from .tickets import ChallengeResponse, Ticket, TicketAuthority

__all__ = [
    "BackoffPolicy",
    "Retransmitter",
    "retries_enabled",
    "set_retries",
    "AdStore",
    "Advertisement",
    "ChallengeResponse",
    "ClaimDecision",
    "ClaimRequest",
    "ClaimResponse",
    "ClaimVerdict",
    "DEFAULT_AD_LIFETIME",
    "DEFAULT_ADVERTISING_INTERVAL",
    "EvictionNotice",
    "MatchNotification",
    "Message",
    "Refresh",
    "ReleaseNotice",
    "ResendRequest",
    "StoredAd",
    "Ticket",
    "TicketAuthority",
    "VOLATILE_JOB_ATTRS",
    "VOLATILE_MACHINE_ATTRS",
    "ValidationResult",
    "Withdrawal",
    "build_notifications",
    "contact_address",
    "embed_ticket",
    "make_session_key",
    "next_message_id",
    "refresh_enabled",
    "reset_message_ids",
    "respond_to_claim",
    "set_refresh",
    "stable_equal",
    "ticket_from_ad",
    "validate_ad",
    "verify_claim",
    "volatile_values",
]
