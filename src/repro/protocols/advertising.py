"""The advertising protocol — S9 in DESIGN.md.

Section 3: the advertising protocol "defines basic conventions regarding
what a matchmaker expects to find in a classad if the ad is to be
included in the matchmaking process, and how the matchmaker expects to
receive the ad".  Section 4 gives Condor's conventions: "every classad
should include expressions named Constraint and Rank ... the advertising
parties [must] include contact addresses with their ads", and an RA may
include an authorization ticket.

This module provides:

* :func:`validate_ad` — the convention check a matchmaker applies before
  admitting an ad;
* :class:`AdStore` — the soft-state ad collection: ads carry lifetimes
  and expire unless refreshed, which is precisely why a crashed
  matchmaker recovers by doing nothing (experiment E1) and why stale ads
  are bounded by the advertising period (experiment E2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..classads import ClassAd
from ..obs import metrics as _metrics

_ADS_STALE_DROPPED = _metrics.counter(
    "adstore.stale_dropped", "out-of-order advertisements dropped by sequence"
)
_ADS_EXPIRED = _metrics.counter(
    "adstore.expired", "ads reaped past their advertised lifetime"
)
_ADS_REFRESHED = _metrics.counter(
    "adstore.refreshed", "advertisements admitted (insert or refresh)"
)

#: Condor's default advertising interval (seconds): RAs/CAs re-send their
#: ads on this period, and the matchmaker keeps them ~3 periods.
DEFAULT_ADVERTISING_INTERVAL = 300.0
DEFAULT_AD_LIFETIME = 3 * DEFAULT_ADVERTISING_INTERVAL


@dataclass(frozen=True)
class ValidationResult:
    ok: bool
    problems: Tuple[str, ...] = ()


def validate_ad(
    ad: ClassAd,
    require_constraint: bool = True,
    require_contact: bool = True,
) -> ValidationResult:
    """Check *ad* against the advertising protocol conventions.

    The check is deliberately shallow — the semi-structured model means
    the matchmaker imposes *conventions*, not a schema.  Missing Rank is
    tolerated (it defaults to 0 in ranking); a missing Constraint or
    contact address makes the ad unusable for two-way matchmaking.
    """
    problems: List[str] = []
    if require_constraint and ("Constraint" not in ad and "Requirements" not in ad):
        problems.append("no Constraint (or Requirements) attribute")
    if require_contact and "ContactAddress" not in ad:
        problems.append("no ContactAddress attribute")
    if "Type" not in ad:
        problems.append("no Type attribute")
    return ValidationResult(ok=not problems, problems=tuple(problems))


@dataclass
class StoredAd:
    """An admitted advertisement plus its soft-state bookkeeping."""

    name: str
    ad: ClassAd
    received_at: float
    expires_at: float
    sequence: int


class AdStore:
    """Soft-state advertisement store keyed by advertised name.

    Semantics:

    * re-advertisement under the same name replaces the stored ad and
      renews its lifetime;
    * out-of-order delivery is tolerated: an advertisement with a
      sequence number older than the stored one is ignored (the network
      substrate can reorder messages);
    * ads past their lifetime are reaped by :meth:`expire`.
    """

    def __init__(self):
        self._store: Dict[str, StoredAd] = {}

    def insert(
        self,
        name: str,
        ad: ClassAd,
        now: float,
        lifetime: float = DEFAULT_AD_LIFETIME,
        sequence: int = 0,
    ) -> bool:
        """Admit/refresh an ad; False when dropped as out-of-order."""
        existing = self._store.get(name)
        if existing is not None and sequence < existing.sequence:
            _ADS_STALE_DROPPED.inc()
            return False
        _ADS_REFRESHED.inc()
        self._store[name] = StoredAd(
            name=name,
            ad=ad,
            received_at=now,
            expires_at=now + lifetime,
            sequence=sequence,
        )
        return True

    def remove(self, name: str) -> bool:
        return self._store.pop(name, None) is not None

    def clear(self) -> None:
        self._store.clear()

    def expire(self, now: float) -> List[str]:
        """Reap expired ads; returns the reaped names."""
        dead = [name for name, rec in self._store.items() if rec.expires_at <= now]
        for name in dead:
            del self._store[name]
        if dead:
            _ADS_EXPIRED.inc(len(dead))
        return dead

    def get(self, name: str) -> Optional[ClassAd]:
        rec = self._store.get(name)
        return rec.ad if rec is not None else None

    def age_of(self, name: str, now: float) -> Optional[float]:
        """Seconds since the stored ad was received (its staleness)."""
        rec = self._store.get(name)
        return (now - rec.received_at) if rec is not None else None

    def ads(self) -> List[ClassAd]:
        return [rec.ad for rec in self._store.values()]

    def records(self) -> List[StoredAd]:
        return list(self._store.values())

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, name: str) -> bool:
        return name in self._store

    def __iter__(self) -> Iterator[str]:
        return iter(self._store)
