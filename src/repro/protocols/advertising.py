"""The advertising protocol — S9 in DESIGN.md.

Section 3: the advertising protocol "defines basic conventions regarding
what a matchmaker expects to find in a classad if the ad is to be
included in the matchmaking process, and how the matchmaker expects to
receive the ad".  Section 4 gives Condor's conventions: "every classad
should include expressions named Constraint and Rank ... the advertising
parties [must] include contact addresses with their ads", and an RA may
include an authorization ticket.

This module provides:

* :func:`validate_ad` — the convention check a matchmaker applies before
  admitting an ad;
* :class:`AdStore` — the soft-state ad collection: ads carry lifetimes
  and expire unless refreshed, which is precisely why a crashed
  matchmaker recovers by doing nothing (experiment E1) and why stale ads
  are bounded by the advertising period (experiment E2);
* the **refresh fast path** conventions (PR 8): which attributes are
  *volatile* (clock-derived, changing every period by construction, so
  they ride the compact :class:`~repro.protocols.messages.Refresh`
  instead of defeating the fingerprint), the sender-side change
  detector (:func:`stable_equal` / :func:`volatile_values`), and the
  ``REPRO_NO_REFRESH=1`` / :func:`set_refresh` kill-switch that forces
  every advertisement back onto the always-full-ad path.

Expiry is served by a lazily-invalidated heap: every admit/renew pushes
``(expires_at, name)`` and :meth:`AdStore.expire` pops entries that are
due, discarding entries whose record has since been replaced, renewed,
or removed — O(k log n) per sweep instead of the old O(n) scan.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..classads import ClassAd
from ..classads.ast import Literal
from ..classads.fingerprint import payload_equal
from ..obs import metrics as _metrics

_ADS_STALE_DROPPED = _metrics.counter(
    "adstore.stale_dropped", "out-of-order advertisements dropped by sequence"
)
_ADS_EXPIRED = _metrics.counter(
    "adstore.expired", "ads reaped past their advertised lifetime"
)
_ADS_REFRESHED = _metrics.counter(
    "adstore.refreshed", "advertisements admitted (insert or refresh)"
)

#: Sender-side fast-path accounting (machine and job agents share these).
ADV_REFRESHES = _metrics.counter(
    "advertising.refreshes", "compact Refresh messages sent in place of full ads"
)
ADV_FULL_ADS = _metrics.counter(
    "advertising.full_ads",
    "full advertisements sent (first ad, content change, or resync)",
)

#: Condor's default advertising interval (seconds): RAs/CAs re-send their
#: ads on this period, and the matchmaker keeps them ~3 periods.
DEFAULT_ADVERTISING_INTERVAL = 300.0
DEFAULT_AD_LIFETIME = 3 * DEFAULT_ADVERTISING_INTERVAL

#: Volatile attributes of a machine ad: derived from the clock or the
#: owner's activity, they change every advertising period by
#: construction, so the fingerprint excludes their values and the
#: Refresh message carries them explicitly.
VOLATILE_MACHINE_ATTRS: FrozenSet[str] = frozenset(
    {"loadavg", "keyboardidle", "daytime"}
)
#: Volatile attributes of a job request ad (the advertisement stamp).
VOLATILE_JOB_ATTRS: FrozenSet[str] = frozenset({"advertisedat"})


# -- the refresh fast-path kill-switch (house convention) ----------------


def _refresh_env_disabled() -> bool:
    return os.environ.get("REPRO_NO_REFRESH", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


_refresh_enabled = not _refresh_env_disabled()


def refresh_enabled() -> bool:
    """Whether the fingerprinted refresh fast path is active (see
    ``REPRO_NO_REFRESH``)."""
    return _refresh_enabled


def set_refresh(enabled: Optional[bool]) -> None:
    """Override the kill-switch; ``None`` re-reads the environment."""
    global _refresh_enabled
    _refresh_enabled = (
        (not _refresh_env_disabled()) if enabled is None else bool(enabled)
    )


# -- sender-side change detection ----------------------------------------


def volatile_values(
    ad: ClassAd, volatile: FrozenSet[str]
) -> Optional[Tuple[Tuple[str, object], ...]]:
    """The ``(name, value)`` pairs a Refresh must carry for *ad*.

    Returns the volatile attributes present in *ad*, in insertion order
    with original spelling, or ``None`` when any of them is bound to
    something other than a plain scalar literal — in which case the
    sender must fall back to a full advertisement (the Refresh wire
    format only carries scalars).
    """
    out = []
    for name, expr in ad.items():
        if name.lower() in volatile:
            if not isinstance(expr, Literal) or not isinstance(
                expr.value, (bool, int, float, str)
            ):
                return None
            out.append((name, expr.value))
    return tuple(out)


def stable_equal(ad: ClassAd, last: ClassAd, volatile: FrozenSet[str]) -> bool:
    """Whether *ad* matches *last* on every non-volatile attribute.

    The comparison is exactly as fine as the fingerprint (payload-level,
    so literal types count); attribute *presence* still matters for
    volatile names — an ad gaining or losing a volatile attribute is a
    change.  True means the previously sent fingerprint still describes
    *ad*'s stable part, so a Refresh suffices.
    """
    fields, last_fields = ad._fields, last._fields
    if fields.keys() != last_fields.keys():
        return False
    for key, expr in fields.items():
        if key in volatile:
            continue
        if not payload_equal(expr, last_fields[key]):
            return False
    return True


@dataclass(frozen=True)
class ValidationResult:
    ok: bool
    problems: Tuple[str, ...] = ()


def validate_ad(
    ad: ClassAd,
    require_constraint: bool = True,
    require_contact: bool = True,
) -> ValidationResult:
    """Check *ad* against the advertising protocol conventions.

    The check is deliberately shallow — the semi-structured model means
    the matchmaker imposes *conventions*, not a schema.  Missing Rank is
    tolerated (it defaults to 0 in ranking); a missing Constraint or
    contact address makes the ad unusable for two-way matchmaking.
    """
    problems: List[str] = []
    if require_constraint and ("Constraint" not in ad and "Requirements" not in ad):
        problems.append("no Constraint (or Requirements) attribute")
    if require_contact and "ContactAddress" not in ad:
        problems.append("no ContactAddress attribute")
    if "Type" not in ad:
        problems.append("no Type attribute")
    return ValidationResult(ok=not problems, problems=tuple(problems))


@dataclass
class StoredAd:
    """An admitted advertisement plus its soft-state bookkeeping.

    ``fingerprint`` is the sender-computed stable-content hash carried
    by the full advertisement (``None`` when the fast path is off); a
    later Refresh is honoured only when it presents the same hash.
    """

    name: str
    ad: ClassAd
    received_at: float
    expires_at: float
    sequence: int
    fingerprint: Optional[str] = None


class AdStore:
    """Soft-state advertisement store keyed by advertised name.

    Semantics:

    * re-advertisement under the same name replaces the stored ad and
      renews its lifetime;
    * a :meth:`touch` (refresh fast path) renews the lifetime of the
      stored ad *in place* without replacing it;
    * out-of-order delivery is tolerated: an advertisement with a
      sequence number older than the stored one is ignored (the network
      substrate can reorder messages);
    * a withdrawal may carry the sender's sequence counter, which is
      kept as a *tombstone*: late-arriving copies sent before the
      withdrawal (sequence <= tombstone) are dropped as stale instead of
      resurrecting the withdrawn ad — this keeps the refresh fast path
      and the full-ad path byte-identical under reordering;
    * ads past their lifetime are reaped by :meth:`expire`, which pops a
      lazily-invalidated expiry heap instead of scanning the store.
    """

    def __init__(self):
        self._store: Dict[str, StoredAd] = {}
        #: (expires_at, name) entries; an entry is live iff the stored
        #: record still carries exactly that expiry.
        self._expiry_heap: List[Tuple[float, str]] = []
        #: name -> withdrawing sender's sequence counter at removal time.
        self._tombstones: Dict[str, int] = {}

    def _push_expiry(self, expires_at: float, name: str) -> None:
        heap = self._expiry_heap
        heapq.heappush(heap, (expires_at, name))
        if len(heap) > 4 * len(self._store) + 64:
            # Too many invalidated entries (renew-heavy workload with no
            # expiry sweeps): rebuild from the live records.
            heap = [(rec.expires_at, rec.name) for rec in self._store.values()]
            heapq.heapify(heap)
            self._expiry_heap = heap

    def insert(
        self,
        name: str,
        ad: ClassAd,
        now: float,
        lifetime: float = DEFAULT_AD_LIFETIME,
        sequence: int = 0,
        fingerprint: Optional[str] = None,
    ) -> bool:
        """Admit/refresh an ad; False when dropped as out-of-order."""
        existing = self._store.get(name)
        if existing is not None and sequence < existing.sequence:
            _ADS_STALE_DROPPED.inc()
            return False
        if self.withdrawn_after(name, sequence):
            _ADS_STALE_DROPPED.inc()
            return False
        self._tombstones.pop(name, None)
        _ADS_REFRESHED.inc()
        expires_at = now + lifetime
        self._store[name] = StoredAd(
            name=name,
            ad=ad,
            received_at=now,
            expires_at=expires_at,
            sequence=sequence,
            fingerprint=fingerprint,
        )
        self._push_expiry(expires_at, name)
        return True

    def touch(
        self,
        name: str,
        now: float,
        lifetime: float = DEFAULT_AD_LIFETIME,
        sequence: int = 0,
    ) -> Optional[bool]:
        """Renew the lease of the stored ad *name* without replacing it.

        Returns True on renewal, False when dropped as out-of-order
        (mirroring :meth:`insert`'s sequence rule), and None when no ad
        is stored under *name* (the caller should request a resend).
        """
        if self.withdrawn_after(name, sequence):
            _ADS_STALE_DROPPED.inc()
            return False
        rec = self._store.get(name)
        if rec is None:
            return None
        if sequence < rec.sequence:
            _ADS_STALE_DROPPED.inc()
            return False
        _ADS_REFRESHED.inc()
        rec.received_at = now
        rec.expires_at = now + lifetime
        rec.sequence = sequence
        self._push_expiry(rec.expires_at, name)
        return True

    def withdrawn_after(self, name: str, sequence: int) -> bool:
        """True when *name* was withdrawn by a message that postdates
        *sequence* — i.e. this is a late copy of a dead ad."""
        tombstone = self._tombstones.get(name)
        return tombstone is not None and sequence <= tombstone

    def remove(self, name: str, tombstone: Optional[int] = None) -> bool:
        """Drop *name*; remember *tombstone* (the withdrawing sender's
        sequence counter) even when nothing was stored, so an ad still in
        flight cannot resurrect after its own withdrawal."""
        if tombstone is not None:
            prior = self._tombstones.get(name)
            if prior is None or tombstone > prior:
                self._tombstones[name] = tombstone
        return self._store.pop(name, None) is not None

    def clear(self) -> None:
        self._store.clear()
        self._expiry_heap.clear()
        self._tombstones.clear()

    def expire(self, now: float) -> List[str]:
        """Reap expired ads; returns the reaped names (expiry order)."""
        dead: List[str] = []
        heap = self._expiry_heap
        store = self._store
        while heap and heap[0][0] <= now:
            expires_at, name = heapq.heappop(heap)
            rec = store.get(name)
            if rec is None or rec.expires_at != expires_at:
                continue  # replaced, renewed, or removed since: stale entry
            del store[name]
            dead.append(name)
        if dead:
            _ADS_EXPIRED.inc(len(dead))
        return dead

    def get(self, name: str) -> Optional[ClassAd]:
        rec = self._store.get(name)
        return rec.ad if rec is not None else None

    def record(self, name: str) -> Optional[StoredAd]:
        """The full stored record for *name* (refresh path bookkeeping)."""
        return self._store.get(name)

    def age_of(self, name: str, now: float) -> Optional[float]:
        """Seconds since the stored ad was received (its staleness)."""
        rec = self._store.get(name)
        return (now - rec.received_at) if rec is not None else None

    def ads(self) -> List[ClassAd]:
        return [rec.ad for rec in self._store.values()]

    def records(self) -> List[StoredAd]:
        return list(self._store.values())

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, name: str) -> bool:
        return name in self._store

    def __iter__(self) -> Iterator[str]:
        return iter(self._store)
