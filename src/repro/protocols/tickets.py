"""Authorization tickets for the claiming protocol — part of S10/S11.

Section 4: the advertising protocol "allows an RA to include an
authorization ticket with its ad"; the pool manager "gives the CA the
authorization ticket supplied by the RA", and "the RA accepts the
resource request only if the ticket matches the one that it gave the
pool manager".

Section 3.2 also notes the matchmaking protocol "could include the
generation and hand-off of a session key for authentication", and that
"a challenge-response handshake can be added to the claiming protocol at
very little cost".  We implement both with stdlib HMAC — a faithful
stand-in for the paper-era crypto (the *protocol steps* are what the
reproduction must preserve; see DESIGN.md substitution table).
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Ticket:
    """An opaque authorization ticket minted by a resource-owner agent.

    ``issuer`` names the RA, ``serial`` distinguishes successive tickets
    from the same RA (a new ticket invalidates older ones), and ``token``
    is the unguessable part.
    """

    issuer: str
    serial: int
    token: str

    def matches(self, other: Optional["Ticket"]) -> bool:
        """Constant-time ticket comparison (the RA's claim check)."""
        if other is None:
            return False
        return (
            self.issuer == other.issuer
            and self.serial == other.serial
            and hmac.compare_digest(self.token, other.token)
        )


class TicketAuthority:
    """Mints and validates tickets for one resource-owner agent.

    Deterministic given (secret, issuer): tokens are HMAC-SHA256 over the
    serial number, so the simulator stays reproducible while tokens remain
    unforgeable without the RA's secret.
    """

    def __init__(self, issuer: str, secret: bytes):
        self.issuer = issuer
        self._secret = secret
        self._serial = 0
        self._current: Optional[Ticket] = None

    def mint(self) -> Ticket:
        """Issue a fresh ticket, invalidating any previous one."""
        self._serial += 1
        token = hmac.new(
            self._secret, f"{self.issuer}:{self._serial}".encode(), hashlib.sha256
        ).hexdigest()
        self._current = Ticket(self.issuer, self._serial, token)
        return self._current

    @property
    def current(self) -> Optional[Ticket]:
        return self._current

    def validate(self, presented: Optional[Ticket]) -> bool:
        """True iff *presented* is the currently valid ticket."""
        return self._current is not None and self._current.matches(presented)

    def revoke(self) -> None:
        """Invalidate the outstanding ticket (e.g. owner reclaimed machine)."""
        self._current = None


class ChallengeResponse:
    """The optional challenge-response handshake of Section 3.2.

    Both parties share a session key (handed off by the matchmaker in the
    match notification).  The verifier issues a nonce challenge; the
    prover answers with HMAC(key, nonce).
    """

    def __init__(self, session_key: bytes):
        self._key = session_key

    def respond(self, challenge: bytes) -> str:
        """The prover's answer to *challenge*."""
        return hmac.new(self._key, challenge, hashlib.sha256).hexdigest()

    def verify(self, challenge: bytes, response: str) -> bool:
        """The verifier's check of *response* against its own computation."""
        expected = self.respond(challenge)
        return hmac.compare_digest(expected, response)
