"""The claiming protocol — S11 in DESIGN.md.

Section 4: "The RA accepts the resource request only if the ticket
matches the one that it gave the pool manager, and the request matches
the RA's constraints with respect to the updated state of the request
and resource, which may have changed since the last advertisement."

This is the heart of the weak-consistency argument (Section 3.2):
matches are made against possibly-stale ads, and correctness is restored
end-to-end at claim time, by the principals themselves.  The functions
here are pure decision procedures used by both the in-memory examples
and the simulated agents.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..classads import ClassAd
from ..matchmaking.match import DEFAULT_POLICY, MatchPolicy, constraints_satisfied
from ..obs import event_log as _events, metrics as _metrics, tracer as _tracer
from .messages import ClaimRequest, ClaimResponse
from .tickets import Ticket, TicketAuthority

_CLAIM_VERDICTS = _metrics.counter(
    "claims.verified", "RA-side claim verifications, by verdict"
)


class ClaimVerdict(Enum):
    """Why a claim was accepted or rejected (E2 aggregates rejections)."""

    ACCEPTED = "accepted"
    BAD_TICKET = "bad-ticket"
    CONSTRAINT_VIOLATED = "constraint-violated"
    ALREADY_CLAIMED = "already-claimed"
    BAD_HANDSHAKE = "bad-handshake"


@dataclass(frozen=True)
class ClaimDecision:
    verdict: ClaimVerdict

    @property
    def accepted(self) -> bool:
        return self.verdict is ClaimVerdict.ACCEPTED


def verify_claim(
    request_ad: ClassAd,
    current_resource_ad: ClassAd,
    presented_ticket: Optional[Ticket],
    authority: Optional[TicketAuthority],
    already_claimed: bool = False,
    policy: MatchPolicy = DEFAULT_POLICY,
) -> ClaimDecision:
    """The RA's claim check, exactly in the paper's order.

    1. The ticket must match the one handed to the pool manager (skipped
       when the RA never issued one — ticketless pools are legal).
    2. Both parties' constraints must hold against *current* state: the
       RA re-evaluates with its up-to-date resource ad and the customer's
       up-to-date request ad, catching anything that changed since the
       stale advertisements matched.

    The re-check runs through the compiled-constraint path
    (:mod:`repro.classads.compile`): when the ads are unchanged since
    match time the closures are already cached, and a state update
    invalidates exactly the rebound attribute's code.
    """
    with _tracer.span("claim") as span:
        if already_claimed:
            verdict = ClaimVerdict.ALREADY_CLAIMED
        elif authority is not None and not authority.validate(presented_ticket):
            verdict = ClaimVerdict.BAD_TICKET
        elif not constraints_satisfied(request_ad, current_resource_ad, policy):
            verdict = ClaimVerdict.CONSTRAINT_VIOLATED
        else:
            verdict = ClaimVerdict.ACCEPTED
        span.annotate(verdict=verdict.value)
    _CLAIM_VERDICTS.inc(verdict=verdict.value)
    if _events.enabled:
        job_id = request_ad.evaluate("JobId")
        owner = request_ad.evaluate("Owner")
        resource = current_resource_ad.evaluate("Name")
        fields = {
            "verdict": verdict.value,
            "job": job_id if isinstance(job_id, int) else None,
            "owner": owner if isinstance(owner, str) else None,
            "provider": resource if isinstance(resource, str) else None,
        }
        if verdict is ClaimVerdict.CONSTRAINT_VIOLATED:
            # The claim-time re-check failed against *current* state:
            # attribute it exactly like a match-time rejection.
            from ..matchmaking.diagnose import attribute_failure

            attribution = attribute_failure(request_ad, current_resource_ad, policy)
            if attribution is not None:
                fields.update(
                    side=attribution.side,
                    conjunct=attribution.conjunct,
                    value=attribution.value,
                )
        _events.emit("claim.verdict", **fields)
    return ClaimDecision(verdict)


def respond_to_claim(
    request: ClaimRequest,
    provider_address: str,
    current_resource_ad: ClassAd,
    authority: Optional[TicketAuthority],
    already_claimed: bool = False,
    policy: MatchPolicy = DEFAULT_POLICY,
) -> ClaimResponse:
    """Build the wire response for *request* (sim-agent convenience)."""
    decision = verify_claim(
        request_ad=request.customer_ad,
        current_resource_ad=current_resource_ad,
        presented_ticket=request.ticket,
        authority=authority,
        already_claimed=already_claimed,
        policy=policy,
    )
    return ClaimResponse(
        sender=provider_address,
        recipient=request.sender,
        match_id=request.match_id,
        accepted=decision.accepted,
        reason=decision.verdict.value,
    )
