"""Message types exchanged by the matchmaking protocols — S9–S11.

Every wire interaction in Figure 3 has a message type here:

* step 1 — :class:`Advertisement` (entity → matchmaker),
* step 3 — :class:`MatchNotification` (matchmaker → both entities),
* step 4 — :class:`ClaimRequest` / :class:`ClaimResponse` and
  :class:`ReleaseNotice` (customer ↔ provider, *not* via the matchmaker).

Messages are plain frozen dataclasses; the simulated network
(:mod:`repro.sim.network`) delivers them with latency/jitter/loss, which
is all the "distribution" the protocols are claimed robust against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..classads import ClassAd
from ..obs.causal import TraceContext
from .tickets import Ticket

_sequence = itertools.count(1)


def next_message_id() -> int:
    """Monotone message ids, for tracing and duplicate suppression."""
    return next(_sequence)


def reset_message_ids() -> None:
    """Restart the id sequence at 1.

    Only for fresh, isolated runs (``repro chaos`` resets before each
    recording so same-seed runs are bitwise identical); never call this
    while a pool is live — duplicate suppression relies on uniqueness.
    """
    global _sequence
    _sequence = itertools.count(1)


@dataclass(frozen=True)
class Message:
    """Base class: sender/recipient are contact addresses (strings).

    ``ctx`` is the optional causal trace context (see
    :mod:`repro.obs.causal`): the network injects it on first send —
    retransmitted and chaos-duplicated copies re-send the same frozen
    object, so every copy shares the originating span — and activates
    it around delivery.  ``None`` whenever causal tracing is off.
    """

    sender: str
    recipient: str
    ctx: Optional[TraceContext] = field(default=None, kw_only=True)


@dataclass(frozen=True)
class Advertisement(Message):
    """Step 1: a classad sent to the matchmaker.

    ``name`` is the advertising key (re-advertisement under the same name
    refreshes the stored ad); ``lifetime`` is how long the matchmaker
    should retain the ad without refresh (soft state).
    """

    name: str
    ad: ClassAd
    lifetime: float
    sequence: int = field(default_factory=next_message_id)


@dataclass(frozen=True)
class Withdrawal(Message):
    """Graceful removal of an advertisement (e.g. agent shutting down)."""

    name: str


@dataclass(frozen=True)
class MatchNotification(Message):
    """Step 3: "the matchmaker ... sends them the matching ads".

    Both parties receive the *other* party's ad and the other party's
    contact address; the customer additionally receives the provider's
    authorization ticket (Section 4) and an optional session key for the
    challenge-response handshake (Section 3.2).
    """

    peer_address: str
    peer_ad: ClassAd
    my_ad: ClassAd  # the ad the matchmaker matched for *this* recipient
    ticket: Optional[Ticket] = None
    session_key: Optional[bytes] = None
    match_id: int = field(default_factory=next_message_id)


@dataclass(frozen=True)
class ClaimRequest(Message):
    """Step 4: the customer contacts the provider directly.

    Carries the customer's *current* ad (which may be newer than the one
    that matched) and the ticket from the notification.
    """

    customer_ad: ClassAd
    ticket: Optional[Ticket]
    match_id: int
    challenge_response: Optional[str] = None


@dataclass(frozen=True)
class ClaimResponse(Message):
    """The provider's verdict on a claim request.

    An accepted response carries the provider's claim-lease duration:
    the customer must renew (KeepAlive) within that window or the
    provider reaps the claim.  ``None`` means the provider runs without
    leases (legacy blind keep-alives).
    """

    match_id: int
    accepted: bool
    reason: str = ""
    challenge: Optional[bytes] = None  # set when demanding a handshake
    lease_duration: Optional[float] = None


@dataclass(frozen=True)
class ReleaseNotice(Message):
    """The customer relinquishes a claim ("relinquishes the claim, and
    the RA advertises itself as unclaimed" — Section 4)."""

    match_id: int


@dataclass(frozen=True)
class EvictionNotice(Message):
    """The provider terminates a running claim (owner returned, or a
    higher-Rank customer preempted this one)."""

    match_id: int
    reason: str
    checkpointed: bool = False
