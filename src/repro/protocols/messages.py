"""Message types exchanged by the matchmaking protocols — S9–S11.

Every wire interaction in Figure 3 has a message type here:

* step 1 — :class:`Advertisement` (entity → matchmaker),
* step 3 — :class:`MatchNotification` (matchmaker → both entities),
* step 4 — :class:`ClaimRequest` / :class:`ClaimResponse` and
  :class:`ReleaseNotice` (customer ↔ provider, *not* via the matchmaker).

Messages are plain frozen dataclasses; the simulated network
(:mod:`repro.sim.network`) delivers them with latency/jitter/loss, which
is all the "distribution" the protocols are claimed robust against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..classads import ClassAd
from ..classads.fingerprint import ad_wire_size
from ..obs.causal import TraceContext
from .tickets import Ticket

_sequence = itertools.count(1)


def next_message_id() -> int:
    """Monotone message ids, for tracing and duplicate suppression."""
    return next(_sequence)


def reset_message_ids() -> None:
    """Restart the id sequence at 1.

    Only for fresh, isolated runs (``repro chaos`` resets before each
    recording so same-seed runs are bitwise identical); never call this
    while a pool is live — duplicate suppression relies on uniqueness.
    """
    global _sequence
    _sequence = itertools.count(1)


@dataclass(frozen=True)
class Message:
    """Base class: sender/recipient are contact addresses (strings).

    ``ctx`` is the optional causal trace context (see
    :mod:`repro.obs.causal`): the network injects it on first send —
    retransmitted and chaos-duplicated copies re-send the same frozen
    object, so every copy shares the originating span — and activates
    it around delivery.  ``None`` whenever causal tracing is off.
    """

    sender: str
    recipient: str
    ctx: Optional[TraceContext] = field(default=None, kw_only=True)

    def wire_size(self) -> int:
        """Estimated bytes this message occupies on the wire (header +
        addresses); subclasses add their payloads.  Feeds the network's
        ``net.bytes_sent`` accounting — an estimate with stable shape,
        not a byte-exact encoding."""
        return 48 + len(self.sender) + len(self.recipient)


@dataclass(frozen=True)
class Advertisement(Message):
    """Step 1: a classad sent to the matchmaker.

    ``name`` is the advertising key (re-advertisement under the same name
    refreshes the stored ad); ``lifetime`` is how long the matchmaker
    should retain the ad without refresh (soft state).

    ``fingerprint`` is the sender's content hash over the ad's stable
    (non-volatile) attributes — see :mod:`repro.classads.fingerprint`
    and :class:`Refresh`.  ``None`` when the refresh fast path is off.
    """

    name: str
    ad: ClassAd
    lifetime: float
    sequence: int = field(default_factory=next_message_id)
    fingerprint: Optional[str] = None

    def wire_size(self) -> int:
        size = super().wire_size() + len(self.name) + 24 + ad_wire_size(self.ad)
        if self.fingerprint is not None:
            size += len(self.fingerprint)
        return size


@dataclass(frozen=True)
class Refresh(Message):
    """A compact re-advertisement of an *unchanged* ad (the fast path).

    In steady state the soft-state protocol's dominant traffic is
    re-advertisements of ads that have not changed; a Refresh carries
    only the advertising key, the sender's sequence number, the content
    fingerprint of the stable attributes, and the current values of the
    declared-volatile attributes (clock-derived fields like
    ``KeyboardIdle`` that change every period by construction).  A
    collector holding an ad under ``name`` whose stored fingerprint
    matches renews the lease and applies the volatile values in place —
    producing exactly the stored state a full advertisement would have —
    and answers anything else with a :class:`ResendRequest`.
    """

    name: str
    fingerprint: str
    lifetime: float
    sequence: int
    #: ``(attribute name, scalar value)`` pairs, in ad insertion order.
    volatile: Tuple[Tuple[str, object], ...] = ()

    def wire_size(self) -> int:
        return (
            super().wire_size()
            + len(self.name)
            + len(self.fingerprint)
            + 24
            + sum(len(name) + 12 for name, _ in self.volatile)
        )


@dataclass(frozen=True)
class ResendRequest(Message):
    """The collector's NACK to a :class:`Refresh` it cannot honour
    (unknown name, expired ad, or fingerprint mismatch): one round trip
    restores full state — the explicit resync handshake that preserves
    crash-recovery-by-doing-nothing (experiment E1) under the fast
    path."""

    name: str

    def wire_size(self) -> int:
        return super().wire_size() + len(self.name)


@dataclass(frozen=True)
class Withdrawal(Message):
    """Graceful removal of an advertisement (e.g. agent shutting down).

    ``sequence`` is the sender's advertising sequence counter *at
    withdrawal time*: every Advertisement/Refresh already in flight
    carries a smaller-or-equal number, so the collector can tombstone
    the name and drop late-arriving copies instead of resurrecting a
    withdrawn ad (or NACKing a stale refresh of one)."""

    name: str
    sequence: Optional[int] = None

    def wire_size(self) -> int:
        return super().wire_size() + len(self.name) + 8


@dataclass(frozen=True)
class MatchNotification(Message):
    """Step 3: "the matchmaker ... sends them the matching ads".

    Both parties receive the *other* party's ad and the other party's
    contact address; the customer additionally receives the provider's
    authorization ticket (Section 4) and an optional session key for the
    challenge-response handshake (Section 3.2).
    """

    peer_address: str
    peer_ad: ClassAd
    my_ad: ClassAd  # the ad the matchmaker matched for *this* recipient
    ticket: Optional[Ticket] = None
    session_key: Optional[bytes] = None
    match_id: int = field(default_factory=next_message_id)

    def wire_size(self) -> int:
        return (
            super().wire_size()
            + len(self.peer_address)
            + ad_wire_size(self.peer_ad)
            + ad_wire_size(self.my_ad)
            + (64 if self.ticket is not None else 0)
            + (len(self.session_key) if self.session_key is not None else 0)
            + 8
        )


@dataclass(frozen=True)
class ClaimRequest(Message):
    """Step 4: the customer contacts the provider directly.

    Carries the customer's *current* ad (which may be newer than the one
    that matched) and the ticket from the notification.
    """

    customer_ad: ClassAd
    ticket: Optional[Ticket]
    match_id: int
    challenge_response: Optional[str] = None

    def wire_size(self) -> int:
        return (
            super().wire_size()
            + ad_wire_size(self.customer_ad)
            + (64 if self.ticket is not None else 0)
            + 8
        )


@dataclass(frozen=True)
class ClaimResponse(Message):
    """The provider's verdict on a claim request.

    An accepted response carries the provider's claim-lease duration:
    the customer must renew (KeepAlive) within that window or the
    provider reaps the claim.  ``None`` means the provider runs without
    leases (legacy blind keep-alives).
    """

    match_id: int
    accepted: bool
    reason: str = ""
    challenge: Optional[bytes] = None  # set when demanding a handshake
    lease_duration: Optional[float] = None


@dataclass(frozen=True)
class ReleaseNotice(Message):
    """The customer relinquishes a claim ("relinquishes the claim, and
    the RA advertises itself as unclaimed" — Section 4)."""

    match_id: int


@dataclass(frozen=True)
class EvictionNotice(Message):
    """The provider terminates a running claim (owner returned, or a
    higher-Rank customer preempted this one)."""

    match_id: int
    reason: str
    checkpointed: bool = False
