"""Structured negotiation event log — the forensic half of the layer.

Where :mod:`repro.obs.registry` answers "how many rejections?" and
:mod:`repro.obs.tracer` answers "where did the wall-clock go?", this
module answers "*why* did job 17 not match in cycle 42?" — the Section 5
diagnostic question, captured live instead of reconstructed offline.

The log is an append-only sequence of :class:`Event` records (the
``repro-events/1`` schema; see docs/OBSERVABILITY.md) flowing through
one process-wide :data:`~repro.obs.event_log`:

* a **ring sink** (bounded ``deque``) keeps the most recent events in
  memory for programmatic queries and ``repro obs`` post-mortems —
  million-event runs never grow without bound;
* an optional **file sink** streams every event as one JSON line, so a
  recorded run can be replayed by ``repro obs report/why/tail/export``
  long after the process exited.

Event taxonomy — canonical kinds emitted directly:

===================  ====================================================
kind                 emitted by / meaning
===================  ====================================================
``cycle.begin``      matchmaker — a negotiation cycle starts
``cycle.end``        matchmaker — cycle done (matched/rejected totals)
``fairshare.quota``  matchmaker — a submitter's pie slice + serving order
``match.made``       matchmaker — an assignment (ranks, preemption)
``match.reject``     matchmaker/match — one candidate pair failed, with
                     clause-level attribution (side, conjunct, value,
                     undefined attributes) for constraint failures
``job.unmatched``    matchmaker — a request found no provider this cycle
``preemption``       matchmaker — a match that evicts a running customer
``ad.arrived``       collector — an advertisement arrived (admitted or
                     dropped as stale)
``claim.verdict``    claiming protocol — the RA's accept/reject decision
``sim.started``      sim engine — a simulator was constructed (its clock
                     becomes the log's timestamp source)
===================  ====================================================

Every sim-side ``Trace`` additionally mirrors its protocol events into
this log verbatim — even when that particular trace is disabled — so
there is **one** event model: ad expiry/rejection (``ad-expired``,
``ad-rejected``), advertising, match notification, and the whole
claiming conversation (``claim-request``, ``claim-accepted``, …) are
queryable here under their traditional dashed kinds.

Like the registry, the log is **off by default** and every ``emit``
bails on one boolean attribute check — the matchmaking hot loop hoists
that check so a disabled log costs nothing per candidate pair.
"""

from __future__ import annotations

import json
import time as _time
from collections import Counter, deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, TextIO

EVENTS_SCHEMA = "repro-events/1"

#: Keys every serialized record carries (the rest live under ``fields``).
RECORD_KEYS = ("seq", "t", "kind")


@dataclass(frozen=True)
class Event:
    """One recorded occurrence: a sequence number, a timestamp (simulated
    or wall-clock, whichever clock the log is on), a kind, and free-form
    fields."""

    seq: int
    t: float
    kind: str
    fields: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {"seq": self.seq, "t": self.t, "kind": self.kind, "fields": dict(self.fields)}

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.t:12.3f}] #{self.seq:<6d} {self.kind:<22} {details}".rstrip()


class EventLogError(Exception):
    """A recorded event stream failed ``repro-events/1`` validation."""


class EventLog:
    """The append-only structured event log (ring + optional file sink)."""

    __slots__ = ("enabled", "capacity", "_ring", "_seq", "_sink", "_sink_path", "clock")

    def __init__(self, enabled: bool = False, capacity: Optional[int] = 65536):
        self.enabled = enabled
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._seq = 0
        self._sink: Optional[TextIO] = None
        self._sink_path: Optional[str] = None
        #: Timestamp source for ``emit(t=None)``.  Defaults to wall clock;
        #: a :class:`repro.sim.Simulator` installs its simulated clock at
        #: construction so recorded runs carry simulated time.
        self.clock: Callable[[], float] = _time.time

    # -- switches ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop recorded events and restart numbering; sinks stay open."""
        self._ring.clear()
        self._seq = 0
        self.clock = _time.time

    def set_clock(self, clock: Callable[[], float]) -> None:
        self.clock = clock

    # -- sinks ------------------------------------------------------------

    def open_file(self, path: str) -> str:
        """Stream every subsequent event to *path* as JSON lines.

        The first line is the schema header record; re-opening closes
        any previous sink.  Returns the path.
        """
        self.close_file()
        self._sink = open(path, "w")
        self._sink_path = path
        json.dump({"schema": EVENTS_SCHEMA}, self._sink)
        self._sink.write("\n")
        return path

    def close_file(self) -> Optional[str]:
        """Flush and detach the file sink; returns the closed path."""
        path = self._sink_path
        if self._sink is not None:
            self._sink.close()
        self._sink = None
        self._sink_path = None
        return path

    @property
    def sink_path(self) -> Optional[str]:
        return self._sink_path

    # -- recording --------------------------------------------------------

    def emit(self, kind: str, t: Optional[float] = None, **fields: Any) -> None:
        """Record one event (no-op while disabled)."""
        if not self.enabled:
            return
        self._seq += 1
        event = Event(self._seq, self.clock() if t is None else t, kind, fields)
        self._ring.append(event)
        if self._sink is not None:
            json.dump(event.to_dict(), self._sink, default=str)
            self._sink.write("\n")

    # -- queries (over the in-memory ring) --------------------------------

    def events(self) -> List[Event]:
        return list(self._ring)

    def of_kind(self, *kinds: str) -> List[Event]:
        wanted = set(kinds)
        return [e for e in self._ring if e.kind in wanted]

    def count(self, kind: str) -> int:
        return sum(1 for e in self._ring if e.kind == kind)

    def first(self, kind: str) -> Optional[Event]:
        for e in self._ring:
            if e.kind == kind:
                return e
        return None

    def last(self, kind: str) -> Optional[Event]:
        for e in reversed(self._ring):
            if e.kind == kind:
                return e
        return None

    def kinds(self) -> List[str]:
        """Distinct kinds in first-appearance order."""
        seen: Dict[str, None] = {}
        for e in self._ring:
            seen.setdefault(e.kind, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._ring)

    def render(self, limit: Optional[int] = None) -> str:
        events = self.events()
        if limit is not None:
            events = events[-limit:]
        return "\n".join(str(e) for e in events)


#: The process-wide event log.  Producers import this and emit; it stays
#: disabled (and therefore free) until someone turns it on — see
#: :func:`repro.obs.enable`.
event_log = EventLog(enabled=False)


# ---------------------------------------------------------------------------
# serialization: repro-events/1 JSONL


def validate_record(record: Dict[str, Any]) -> None:
    """Raise :class:`EventLogError` unless *record* is a valid event row."""
    if not isinstance(record, dict):
        raise EventLogError(f"event record must be an object, got {type(record).__name__}")
    for key in RECORD_KEYS:
        if key not in record:
            raise EventLogError(f"event record missing {key!r}: {record}")
    if not isinstance(record["seq"], int):
        raise EventLogError(f"seq must be an integer: {record}")
    if not isinstance(record["t"], (int, float)) or isinstance(record["t"], bool):
        raise EventLogError(f"t must be a number: {record}")
    if not isinstance(record["kind"], str) or not record["kind"]:
        raise EventLogError(f"kind must be a non-empty string: {record}")
    if not isinstance(record.get("fields", {}), dict):
        raise EventLogError(f"fields must be an object: {record}")


def read_jsonl(path: str) -> List[Event]:
    """Load and validate a ``repro-events/1`` JSONL file.

    The header record (``{"schema": "repro-events/1"}``) is required on
    the first line; every other line must validate as an event row.
    """
    events: List[Event] = []
    with open(path) as handle:
        first = handle.readline()
        if not first.strip():
            raise EventLogError(f"{path}: empty event log")
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise EventLogError(f"{path}:1: not JSON: {exc}") from exc
        if not isinstance(header, dict) or header.get("schema") != EVENTS_SCHEMA:
            raise EventLogError(
                f"{path}:1: expected {{'schema': '{EVENTS_SCHEMA}'}} header, got {first.strip()!r}"
            )
        for number, line in enumerate(handle, 2):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise EventLogError(f"{path}:{number}: not JSON: {exc}") from exc
            try:
                validate_record(record)
            except EventLogError as exc:
                raise EventLogError(f"{path}:{number}: {exc}") from exc
            events.append(
                Event(record["seq"], record["t"], record["kind"], record.get("fields", {}))
            )
    return events


def summarize(events: Iterable[Event]) -> Dict[str, Any]:
    """Collapse an event stream into the CI-facing JSON summary.

    The output (``repro-events-summary/1``) is what ``repro obs export``
    prints: per-kind counts, per-cycle rows, and the rejection reasons
    ranked by frequency — small enough to diff between runs.
    """
    events = list(events)
    by_kind: Counter = Counter(e.kind for e in events)
    cycles: List[Dict[str, Any]] = []
    for end in events:
        if end.kind != "cycle.end":
            continue
        cycles.append(
            {
                "cycle": end.fields.get("cycle"),
                "requests": end.fields.get("requests"),
                "matched": end.fields.get("matched"),
                "rejected": end.fields.get("rejected"),
                "preemptions": end.fields.get("preemptions"),
            }
        )
    reasons: Counter = Counter()
    for e in events:
        if e.kind == "match.reject":
            conjunct = e.fields.get("conjunct")
            if conjunct:
                key = f"{e.fields.get('side', '?')}: {conjunct}"
            else:
                key = str(e.fields.get("reason", "?"))
            reasons[key] += 1
    # Robustness accounting (PR 5 counters): recorded runs close with a
    # ``run.stats`` event carrying the network and retry/lease totals.
    robustness: Optional[Dict[str, Any]] = None
    for e in reversed(events):
        if e.kind == "run.stats":
            robustness = dict(e.fields)
            break
    # Worker-pool accounting (PR 7): cycle.end events carry the engaged
    # worker/chunk counts, run.stats the parallel.* counter totals.
    parallel: Optional[Dict[str, Any]] = None
    run_parallel: Dict[str, Any] = {}
    if robustness:
        run_parallel = {
            k: v for k, v in robustness.items() if k.startswith("parallel_")
        }
        robustness = {
            k: v for k, v in robustness.items() if not k.startswith("parallel_")
        }
    worker_cycles = [
        e for e in events
        if e.kind == "cycle.end" and e.fields.get("workers")
    ]
    if worker_cycles or run_parallel:
        parallel = {
            "workers": max(
                (e.fields.get("workers", 0) for e in worker_cycles), default=0
            ),
            "cycles_with_workers": len(worker_cycles),
            "chunks": sum(e.fields.get("chunks", 0) for e in worker_cycles),
            **run_parallel,
        }
    return {
        "schema": "repro-events-summary/1",
        "events": len(events),
        "by_kind": dict(sorted(by_kind.items())),
        "cycles": cycles,
        "top_rejections": [
            {"reason": reason, "count": count} for reason, count in reasons.most_common(20)
        ],
        "robustness": robustness,
        "parallel": parallel,
    }
