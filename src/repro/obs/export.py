"""Exporters: render a registry + tracer as JSON or human text.

The wire format is the ``repro-obs/1`` schema (docs/OBSERVABILITY.md)::

    {
      "schema": "repro-obs/1",
      "metrics": [ {"name", "kind", "description", "samples": [...]}, ... ],
      "spans":   [ {"span", "index", "parent", "depth", "duration_s", "fields"}, ... ],
      "events":  [ {"event", "parent", "fields"}, ... ]
    }

Counters/gauges sample ``value`` as a number; histogram samples carry a
``{count, sum, mean, stdev, min, max}`` summary.  Exporters never
mutate the registry, so snapshots can be taken mid-run.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, Optional, TextIO

from .registry import MetricsRegistry
from .tracer import Tracer

OBS_SCHEMA = "repro-obs/1"


def snapshot(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    prefix: Optional[str] = None,
) -> Dict[str, Any]:
    """The full observability state as one JSON-compatible dict."""
    from . import metrics as global_metrics, tracer as global_tracer

    registry = registry if registry is not None else global_metrics
    tracer = tracer if tracer is not None else global_tracer
    return {
        "schema": OBS_SCHEMA,
        "metrics": registry.snapshot(prefix),
        "spans": tracer.to_dicts(),
        "events": list(tracer.events),
    }


def write_json(
    path: str,
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    indent: int = 2,
) -> str:
    """Persist :func:`snapshot` to *path*; returns the path."""
    with open(path, "w") as handle:
        json.dump(snapshot(registry, tracer), handle, indent=indent, sort_keys=True)
        handle.write("\n")
    return path


def dump(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    stream: Optional[TextIO] = None,
    prefix: Optional[str] = None,
) -> None:
    """Human-readable dump to *stream* (default stderr)."""
    stream = stream if stream is not None else sys.stderr
    snap = snapshot(registry, tracer, prefix)
    stream.write("== metrics ==\n")
    for metric in snap["metrics"]:
        if not metric["samples"]:
            continue
        for sample in metric["samples"]:
            labels = ",".join(f"{k}={v}" for k, v in sample["labels"].items())
            suffix = f"{{{labels}}}" if labels else ""
            value = sample["value"]
            if isinstance(value, dict):  # histogram summary
                rendered = (
                    f"count={value['count']} mean={value['mean']:.6g}"
                    f" min={value['min']:.6g} max={value['max']:.6g}"
                )
            else:
                rendered = f"{value:g}" if isinstance(value, float) else str(value)
            stream.write(f"{metric['name']}{suffix} {rendered}\n")
    if snap["spans"]:
        tracer = tracer if tracer is not None else _global_tracer()
        stream.write("== spans ==\n")
        stream.write(tracer.render() + "\n")


def _global_tracer() -> Tracer:
    from . import tracer as global_tracer

    return global_tracer
