"""Per-job lifecycle analytics over recorded event + trace streams.

Answers the question the paper's Section 5 experiments kept asking by
hand: *where did job J's time go* between submit and completion?  The
recorded ``repro-events/1`` stream already carries every lifecycle
transition (submit, advertise, match, claim, run, terminate); this
module replays it into one state machine per job:

.. code-block:: text

    queued ──▶ advertised ──▶ negotiated ──▶ matched ──▶ claim-requested
      ▲            ▲                                          │
      │            │          (claim rejected / timed out) ◀──┤
      │            │                                          ▼
      │            └── evicted / lost-lease ◀── executing ◀── claimed
      │                                            │
      └── (rejected claims loop back)              ▼
                                      completed / removed   (terminal)

``claimed`` opens at the RA's accept verdict and ``executing`` at the
CA's activation of the claim — the dwell of ``claimed`` is therefore
the activation handshake latency.  Every transition closes the previous
phase segment at the event's timestamp, so per-phase dwell times
**telescope exactly**: their sum equals the end-to-end latency, with no
clock skew (all daemons share the simulated clock).

Terminal states are idempotent: once a job completes (or is removed),
every later event for it — including a replayed ``job-done`` from a
duplicated teardown notice under the chaos ``lossy`` profile — is
counted in ``duplicate_terminals`` and otherwise ignored, so replays
can never double-count in the latency percentiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .causal import SpanRecord
from .events import Event

__all__ = [
    "Segment",
    "JobLifecycle",
    "build_lifecycles",
    "latency_table",
    "percentile",
    "critical_path",
    "render_timeline",
    "render_latency_table",
    "TERMINAL_STATES",
]

#: States a job never leaves (everything after them is a replay).
TERMINAL_STATES = {"completed", "removed"}

#: Phase order for rendering (unknown phases sort after these).
PHASE_ORDER = (
    "queued",
    "advertised",
    "negotiated",
    "matched",
    "claim-requested",
    "claimed",
    "executing",
    "evicted",
    "lost-lease",
    "completed",
    "removed",
)


@dataclass
class Segment:
    """One contiguous stay in a lifecycle state."""

    state: str
    start: float
    end: Optional[float] = None

    @property
    def dwell(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start


@dataclass
class JobLifecycle:
    """The replayed state machine of one job."""

    owner: str
    job_id: Any
    trace_id: Optional[str] = None
    segments: List[Segment] = field(default_factory=list)
    terminal: Optional[str] = None
    submit_t: Optional[float] = None
    end_t: Optional[float] = None
    matches: int = 0
    evictions: int = 0
    lease_losses: int = 0
    claim_rejections: int = 0
    #: Replayed terminal events ignored after the job already ended.
    duplicate_terminals: int = 0

    @property
    def state(self) -> Optional[str]:
        return self.segments[-1].state if self.segments else None

    def end_to_end(self) -> Optional[float]:
        if self.submit_t is None or self.end_t is None:
            return None
        return self.end_t - self.submit_t

    def dwell_by_phase(self) -> Dict[str, float]:
        """Total time in each state (closed segments only)."""
        totals: Dict[str, float] = {}
        for segment in self.segments:
            if segment.end is None:
                continue
            totals[segment.state] = totals.get(segment.state, 0.0) + segment.dwell
        return totals

    # -- state machine ----------------------------------------------------

    def _transition(self, state: str, t: float) -> None:
        if self.segments:
            current = self.segments[-1]
            if current.end is None:
                current.end = t
            if current.state == state and current.end == t:
                # Zero-width re-entry (e.g. re-advertise while advertised):
                # reopen the segment instead of stacking empty ones.
                current.end = None
                return
        self.segments.append(Segment(state, t))

    def _finish(self, state: str, t: float) -> None:
        if self.segments and self.segments[-1].end is None:
            self.segments[-1].end = t
        self.terminal = state
        self.end_t = t


def _phase_sort_key(state: str) -> Tuple[int, str]:
    try:
        return (PHASE_ORDER.index(state), state)
    except ValueError:
        return (len(PHASE_ORDER), state)


def build_lifecycles(events: Iterable[Event]) -> Dict[Tuple[Any, Any], JobLifecycle]:
    """Replay *events* (in stream order) into one lifecycle per job.

    Keys are ``(owner, job_id)``.  Events for jobs whose submission was
    not recorded are ignored (a truncated log is not an analytics bug).
    """
    jobs: Dict[Tuple[Any, Any], JobLifecycle] = {}
    # RA-side claim verdicts name (match, job) but not the owner; the
    # match id was introduced to the job by its match notification.
    match_to_key: Dict[Any, Tuple[Any, Any]] = {}

    def lookup(
        fields: Dict[str, Any], owner_key: str = "owner", terminal: bool = False
    ) -> Optional[JobLifecycle]:
        owner = fields.get(owner_key)
        job_id = fields.get("job")
        if owner is None or job_id is None:
            return None
        lifecycle = jobs.get((owner, job_id))
        if lifecycle is None:
            return None
        if lifecycle.terminal is not None:
            # Idempotent terminals: events after the end are replays
            # (duplicated teardown notices, stale retransmits) — never
            # re-entered into the state machine.  Replayed *terminal*
            # events are additionally counted, the satellite-fix metric.
            if terminal:
                lifecycle.duplicate_terminals += 1
            return None
        return lifecycle

    for event in events:
        kind = event.kind
        fields = event.fields
        if kind == "job-submitted":
            owner, job_id = fields.get("owner"), fields.get("job")
            if owner is None or job_id is None:
                continue
            key = (owner, job_id)
            if key in jobs:
                continue  # duplicate submission: keep the original clock
            lifecycle = JobLifecycle(
                owner=owner, job_id=job_id, trace_id=fields.get("trace")
            )
            lifecycle.submit_t = event.t
            lifecycle._transition("queued", event.t)
            jobs[key] = lifecycle
        elif kind in ("advertise-job", "advertise-job-flock"):
            lifecycle = lookup(fields)
            if lifecycle is not None and lifecycle.state != "advertised":
                lifecycle._transition("advertised", event.t)
        elif kind == "match.made":
            lifecycle = lookup(fields, owner_key="submitter")
            if lifecycle is not None:
                lifecycle.matches += 1
                lifecycle._transition("negotiated", event.t)
        elif kind == "match-notified-customer":
            lifecycle = lookup(fields)
            if lifecycle is not None:
                match_to_key[fields.get("match")] = (lifecycle.owner, lifecycle.job_id)
                lifecycle._transition("matched", event.t)
        elif kind == "claim-request":
            lifecycle = lookup(fields)
            if lifecycle is not None:
                lifecycle._transition("claim-requested", event.t)
        elif kind == "claim-response":
            if not fields.get("accepted"):
                continue
            key = match_to_key.get(fields.get("match"))
            lifecycle = jobs.get(key) if key is not None else None
            if lifecycle is not None and lifecycle.terminal is None:
                lifecycle._transition("claimed", event.t)
        elif kind == "claim-accepted":
            lifecycle = lookup(fields)
            if lifecycle is not None:
                lifecycle._transition("executing", event.t)
        elif kind in ("claim-rejected", "claim-timeout"):
            lifecycle = lookup(fields)
            if lifecycle is not None:
                lifecycle.claim_rejections += 1
                lifecycle._transition("queued", event.t)
        elif kind == "job-evicted-ca":
            lifecycle = lookup(fields)
            if lifecycle is not None:
                lifecycle.evictions += 1
                lifecycle._transition("evicted", event.t)
        elif kind == "claim.lease.lost":
            lifecycle = lookup(fields)
            if lifecycle is not None:
                lifecycle.lease_losses += 1
                lifecycle._transition("lost-lease", event.t)
        elif kind == "job-done":
            lifecycle = lookup(fields, terminal=True)
            if lifecycle is not None:
                lifecycle._finish("completed", event.t)
        elif kind == "job-removed":
            lifecycle = lookup(fields, terminal=True)
            if lifecycle is not None:
                lifecycle._finish("removed", event.t)
    return jobs


def find_job(
    lifecycles: Dict[Tuple[Any, Any], JobLifecycle], job_spec: str
) -> List[JobLifecycle]:
    """Resolve a CLI job spec: ``<job-id>`` or ``<owner>.<job-id>``."""
    owner: Optional[str] = None
    raw = job_spec
    if "." in job_spec:
        owner, raw = job_spec.rsplit(".", 1)
    try:
        job_id: Any = int(raw)
    except ValueError:
        job_id = raw
    return [
        lc
        for (o, j), lc in sorted(lifecycles.items(), key=lambda item: str(item[0]))
        if j == job_id and (owner is None or o == owner)
    ]


# ---------------------------------------------------------------------------
# latency statistics


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic; q in (0, 1])."""
    if not values:
        raise ValueError("percentile of empty sequence")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def _stats(values: Sequence[float]) -> Dict[str, float]:
    return {
        "n": len(values),
        "p50": percentile(values, 0.50),
        "p90": percentile(values, 0.90),
        "p99": percentile(values, 0.99),
        "mean": sum(values) / len(values),
        "max": max(values),
    }


def latency_table(
    lifecycles: Dict[Tuple[Any, Any], JobLifecycle]
) -> Dict[str, Any]:
    """Pool-wide latency decomposition over *completed* jobs.

    Per-phase rows aggregate each job's total dwell in that phase;
    ``end_to_end`` is submit→completion.  The output is the
    ``repro-latency/1`` JSON consumed by CI.
    """
    completed = [lc for lc in lifecycles.values() if lc.terminal == "completed"]
    end_to_end = [lc.end_to_end() for lc in completed]
    phases: Dict[str, List[float]] = {}
    for lc in completed:
        for state, dwell in lc.dwell_by_phase().items():
            phases.setdefault(state, []).append(dwell)
    return {
        "schema": "repro-latency/1",
        "jobs": len(lifecycles),
        "jobs_completed": len(completed),
        "duplicate_terminals": sum(lc.duplicate_terminals for lc in lifecycles.values()),
        "end_to_end": _stats(end_to_end) if end_to_end else None,
        "phases": {
            state: _stats(values)
            for state, values in sorted(phases.items(), key=lambda kv: _phase_sort_key(kv[0]))
        },
    }


# ---------------------------------------------------------------------------
# critical path over the causal DAG


def critical_path(spans: List[SpanRecord], trace_id: Optional[str] = None) -> List[SpanRecord]:
    """The root→leaf ancestor chain ending at the trace's latest span.

    The returned chain is the causal backbone of the job's lifetime:
    each hop is the message (or daemon decision) the next one waited on.
    """
    members = [s for s in spans if trace_id is None or s.trace == trace_id]
    if not members:
        return []
    by_id = {s.span: s for s in members}
    leaf = max(members, key=lambda s: (s.t, s.span))
    chain = [leaf]
    seen = {leaf.span}
    cursor = leaf
    while cursor.parent is not None:
        parent = by_id.get(cursor.parent)
        if parent is None or parent.span in seen:
            break
        chain.append(parent)
        seen.add(parent.span)
        cursor = parent
    chain.reverse()
    return chain


def render_critical_path(chain: List[SpanRecord]) -> str:
    lines = []
    prev_t: Optional[float] = None
    for span in chain:
        delta = "" if prev_t is None else f"  (+{span.t - prev_t:.3f}s)"
        detail = " ".join(f"{k}={v}" for k, v in span.fields.items())
        lines.append(
            f"  t={span.t:10.3f}  {span.name:<28} {detail}{delta}".rstrip()
        )
        prev_t = span.t
    if chain:
        lines.append(
            f"  critical path: {len(chain)} span(s), "
            f"{chain[-1].t - chain[0].t:.3f}s root→leaf"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# rendering


_BAR_WIDTH = 30


def render_timeline(lifecycle: JobLifecycle) -> str:
    """The ``repro obs timeline`` view: per-phase dwell breakdown whose
    rows sum exactly to the end-to-end latency."""
    head = f"job {lifecycle.job_id} ({lifecycle.owner})"
    if lifecycle.trace_id:
        head += f" — trace {lifecycle.trace_id}"
    lines = [head]
    if lifecycle.submit_t is not None:
        status = (
            f"{lifecycle.terminal} t={lifecycle.end_t:.3f}"
            if lifecycle.terminal is not None
            else f"in state {lifecycle.state!r} (stream truncated)"
        )
        lines.append(f"submitted t={lifecycle.submit_t:.3f}, {status}")
    closed = [s for s in lifecycle.segments if s.end is not None]
    longest = max((s.dwell for s in closed), default=0.0)
    lines.append(f"{'phase':<16} {'start':>10} {'end':>10} {'dwell':>10}")
    total = 0.0
    for segment in lifecycle.segments:
        if segment.end is None:
            lines.append(f"{segment.state:<16} {segment.start:>10.3f} {'…':>10} {'?':>10}")
            continue
        total += segment.dwell
        width = (
            int(round(_BAR_WIDTH * segment.dwell / longest)) if longest > 0 else 0
        )
        bar = "█" * width
        lines.append(
            f"{segment.state:<16} {segment.start:>10.3f} {segment.end:>10.3f} "
            f"{segment.dwell:>10.3f}  {bar}".rstrip()
        )
    end_to_end = lifecycle.end_to_end()
    if end_to_end is not None:
        check = "=" if math.isclose(total, end_to_end, abs_tol=1e-9) else "≠"
        lines.append(
            f"{'total':<16} {'':>10} {'':>10} {total:>10.3f}  ({check} end-to-end "
            f"{end_to_end:.3f})"
        )
    counters = []
    if lifecycle.matches:
        counters.append(f"matches={lifecycle.matches}")
    if lifecycle.claim_rejections:
        counters.append(f"claim_rejections={lifecycle.claim_rejections}")
    if lifecycle.evictions:
        counters.append(f"evictions={lifecycle.evictions}")
    if lifecycle.lease_losses:
        counters.append(f"lease_losses={lifecycle.lease_losses}")
    if lifecycle.duplicate_terminals:
        counters.append(f"duplicate_terminals={lifecycle.duplicate_terminals}")
    if counters:
        lines.append("  ".join(counters))
    return "\n".join(lines)


def render_latency_table(table: Dict[str, Any]) -> str:
    """Human rendering of :func:`latency_table` output."""
    lines = [
        f"jobs      : {table['jobs_completed']}/{table['jobs']} completed"
        + (
            f" ({table['duplicate_terminals']} replayed terminal event(s) ignored)"
            if table.get("duplicate_terminals")
            else ""
        )
    ]
    if table["end_to_end"] is None:
        lines.append("no completed jobs — no latency distribution to report")
        return "\n".join(lines)
    header = f"{'phase':<16} {'n':>4} {'p50':>10} {'p90':>10} {'p99':>10} {'mean':>10} {'max':>10}"
    lines.append(header)

    def row(name: str, stats: Dict[str, float]) -> str:
        return (
            f"{name:<16} {stats['n']:>4} {stats['p50']:>10.3f} {stats['p90']:>10.3f} "
            f"{stats['p99']:>10.3f} {stats['mean']:>10.3f} {stats['max']:>10.3f}"
        )

    for state, stats in table["phases"].items():
        lines.append(row(state, stats))
    lines.append(row("end-to-end", table["end_to_end"]))
    return "\n".join(lines)
