"""Pool-health time series — the ``repro-series/1`` stream.

``condor_status`` answers "what does the pool look like *now*"; this
module keeps the history: one :class:`Sample` per negotiation cycle
(machines by state, idle jobs, claims, match rate, preemptions), taken
by the collector — the daemon that already holds the pool's soft state
— and stored in a bounded ring with an optional JSONL sink.  ``repro
obs pool`` renders the recorded series as a table (or follows a live
file with ``--watch``), the ``condor_status``-history analogue.

Mirrors :class:`repro.obs.events.EventLog`: off by default, one-boolean
fast path, schema-headed JSONL, deterministic sequence numbers.
"""

from __future__ import annotations

import json
import time as _time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, TextIO

SERIES_SCHEMA = "repro-series/1"

#: Keys every serialized sample carries (pool gauges live under ``fields``).
SAMPLE_KEYS = ("seq", "t")


@dataclass(frozen=True)
class Sample:
    """One pool-health observation at simulated time ``t``."""

    seq: int
    t: float
    fields: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {"seq": self.seq, "t": self.t, "fields": dict(self.fields)}

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.t:12.3f}] #{self.seq:<6d} {details}".rstrip()


class SeriesError(Exception):
    """A recorded series stream failed ``repro-series/1`` validation."""


class SeriesStore:
    """The process-wide pool time-series store (ring + optional sink)."""

    __slots__ = ("enabled", "capacity", "_ring", "_seq", "_sink", "_sink_path", "clock")

    def __init__(self, enabled: bool = False, capacity: Optional[int] = 16384):
        self.enabled = enabled
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._seq = 0
        self._sink: Optional[TextIO] = None
        self._sink_path: Optional[str] = None
        self.clock: Callable[[], float] = _time.time

    # -- switches ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._ring.clear()
        self._seq = 0
        self.clock = _time.time

    def set_clock(self, clock: Callable[[], float]) -> None:
        self.clock = clock

    # -- sinks ------------------------------------------------------------

    def open_file(self, path: str) -> str:
        self.close_file()
        self._sink = open(path, "w")
        self._sink_path = path
        json.dump({"schema": SERIES_SCHEMA}, self._sink)
        self._sink.write("\n")
        return path

    def close_file(self) -> Optional[str]:
        path = self._sink_path
        if self._sink is not None:
            self._sink.close()
        self._sink = None
        self._sink_path = None
        return path

    @property
    def sink_path(self) -> Optional[str]:
        return self._sink_path

    # -- recording --------------------------------------------------------

    def sample(self, t: Optional[float] = None, **fields: Any) -> None:
        """Record one observation (no-op while disabled)."""
        if not self.enabled:
            return
        self._seq += 1
        record = Sample(self._seq, self.clock() if t is None else t, fields)
        self._ring.append(record)
        if self._sink is not None:
            json.dump(record.to_dict(), self._sink, default=str)
            self._sink.write("\n")
            self._sink.flush()

    # -- queries ----------------------------------------------------------

    def samples(self) -> List[Sample]:
        return list(self._ring)

    def last(self) -> Optional[Sample]:
        return self._ring[-1] if self._ring else None

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[Sample]:
        return iter(self._ring)


#: The process-wide pool time-series store.
series = SeriesStore(enabled=False)


# ---------------------------------------------------------------------------
# serialization: repro-series/1 JSONL


def validate_record(record: Dict[str, Any]) -> None:
    """Raise :class:`SeriesError` unless *record* is a valid sample row."""
    if not isinstance(record, dict):
        raise SeriesError(f"sample record must be an object, got {type(record).__name__}")
    for key in SAMPLE_KEYS:
        if key not in record:
            raise SeriesError(f"sample record missing {key!r}: {record}")
    if not isinstance(record["seq"], int):
        raise SeriesError(f"seq must be an integer: {record}")
    if not isinstance(record["t"], (int, float)) or isinstance(record["t"], bool):
        raise SeriesError(f"t must be a number: {record}")
    if not isinstance(record.get("fields", {}), dict):
        raise SeriesError(f"fields must be an object: {record}")


def read_jsonl(path: str) -> List[Sample]:
    """Load and validate a ``repro-series/1`` JSONL file."""
    samples: List[Sample] = []
    with open(path) as handle:
        first = handle.readline()
        if not first.strip():
            raise SeriesError(f"{path}: empty series stream")
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise SeriesError(f"{path}:1: not JSON: {exc}") from exc
        if not isinstance(header, dict) or header.get("schema") != SERIES_SCHEMA:
            raise SeriesError(
                f"{path}:1: expected {{'schema': '{SERIES_SCHEMA}'}} header, got {first.strip()!r}"
            )
        for number, line in enumerate(handle, 2):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SeriesError(f"{path}:{number}: not JSON: {exc}") from exc
            try:
                validate_record(record)
            except SeriesError as exc:
                raise SeriesError(f"{path}:{number}: {exc}") from exc
            samples.append(Sample(record["seq"], record["t"], record.get("fields", {})))
    return samples


#: Column order for the ``repro obs pool`` table (missing fields show "-").
POOL_COLUMNS = (
    ("cycle", 5),
    ("machines", 8),
    ("owner", 5),
    ("unclaimed", 9),
    ("claimed", 7),
    ("jobs_idle", 9),
    ("matched", 7),
    ("requests", 8),
    ("match_rate", 10),
    ("preemptions", 11),
)


def render_header() -> str:
    return f"{'t':>12}  " + "  ".join(f"{name:>{width}}" for name, width in POOL_COLUMNS)


def render_row(sample: Sample) -> str:
    cells = [f"{sample.t:12.1f}"]
    for name, width in POOL_COLUMNS:
        value = sample.fields.get(name)
        if value is None:
            cells.append(f"{'-':>{width}}")
        elif name == "match_rate" and isinstance(value, float):
            cells.append(f"{value:>{width}.2f}")
        else:
            cells.append(f"{value!s:>{width}}")
    return "  ".join(cells)


def render_table(samples: List[Sample], limit: Optional[int] = None) -> str:
    """The ``repro obs pool`` view: one row per recorded cycle."""
    if limit is not None:
        samples = samples[-limit:]
    return "\n".join([render_header()] + [render_row(sample) for sample in samples])
