"""Structured negotiation tracing — the qualitative half of the layer.

Where :mod:`repro.sim.trace` records *simulated-time* protocol events
for the experiments, this tracer records *wall-clock* spans of the
implementation itself, nested::

    negotiator_cycle
      negotiation_cycle          (the pure matchmaking algorithm)
        submitter                 (one per customer served)
          try_match               (one per request considered)
      claim                       (RA-side claim verification)

Each span knows its start, duration, depth, and parent, so a finished
trace reconstructs the full call tree — which phase of a negotiation
cycle the time went to, per submitter and per request.  Spans may be
annotated with outcome fields after entry (``span.annotate(matched=1)``).

Disabled tracers hand out one shared no-op span object: entering a
span costs a method call and a boolean check, nothing else.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional


class Span:
    """One live (or finished) span.  Use as a context manager."""

    __slots__ = ("tracer", "name", "fields", "start", "duration", "depth", "index", "parent")

    def __init__(self, tracer: "Tracer", name: str, fields: Dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.fields = fields
        self.start = 0.0
        self.duration: Optional[float] = None
        self.depth = 0
        self.index = -1
        self.parent: Optional[int] = None

    def annotate(self, **fields: Any) -> None:
        """Attach outcome fields (visible in the exported record)."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        tracer = self.tracer
        self.depth = len(tracer._stack)
        self.parent = tracer._stack[-1].index if tracer._stack else None
        self.index = len(tracer.spans)
        self.start = time.perf_counter()
        tracer.spans.append(self)
        tracer._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self.start
        stack = self.tracer._stack
        if stack and stack[-1] is self:
            stack.pop()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span": self.name,
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "duration_s": self.duration,
            "fields": dict(self.fields),
        }

    def __repr__(self) -> str:
        dur = f"{self.duration * 1e3:.3f}ms" if self.duration is not None else "open"
        return f"Span({self.name!r}, {dur}, depth={self.depth})"


class _NullSpan:
    """Shared do-nothing span handed out by disabled tracers."""

    __slots__ = ()

    def annotate(self, **fields: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects nested :class:`Span` records and point events."""

    __slots__ = ("enabled", "spans", "events", "_stack")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.spans: List[Span] = []
        self.events: List[Dict[str, Any]] = []
        self._stack: List[Span] = []

    # -- switches ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self.spans.clear()
        self.events.clear()
        self._stack.clear()

    # -- recording --------------------------------------------------------

    def span(self, name: str, **fields: Any):
        """A context manager timing one named phase (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, fields)

    def event(self, name: str, **fields: Any) -> None:
        """A point event, attributed to the innermost open span."""
        if not self.enabled:
            return
        self.events.append(
            {
                "event": name,
                "parent": self._stack[-1].index if self._stack else None,
                "fields": fields,
            }
        )

    # -- reading ----------------------------------------------------------

    def of_name(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [span.to_dict() for span in self.spans]

    def render(self, limit: Optional[int] = None) -> str:
        """Indented wall-clock call tree, for humans."""
        spans = self.spans if limit is None else self.spans[:limit]
        lines = []
        for span in spans:
            dur = (
                f"{span.duration * 1e3:8.3f}ms"
                if span.duration is not None
                else "    open"
            )
            detail = " ".join(f"{k}={v}" for k, v in span.fields.items())
            lines.append(f"{dur}  {'  ' * span.depth}{span.name} {detail}".rstrip())
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.spans)
