"""Post-hoc protocol invariant checking over recorded event streams.

The chaos harness (:mod:`repro.sim.chaos`) makes the network lie —
drop, duplicate, partition — and crashes daemons mid-claim.  The
hardened protocols are supposed to keep the pool *safe* (no machine
ever runs two jobs at once, no job ever holds two claims at once) and
*live* (every accepted claim eventually terminates; under bounded chaos
every submitted job eventually completes).  This module checks those
four invariants against a ``repro-events/1`` stream after the fact, so
a chaos run can be audited from its recorded log alone::

    repro obs check events.jsonl --require-complete

The checker consumes the canonical trace kinds mirrored into the event
log by every agent:

* machine-side claims open at ``claim-response`` with ``accepted=True``
  and close at ``job-completed`` / ``job-evicted`` / ``claim-released``
  / ``machine-crash`` (a crash vaporizes the claim by definition);
* customer-side claims open at ``claim-accepted`` and close at
  ``job-done`` / ``job-evicted-ca`` / ``job-removed`` /
  ``claim.lease.lost``;
* job lifecycle runs ``job-submitted`` → ``job-done`` or
  ``job-removed``.

Safety violations (overlapping claims, double completion) are always
errors.  Liveness gaps (claims still open, jobs still unfinished at the
end of the stream) are errors only under ``require_complete`` —
otherwise they are warnings, because a truncated log is not a protocol
bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .events import Event

__all__ = ["Violation", "InvariantReport", "check_events"]


@dataclass(frozen=True)
class Violation:
    """One invariant breach, anchored to the event that revealed it.

    Beyond the human-readable ``detail``, a violation carries machine-
    consumable anchors so tooling can pivot straight from an audit
    failure to the offending job (``job``, as ``owner.job-id``), the
    match that caused it (``match``), and — when the run was recorded
    with causal tracing on — the job's ``repro-trace/1`` trace id
    (``trace``), ready for ``repro obs critical-path``.
    """

    invariant: str
    detail: str
    seq: int
    t: float
    job: Optional[str] = None
    match: Any = None
    trace: Optional[str] = None

    def __str__(self) -> str:
        anchors = " ".join(
            f"{name}={value}"
            for name, value in (("job", self.job), ("match", self.match), ("trace", self.trace))
            if value is not None
        )
        base = f"[{self.t:12.3f}] #{self.seq:<6d} {self.invariant}: {self.detail}"
        return f"{base}  [{anchors}]" if anchors else base


@dataclass
class InvariantReport:
    """Outcome of an invariant sweep over one event stream."""

    violations: List[Violation] = field(default_factory=list)
    warnings: List[Violation] = field(default_factory=list)
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = []
        for key in sorted(self.stats):
            lines.append(f"{key:28s} {self.stats[key]}")
        for violation in self.violations:
            lines.append(f"VIOLATION {violation}")
        for warning in self.warnings:
            lines.append(f"warning   {warning}")
        lines.append("OK" if self.ok else f"{len(self.violations)} violation(s)")
        return "\n".join(lines)


# Machine-side claim terminators (all carry a ``machine`` field).
_MACHINE_CLAIM_ENDS = {"job-completed", "job-evicted", "claim-released", "machine-crash"}
# Customer-side claim terminators (all carry ``owner`` + ``job``).
_JOB_CLAIM_ENDS = {"job-done", "job-evicted-ca", "job-removed", "claim.lease.lost"}
# Job terminators.
_JOB_ENDS = {"job-done", "job-removed"}


def _job_key(fields: Dict[str, Any]) -> Optional[Tuple[Any, Any]]:
    if "owner" not in fields or "job" not in fields:
        return None
    return (fields["owner"], fields["job"])


def check_events(
    events: Iterable[Event], require_complete: bool = False
) -> InvariantReport:
    """Sweep *events* (in order) and report invariant breaches.

    With ``require_complete`` every claim must terminate and every
    submitted job must finish by the end of the stream; without it those
    loose ends are warnings only.
    """
    report = InvariantReport()

    # machine name -> (seq, t, match, job) of the open machine-side claim
    machine_claims: Dict[Any, Tuple[int, float, Any, Any]] = {}
    # (owner, job) -> (seq, t, match) of the open customer-side claim
    job_claims: Dict[Tuple[Any, Any], Tuple[int, float, Any]] = {}
    submitted: Dict[Tuple[Any, Any], float] = {}
    finished: Dict[Tuple[Any, Any], str] = {}
    # Anchor tables: (owner, job) -> trace id (recorded with tracing on),
    # and match id -> (owner, job) (machine-side events carry no owner).
    traces: Dict[Tuple[Any, Any], str] = {}
    match_to_key: Dict[Any, Tuple[Any, Any]] = {}

    def anchor(
        match: Any = None, key: Optional[Tuple[Any, Any]] = None
    ) -> Dict[str, Any]:
        """Job/match/trace anchors for a Violation, best effort."""
        if key is None and match is not None:
            key = match_to_key.get(match)
        return {
            "job": f"{key[0]}.{key[1]}" if key is not None else None,
            "match": match,
            "trace": traces.get(key) if key is not None else None,
        }

    counts = {
        "events": 0,
        "machine_claims": 0,
        "job_claims": 0,
        "jobs_submitted": 0,
        "jobs_done": 0,
        "jobs_removed": 0,
        "machine_crashes": 0,
    }

    for event in events:
        counts["events"] += 1
        kind = event.kind
        fields = event.fields

        if kind == "match-notified-customer":
            key = _job_key(fields)
            if key is not None and fields.get("match") is not None:
                match_to_key[fields["match"]] = key

        if kind == "claim-response" and fields.get("accepted"):
            machine = fields.get("machine")
            counts["machine_claims"] += 1
            open_claim = machine_claims.get(machine)
            if open_claim is not None:
                report.violations.append(
                    Violation(
                        "machine-overlap",
                        f"machine {machine!r} accepted match "
                        f"{fields.get('match')} (job {fields.get('job')}) while "
                        f"match {open_claim[2]} (job {open_claim[3]}, accepted "
                        f"at t={open_claim[1]:.3f}) was still running",
                        event.seq,
                        event.t,
                        **anchor(match=fields.get("match")),
                    )
                )
            machine_claims[machine] = (
                event.seq,
                event.t,
                fields.get("match"),
                fields.get("job"),
            )
        elif kind in _MACHINE_CLAIM_ENDS:
            machine_claims.pop(fields.get("machine"), None)
            if kind == "machine-crash":
                counts["machine_crashes"] += 1

        if kind == "claim-accepted":
            key = _job_key(fields)
            if key is not None:
                counts["job_claims"] += 1
                open_claim = job_claims.get(key)
                if open_claim is not None:
                    report.violations.append(
                        Violation(
                            "job-overlap",
                            f"job {key} accepted claim {fields.get('match')} "
                            f"while claim {open_claim[2]} (accepted at "
                            f"t={open_claim[1]:.3f}) was still active",
                            event.seq,
                            event.t,
                            **anchor(match=fields.get("match"), key=key),
                        )
                    )
                job_claims[key] = (event.seq, event.t, fields.get("match"))
        elif kind in _JOB_CLAIM_ENDS:
            key = _job_key(fields)
            if key is not None:
                job_claims.pop(key, None)

        if kind == "job-submitted":
            key = _job_key(fields)
            if key is not None:
                counts["jobs_submitted"] += 1
                submitted[key] = event.t
                if fields.get("trace"):
                    traces[key] = fields["trace"]
        elif kind in _JOB_ENDS:
            key = _job_key(fields)
            if key is not None:
                if key in finished:
                    report.violations.append(
                        Violation(
                            "double-completion",
                            f"job {key} terminated twice "
                            f"({finished[key]} then {kind})",
                            event.seq,
                            event.t,
                            **anchor(key=key),
                        )
                    )
                else:
                    finished[key] = kind
                    counts["jobs_done" if kind == "job-done" else "jobs_removed"] += 1

    end_seq = counts["events"]
    end_t = 0.0

    def loose_end(invariant: str, detail: str, **anchors: Any) -> None:
        entry = Violation(invariant, detail, end_seq, end_t, **anchors)
        (report.violations if require_complete else report.warnings).append(entry)

    for machine, (seq, t, match, job) in sorted(
        machine_claims.items(), key=lambda item: str(item[0])
    ):
        loose_end(
            "unterminated-machine-claim",
            f"machine {machine!r} still holds match {match} (job {job}, "
            f"accepted at t={t:.3f}) at end of stream",
            **anchor(match=match),
        )
    for key, (seq, t, match) in sorted(job_claims.items(), key=lambda item: str(item[0])):
        loose_end(
            "unterminated-job-claim",
            f"job {key} still holds claim {match} (accepted at t={t:.3f}) "
            f"at end of stream",
            **anchor(match=match, key=key),
        )
    for key in sorted(set(submitted) - set(finished), key=str):
        loose_end(
            "incomplete-job",
            f"job {key} (submitted at t={submitted[key]:.3f}) never completed",
            **anchor(key=key),
        )

    counts["open_machine_claims"] = len(machine_claims)
    counts["open_job_claims"] = len(job_claims)
    counts["incomplete_jobs"] = len(set(submitted) - set(finished))
    report.stats = counts
    return report
