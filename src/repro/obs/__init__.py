"""repro.obs — the observability layer (metrics, tracing, exporters).

"Turning Cluster Management into Data Management" (Robinson & DeWitt)
argues Condor-style pool state should itself be queryable data; this
package applies that to the reproduction.  Every negotiation cycle,
claim, eviction, and ad-store transition is counted or traced here and
exported as machine-readable JSON (the ``repro-obs/1`` schema; see
docs/OBSERVABILITY.md for the metric catalogue and span taxonomy).

Three process-wide singletons carry all instrumentation:

* :data:`metrics` — the global :class:`MetricsRegistry`; instrumented
  modules declare their counters against it at import time;
* :data:`tracer` — the global :class:`Tracer` for nested spans;
* :data:`event_log` — the global :class:`EventLog`, the structured
  negotiation-forensics stream (``repro-events/1``; read back with the
  ``repro obs`` CLI family);
* :data:`causal_log` — the global :class:`CausalTracer`, the
  cross-daemon causal trace stream (``repro-trace/1``): spans are
  propagated through every protocol message, so "why did job J take
  400 ticks" is answerable across daemon boundaries;
* :data:`series` — the global :class:`SeriesStore`, the pool-health
  time series (``repro-series/1``) sampled each negotiation cycle.

All are **disabled by default**: every mutating call bails on one
boolean check, so an uninstrumented run pays (nearly) nothing.  Turn
them on programmatically::

    from repro import obs
    obs.enable()                  # metrics only
    obs.enable(trace=True)        # metrics + spans
    obs.enable(events=True)       # metrics + the forensic event log
    obs.event_log.open_file("events.jsonl")   # optional JSONL sink
    ... run ...
    print(obs.export.snapshot())  # or obs.export.write_json(path)
    obs.disable(); obs.reset()

or from the environment before the process starts: ``REPRO_OBS=1``
enables metrics, ``REPRO_OBS_TRACE=1`` additionally enables spans,
``REPRO_OBS_EVENTS=1`` additionally enables the event log,
``REPRO_OBS_CAUSAL=1`` the causal trace stream, and
``REPRO_OBS_SERIES=1`` the pool time series.

This package must stay import-cycle free: it is imported by the lowest
layers (classads, sim), so it imports nothing from them.
"""

from __future__ import annotations

import os

from . import export
from .causal import (
    TRACE_SCHEMA,
    CausalTracer,
    SpanRecord,
    TraceContext,
    TraceError,
    causal_log,
    job_trace_id,
)
from .events import EVENTS_SCHEMA, Event, EventLog, EventLogError, event_log
from .invariants import InvariantReport, Violation, check_events
from .registry import Counter, Gauge, Histogram, MetricsRegistry, RunningStats
from .timeseries import SERIES_SCHEMA, Sample, SeriesError, SeriesStore, series
from .tracer import NULL_SPAN, Span, Tracer


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


#: The process-wide metrics registry.  Modules register metrics against
#: it at import time; the registry survives enable/disable/reset cycles
#: so those references never go stale.
metrics = MetricsRegistry(enabled=_env_flag("REPRO_OBS"))

#: The process-wide span tracer.
tracer = Tracer(enabled=_env_flag("REPRO_OBS_TRACE"))

if _env_flag("REPRO_OBS_EVENTS"):
    event_log.enable()

if _env_flag("REPRO_OBS_CAUSAL"):
    causal_log.enable()

if _env_flag("REPRO_OBS_SERIES"):
    series.enable()


def enable(
    trace: bool = False,
    events: bool = False,
    causal: bool = False,
    timeseries: bool = False,
) -> None:
    """Turn on global metrics collection (and optionally spans/events/
    causal traces/the pool time series)."""
    metrics.enable()
    if trace:
        tracer.enable()
    if events:
        event_log.enable()
    if causal:
        causal_log.enable()
    if timeseries:
        series.enable()


def disable() -> None:
    """Turn off all global collection (recorded data is kept)."""
    metrics.disable()
    tracer.disable()
    event_log.disable()
    causal_log.disable()
    series.disable()


def is_enabled() -> bool:
    return metrics.enabled


def reset() -> None:
    """Zero all global metrics and drop all recorded spans/events."""
    metrics.reset()
    tracer.reset()
    event_log.reset()
    causal_log.reset()
    series.reset()


__all__ = [
    "CausalTracer",
    "Counter",
    "EVENTS_SCHEMA",
    "Event",
    "EventLog",
    "EventLogError",
    "Gauge",
    "Histogram",
    "InvariantReport",
    "MetricsRegistry",
    "NULL_SPAN",
    "RunningStats",
    "SERIES_SCHEMA",
    "Sample",
    "SeriesError",
    "SeriesStore",
    "Span",
    "SpanRecord",
    "TRACE_SCHEMA",
    "TraceContext",
    "TraceError",
    "Tracer",
    "Violation",
    "causal_log",
    "check_events",
    "disable",
    "enable",
    "event_log",
    "export",
    "is_enabled",
    "job_trace_id",
    "metrics",
    "reset",
    "series",
    "tracer",
]
