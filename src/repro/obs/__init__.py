"""repro.obs — the observability layer (metrics, tracing, exporters).

"Turning Cluster Management into Data Management" (Robinson & DeWitt)
argues Condor-style pool state should itself be queryable data; this
package applies that to the reproduction.  Every negotiation cycle,
claim, eviction, and ad-store transition is counted or traced here and
exported as machine-readable JSON (the ``repro-obs/1`` schema; see
docs/OBSERVABILITY.md for the metric catalogue and span taxonomy).

Two process-wide singletons carry all instrumentation:

* :data:`metrics` — the global :class:`MetricsRegistry`; instrumented
  modules declare their counters against it at import time;
* :data:`tracer` — the global :class:`Tracer` for nested spans.

Both are **disabled by default**: every mutating call bails on one
boolean check, so an uninstrumented run pays (nearly) nothing.  Turn
them on programmatically::

    from repro import obs
    obs.enable()                  # metrics only
    obs.enable(trace=True)        # metrics + spans
    ... run ...
    print(obs.export.snapshot())  # or obs.export.write_json(path)
    obs.disable(); obs.reset()

or from the environment before the process starts: ``REPRO_OBS=1``
enables metrics, ``REPRO_OBS_TRACE=1`` additionally enables spans.

This package must stay import-cycle free: it is imported by the lowest
layers (classads, sim), so it imports nothing from them.
"""

from __future__ import annotations

import os

from . import export
from .registry import Counter, Gauge, Histogram, MetricsRegistry, RunningStats
from .tracer import NULL_SPAN, Span, Tracer


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


#: The process-wide metrics registry.  Modules register metrics against
#: it at import time; the registry survives enable/disable/reset cycles
#: so those references never go stale.
metrics = MetricsRegistry(enabled=_env_flag("REPRO_OBS"))

#: The process-wide span tracer.
tracer = Tracer(enabled=_env_flag("REPRO_OBS_TRACE"))


def enable(trace: bool = False) -> None:
    """Turn on global metrics collection (and optionally span tracing)."""
    metrics.enable()
    if trace:
        tracer.enable()


def disable() -> None:
    """Turn off all global collection (recorded data is kept)."""
    metrics.disable()
    tracer.disable()


def is_enabled() -> bool:
    return metrics.enabled


def reset() -> None:
    """Zero all global metrics and drop all recorded spans/events."""
    metrics.reset()
    tracer.reset()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "RunningStats",
    "Span",
    "Tracer",
    "disable",
    "enable",
    "export",
    "is_enabled",
    "metrics",
    "reset",
    "tracer",
]
