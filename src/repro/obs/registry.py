"""Metrics registry — the quantitative half of the observability layer.

Three metric kinds, all label-aware:

* :class:`Counter` — monotonically increasing totals (matches made,
  claims rejected, ads expired);
* :class:`Gauge` — last-written values (pool size, queue depth);
* :class:`Histogram` — distribution summaries built on
  :class:`RunningStats` (cycle duration, evaluation steps), so
  million-sample runs never hold per-sample lists.

Design constraints, in order of importance:

1. **Near-zero overhead when disabled.**  Every mutating call first
   checks one boolean attribute on the owning registry and returns —
   no allocation, no dict lookup, no label hashing.  The pool simulator
   dispatches millions of events; instrumentation must be free until
   someone turns it on.
2. **Machine readable.**  :meth:`MetricsRegistry.snapshot` renders the
   whole registry as plain JSON-compatible data (the ``repro-obs/1``
   schema, see docs/OBSERVABILITY.md); exporters only serialize.
3. **Import-cycle free.**  This module sits below every other package
   (classads, sim, condor all import it), so it imports nothing from
   them.  :class:`RunningStats` therefore lives *here* and is
   re-exported by :mod:`repro.sim.metrics` for compatibility.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, Any], ...]


class RunningStats:
    """Numerically stable online mean/variance/min/max (Welford)."""

    __slots__ = ("count", "_mean", "_m2", "minimum", "maximum")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        return self._mean * self.count

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }

    def __repr__(self) -> str:
        if not self.count:
            return "RunningStats(empty)"
        return (
            f"RunningStats(n={self.count}, mean={self.mean:.3f}, "
            f"sd={self.stdev:.3f}, min={self.minimum:.3f}, max={self.maximum:.3f})"
        )


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class _Metric:
    """Common shape: a named family of samples keyed by label sets."""

    kind = "metric"
    __slots__ = ("name", "description", "_registry", "_values")

    def __init__(self, name: str, description: str, registry: "MetricsRegistry"):
        self.name = name
        self.description = description
        self._registry = registry
        self._values: Dict[LabelKey, Any] = {}

    def samples(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": value}
            for key, value in sorted(self._values.items())
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "description": self.description,
            "samples": self.samples(),
        }

    def clear(self) -> None:
        self._values.clear()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, samples={len(self._values)})"


class Counter(_Metric):
    """A monotonically increasing total, optionally split by labels."""

    kind = "counter"
    __slots__ = ()

    def inc(self, amount: float = 1, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels) if labels else ()
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels: Any) -> float:
        """Current total for one label set (0 when never incremented)."""
        return self._values.get(_label_key(labels) if labels else (), 0)

    @property
    def total(self) -> float:
        """Sum across every label set."""
        return sum(self._values.values())


class Gauge(_Metric):
    """A last-written value, optionally split by labels."""

    kind = "gauge"
    __slots__ = ()

    def set(self, value: float, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        self._values[_label_key(labels) if labels else ()] = value

    def add(self, delta: float, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels) if labels else ()
        self._values[key] = self._values.get(key, 0) + delta

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels) if labels else (), 0)


class Histogram(_Metric):
    """A distribution summary (count/sum/mean/stdev/min/max) per label set."""

    kind = "histogram"
    __slots__ = ()

    def observe(self, value: float, **labels: Any) -> None:
        if not self._registry.enabled:
            return
        key = _label_key(labels) if labels else ()
        stats = self._values.get(key)
        if stats is None:
            stats = self._values[key] = RunningStats()
        stats.add(value)

    def stats(self, **labels: Any) -> Optional[RunningStats]:
        return self._values.get(_label_key(labels) if labels else ())

    def samples(self) -> List[Dict[str, Any]]:
        return [
            {"labels": dict(key), "value": stats.to_dict()}
            for key, stats in sorted(self._values.items())
        ]


class MetricsRegistry:
    """A named collection of metrics with one master enable switch.

    Metric construction is idempotent — asking for an existing name
    returns the existing instance (so every module can declare its
    metrics at import time against the shared global registry) — but
    re-registering a name as a different kind is a programming error.
    """

    __slots__ = ("enabled", "_metrics", "_collectors")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[str, _Metric] = {}
        # Flush hooks for hot paths that accumulate in local variables
        # instead of paying a dict update per event (see
        # classads.evaluator); run before any snapshot/reset.
        self._collectors: List[Any] = []

    # -- switches ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every metric; registrations (names/kinds) survive."""
        self.collect()
        for metric in self._metrics.values():
            metric.clear()

    # -- deferred accumulation --------------------------------------------

    def register_collector(self, flush) -> None:
        """Register *flush*, called before every snapshot/totals/reset.

        Lets the hottest call sites batch into module-level variables
        and settle them into real counters only when someone looks.
        """
        self._collectors.append(flush)

    def collect(self) -> None:
        for flush in self._collectors:
            flush()

    # -- registration -----------------------------------------------------

    def _register(self, cls, name: str, description: str):
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, description, self)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, description: str = "") -> Counter:
        return self._register(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._register(Gauge, name, description)

    def histogram(self, name: str, description: str = "") -> Histogram:
        return self._register(Histogram, name, description)

    # -- access -----------------------------------------------------------

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self, prefix: Optional[str] = None) -> List[Dict[str, Any]]:
        """Every metric (optionally name-filtered) as JSON-ready dicts.

        Metrics with no samples are included with an empty ``samples``
        list so the catalogue is discoverable from one snapshot.
        """
        self.collect()
        return [
            metric.to_dict()
            for name, metric in sorted(self._metrics.items())
            if prefix is None or name.startswith(prefix)
        ]

    def totals(self, prefix: Optional[str] = None) -> Dict[str, float]:
        """Collapsed counter totals — the quick-look view."""
        self.collect()
        out: Dict[str, float] = {}
        for name, metric in sorted(self._metrics.items()):
            if prefix is not None and not name.startswith(prefix):
                continue
            if isinstance(metric, Counter) and metric._values:
                out[name] = metric.total
        return out
