"""Cross-daemon causal tracing — the ``repro-trace/1`` stream.

The in-process :mod:`repro.obs.tracer` answers "where did the
wall-clock go inside one call stack"; this module answers "*what chain
of messages* got job 17 from submit to completion" — causality across
daemon boundaries, in the style of Dapper/X-Trace but deterministic.

Mechanics:

* a :class:`TraceContext` is an immutable ``(trace_id, span_id,
  parent_id)`` triple.  Trace ids are **derived, never random**: a
  job's whole lifecycle shares ``job.<owner>.<job-id>``, so a run at a
  fixed seed produces a bitwise-identical trace stream;
* the process-wide :data:`causal_log` records spans into a bounded
  ring and an optional ``repro-trace/1`` JSONL sink, with the same
  off-by-default one-boolean fast path as the event log;
* the simulated network injects a ``send`` span into every outbound
  message that doesn't already carry one (retransmitted or
  chaos-duplicated messages re-send the *same* frozen message object,
  so all copies share the originating span), and activates a ``recv``
  span around the recipient's handler — any message the handler sends
  in turn becomes a causal child, which is how the DAG crosses daemon
  boundaries;
* daemons stitch the gaps the network cannot see: the collector
  remembers the delivery context of each admitted ad, the negotiator
  parents its match notifications on the matched job ad's context, and
  the machine parents its completion/eviction notices on the claim
  that started the job.

Span ids come from a plain per-log counter (reset with the log), so
they are deterministic too.  Activation state is a module-level stack:
the simulator is single-threaded, so dynamic extent *is* causal extent.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, TextIO

import time as _time

TRACE_SCHEMA = "repro-trace/1"

#: Keys every serialized span record carries (``parent`` may be null).
SPAN_KEYS = ("span", "t", "trace", "name")


@dataclass(frozen=True)
class TraceContext:
    """An immutable causal coordinate carried by protocol messages."""

    trace_id: str
    span_id: int
    parent_id: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"trace": self.trace_id, "span": self.span_id, "parent": self.parent_id}


@dataclass(frozen=True)
class SpanRecord:
    """One recorded span: a point on the causal DAG of a trace."""

    span: int
    t: float
    trace: str
    name: str
    parent: Optional[int]
    fields: Dict[str, Any]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span": self.span,
            "t": self.t,
            "trace": self.trace,
            "name": self.name,
            "parent": self.parent,
            "fields": dict(self.fields),
        }

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in self.fields.items())
        parent = "-" if self.parent is None else str(self.parent)
        return (
            f"[{self.t:12.3f}] span={self.span:<6d} parent={parent:<6s} "
            f"{self.trace:<24} {self.name:<28} {details}".rstrip()
        )


class TraceError(Exception):
    """A recorded span stream failed ``repro-trace/1`` validation."""


class _Activation:
    """Context manager deactivating a pushed context on exit."""

    __slots__ = ("_log",)

    def __init__(self, log: "CausalTracer"):
        self._log = log

    def __enter__(self) -> "_Activation":
        return self

    def __exit__(self, *exc) -> None:
        self._log._stack.pop()


class _NullActivation:
    """No-op stand-in returned while the tracer is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullActivation":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_ACTIVATION = _NullActivation()


class CausalTracer:
    """The process-wide causal span log (ring + optional file sink).

    Mirrors :class:`repro.obs.events.EventLog` exactly: disabled by
    default, every mutating call bails on ``self.enabled``, bounded
    ring, streaming JSONL sink with a schema header line.
    """

    __slots__ = (
        "enabled",
        "capacity",
        "_ring",
        "_ids",
        "_stack",
        "_sink",
        "_sink_path",
        "clock",
    )

    def __init__(self, enabled: bool = False, capacity: Optional[int] = 65536):
        self.enabled = enabled
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self._ids = 0
        self._stack: List[TraceContext] = []
        self._sink: Optional[TextIO] = None
        self._sink_path: Optional[str] = None
        self.clock: Callable[[], float] = _time.time

    # -- switches ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop recorded spans and restart span numbering; sinks stay open."""
        self._ring.clear()
        self._ids = 0
        self._stack.clear()
        self.clock = _time.time

    def set_clock(self, clock: Callable[[], float]) -> None:
        self.clock = clock

    # -- sinks ------------------------------------------------------------

    def open_file(self, path: str) -> str:
        """Stream every subsequent span to *path* as JSON lines."""
        self.close_file()
        self._sink = open(path, "w")
        self._sink_path = path
        json.dump({"schema": TRACE_SCHEMA}, self._sink)
        self._sink.write("\n")
        return path

    def close_file(self) -> Optional[str]:
        path = self._sink_path
        if self._sink is not None:
            self._sink.close()
        self._sink = None
        self._sink_path = None
        return path

    @property
    def sink_path(self) -> Optional[str]:
        return self._sink_path

    # -- context ----------------------------------------------------------

    def current(self) -> Optional[TraceContext]:
        """The active context, or ``None`` outside any activation."""
        return self._stack[-1] if self._stack else None

    def activate(self, ctx: Optional[TraceContext]):
        """Make *ctx* the active context for a ``with`` block.

        ``None`` contexts (message predates tracing, or tracing is off)
        activate nothing — the null manager costs one attribute check.
        """
        if not self.enabled or ctx is None:
            return _NULL_ACTIVATION
        self._stack.append(ctx)
        return _Activation(self)

    # -- recording --------------------------------------------------------

    def start_trace(self, trace_id: str, name: str, **fields: Any) -> Optional[TraceContext]:
        """Open a new root span for *trace_id*; returns its context
        (``None`` while disabled)."""
        if not self.enabled:
            return None
        return self.span(name, parent=TraceContext(trace_id, 0, None), root=True, **fields)

    def span(
        self,
        name: str,
        parent: Optional[TraceContext] = None,
        root: bool = False,
        **fields: Any,
    ) -> Optional[TraceContext]:
        """Record one span and return its context (``None`` while disabled).

        *parent* supplies the trace id; a root span records no parent
        link.  With no parent and no active context the span is dropped
        — orphan spans are a bug, not data.
        """
        if not self.enabled:
            return None
        if parent is None:
            parent = self.current()
            if parent is None:
                return None
        self._ids += 1
        ctx = TraceContext(parent.trace_id, self._ids, None if root else parent.span_id)
        record = SpanRecord(
            ctx.span_id, self.clock(), ctx.trace_id, name, ctx.parent_id, fields
        )
        self._ring.append(record)
        if self._sink is not None:
            json.dump(record.to_dict(), self._sink, default=str)
            self._sink.write("\n")
        return ctx

    # -- queries (over the in-memory ring) --------------------------------

    def spans(self) -> List[SpanRecord]:
        return list(self._ring)

    def of_trace(self, trace_id: str) -> List[SpanRecord]:
        return [s for s in self._ring if s.trace == trace_id]

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self._ring)

    def render(self, limit: Optional[int] = None) -> str:
        spans = self.spans()
        if limit is not None:
            spans = spans[-limit:]
        return "\n".join(str(s) for s in spans)


#: The process-wide causal tracer.  Stays disabled (and therefore free)
#: until someone turns it on — see :func:`repro.obs.enable`.
causal_log = CausalTracer(enabled=False)


def job_trace_id(owner: str, job_id: Any) -> str:
    """The deterministic trace id grouping one job's whole lifecycle."""
    return f"job.{owner}.{job_id}"


# ---------------------------------------------------------------------------
# serialization: repro-trace/1 JSONL


def validate_record(record: Dict[str, Any]) -> None:
    """Raise :class:`TraceError` unless *record* is a valid span row."""
    if not isinstance(record, dict):
        raise TraceError(f"span record must be an object, got {type(record).__name__}")
    for key in SPAN_KEYS:
        if key not in record:
            raise TraceError(f"span record missing {key!r}: {record}")
    if not isinstance(record["span"], int):
        raise TraceError(f"span must be an integer: {record}")
    if not isinstance(record["t"], (int, float)) or isinstance(record["t"], bool):
        raise TraceError(f"t must be a number: {record}")
    if not isinstance(record["trace"], str) or not record["trace"]:
        raise TraceError(f"trace must be a non-empty string: {record}")
    if not isinstance(record["name"], str) or not record["name"]:
        raise TraceError(f"name must be a non-empty string: {record}")
    parent = record.get("parent")
    if parent is not None and not isinstance(parent, int):
        raise TraceError(f"parent must be an integer or null: {record}")
    if not isinstance(record.get("fields", {}), dict):
        raise TraceError(f"fields must be an object: {record}")


def read_jsonl(path: str) -> List[SpanRecord]:
    """Load and validate a ``repro-trace/1`` JSONL file."""
    spans: List[SpanRecord] = []
    with open(path) as handle:
        first = handle.readline()
        if not first.strip():
            raise TraceError(f"{path}: empty trace stream")
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise TraceError(f"{path}:1: not JSON: {exc}") from exc
        if not isinstance(header, dict) or header.get("schema") != TRACE_SCHEMA:
            raise TraceError(
                f"{path}:1: expected {{'schema': '{TRACE_SCHEMA}'}} header, got {first.strip()!r}"
            )
        for number, line in enumerate(handle, 2):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{number}: not JSON: {exc}") from exc
            try:
                validate_record(record)
            except TraceError as exc:
                raise TraceError(f"{path}:{number}: {exc}") from exc
            spans.append(
                SpanRecord(
                    record["span"],
                    record["t"],
                    record["trace"],
                    record["name"],
                    record.get("parent"),
                    record.get("fields", {}),
                )
            )
    return spans


def check_dag(spans: List[SpanRecord]) -> Dict[str, List[SpanRecord]]:
    """Group *spans* by trace and verify each trace is one connected DAG.

    Raises :class:`TraceError` on an orphan span (a non-root parent link
    pointing outside the trace) or a trace with no root.  Returns the
    per-trace grouping for further analysis.
    """
    by_trace: Dict[str, List[SpanRecord]] = {}
    for span in spans:
        by_trace.setdefault(span.trace, []).append(span)
    for trace_id, members in by_trace.items():
        ids = {s.span for s in members}
        roots = [s for s in members if s.parent is None]
        if not roots:
            raise TraceError(f"trace {trace_id!r} has no root span")
        for span in members:
            if span.parent is not None and span.parent not in ids:
                raise TraceError(
                    f"trace {trace_id!r}: span {span.span} ({span.name}) has "
                    f"orphan parent {span.parent}"
                )
    return by_trace
