"""Simulated message network — S13 in DESIGN.md.

The paper's substrate was a real campus network; what the matchmaking
protocols are claimed robust against is its *misbehaviour*: delay,
reordering, loss, and unreachable peers.  This network reproduces those
behaviours deterministically:

* each message is delivered after ``latency + U(0, jitter)`` seconds —
  jitter makes reordering possible;
* each message is independently dropped with probability ``loss``;
* messages to a crashed (deregistered or downed) node vanish, as UDP
  datagrams to a dead host would;
* an installed :class:`~repro.sim.chaos.ChaosController` is consulted
  on every send and may additionally drop the message (time-windowed
  loss, asymmetric partitions) or deliver extra copies (duplication),
  each copy with an independent latency draw.

Handlers are ``fn(message) -> None`` callables registered per contact
address, mirroring the daemons listening on their command ports.

Throughput: the clean configuration (no chaos, no loss, no jitter —
the steady-state benchmark shape) takes an allocation-free send fast
path that schedules ``(deliver, message)`` directly on the kernel; see
:meth:`Network.send`.  Eligibility is precomputed into ``_fast_send``
and recomputed on every configuration change, and the
``REPRO_NO_FASTKERNEL`` kill-switch forces the reference slow path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..obs import metrics as _metrics
from ..obs.causal import causal_log as _causal
from . import engine as _engine
from .engine import Simulator
from .rng import RngStream

Handler = Callable[[object], None]

_NET_DUPLICATED = _metrics.counter(
    "net.duplicated", "extra message copies injected by chaos duplication"
)
_NET_DROPPED_PARTITION = _metrics.counter(
    "net.dropped_partition", "messages dropped by chaos partition windows"
)
_NET_BYTES_SENT = _metrics.gauge(
    "net.bytes_sent", "cumulative estimated bytes handed to the network"
)


@dataclass
class NetworkStats:
    """Delivery accounting (failure-injection tests assert on these)."""

    sent: int = 0
    delivered: int = 0
    dropped_loss: int = 0
    dropped_no_recipient: int = 0
    dropped_down: int = 0
    dropped_partition: int = 0
    duplicated: int = 0
    #: Estimated wire bytes of accepted sends (``Message.wire_size``).
    #: Sizing a message costs a serialization-shaped walk, so it runs
    #: only while the metrics registry is enabled *at send time*:
    #: enable metrics before the run or the total undercounts, and
    #: messages without a ``wire_size`` method contribute 0.  The
    #: ``net.bytes_sent`` gauge mirrors this field under the same rule.
    bytes_sent: int = 0


class Network:
    """Message fabric between agents on one simulator."""

    def __init__(
        self,
        sim: Simulator,
        rng: Optional[RngStream] = None,
        latency: float = 0.050,
        jitter: float = 0.0,
        loss: float = 0.0,
    ):
        if not 0.0 <= loss < 1.0:
            raise ValueError("loss must be in [0, 1)")
        if latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be non-negative")
        self.sim = sim
        self.rng = (rng or RngStream(0)).fork("network")
        self.latency = latency
        self._jitter = jitter
        self._loss = loss
        self.stats = NetworkStats()
        self._handlers: Dict[str, Handler] = {}
        self._down: set = set()
        self._chaos = None  # Optional[repro.sim.chaos.ChaosController]
        self._deliver_cb = self._deliver  # one bound method for every send
        self._recompute_fast_path()

    # Loss and jitter are exposed as properties so direct configuration
    # writes (tests and benchmarks mutate them mid-run) keep the
    # precomputed fast-path eligibility flag honest.

    @property
    def jitter(self) -> float:
        return self._jitter

    @jitter.setter
    def jitter(self, value: float) -> None:
        self._jitter = value
        self._recompute_fast_path()

    @property
    def loss(self) -> float:
        return self._loss

    @loss.setter
    def loss(self, value: float) -> None:
        self._loss = value
        self._recompute_fast_path()

    def _recompute_fast_path(self) -> None:
        """Recomputed on every config change (chaos install, loss/jitter
        writes): when true, sends need no randomness and no chaos
        consult, so the fixed-latency fast path is eligible."""
        self._fast_send = self._chaos is None and not self._loss and not self._jitter

    def install_chaos(self, controller) -> None:
        """Route every subsequent send through *controller* (see
        :mod:`repro.sim.chaos`); ``None`` uninstalls."""
        self._chaos = controller
        self._recompute_fast_path()

    # -- membership ------------------------------------------------------

    def register(self, address: str, handler: Handler) -> None:
        """Attach *handler* to *address* (replacing any previous one)."""
        self._handlers[address] = handler
        self._down.discard(address)

    def deregister(self, address: str) -> None:
        self._handlers.pop(address, None)

    def set_down(self, address: str, down: bool = True) -> None:
        """Crash (or revive) a node without losing its registration."""
        if down:
            self._down.add(address)
        else:
            self._down.discard(address)

    def revive(self, address: str) -> None:
        """Bring a downed node back (schedulable: ``schedule(at, net.revive,
        address)`` needs no closure, unlike ``set_down(..., down=False)``)."""
        self._down.discard(address)

    def is_down(self, address: str) -> bool:
        return address in self._down

    # -- transmission ------------------------------------------------------

    def send(self, message) -> None:
        """Queue *message* for delivery to ``message.recipient``.

        A down *sender* cannot transmit (a dead process sends nothing);
        loss is decided at send time, delivery state at delivery time —
        a message in flight to a node that crashes mid-flight is lost,
        like a datagram to a dead host.

        Fast path: with no chaos controller, loss, or jitter configured
        (``_fast_send``), no node down, and the causal/metrics layers
        off, a send is exactly "deliver after ``latency``" — one direct
        ``(deliver, message)`` schedule, no closure, no RNG draw, no
        getattr chain.  The conditions guarantee the slow path would
        have made byte-identical decisions, so the fast path is pure
        strength reduction; ``REPRO_NO_FASTKERNEL=1`` disables it along
        with the kernel fast path.
        """
        if (
            self._fast_send
            and not self._down
            and not _causal.enabled
            and not _metrics.enabled
            and _engine._fast_kernel
        ):
            self.stats.sent += 1
            self.sim.schedule(self.latency, self._deliver_cb, message)
            return
        self._send_slow(message)

    def _send_slow(self, message) -> None:
        sender = getattr(message, "sender", None)
        if sender in self._down:
            self.stats.dropped_down += 1
            return
        if _causal.enabled and getattr(message, "ctx", None) is None:
            # Causal injection happens once per message *object*: the
            # send span parents on whatever context is active (a recv
            # span mid-handler, a daemon-stitched claim/job context) and
            # rides the message — so blind retransmits and chaos
            # duplicates of this object all share the originating span.
            ctx = _causal.span(
                f"send.{type(message).__name__}", frm=sender, to=message.recipient
            )
            if ctx is not None and hasattr(message, "ctx"):
                object.__setattr__(message, "ctx", ctx)
        self.stats.sent += 1
        if _metrics.enabled:
            sizer = getattr(message, "wire_size", None)
            if sizer is not None:
                self.stats.bytes_sent += sizer()
                _NET_BYTES_SENT.set(self.stats.bytes_sent)
        if self._loss and self.rng.bernoulli(self._loss):
            self.stats.dropped_loss += 1
            return
        if self._chaos is not None:
            cause, copies = self._chaos.send_verdict(
                sender or "", message.recipient, self.sim.now
            )
            if cause == "partition":
                self.stats.dropped_partition += 1
                _NET_DROPPED_PARTITION.inc()
                return
            if cause == "loss":
                self.stats.dropped_loss += 1
                return
            for _ in range(copies):
                self.stats.duplicated += 1
                _NET_DUPLICATED.inc()
                self.sim.schedule(self._delay(), self._deliver_cb, message)
        self.sim.schedule(self._delay(), self._deliver_cb, message)

    def _delay(self) -> float:
        delay = self.latency
        if self._jitter:
            delay += self.rng.uniform(0.0, self._jitter)
        return delay

    def _deliver(self, message) -> None:
        recipient = message.recipient
        if recipient in self._down:
            self.stats.dropped_down += 1
            return
        handler = self._handlers.get(recipient)
        if handler is None:
            self.stats.dropped_no_recipient += 1
            return
        self.stats.delivered += 1
        if _causal.enabled:
            ctx = getattr(message, "ctx", None)
            if ctx is not None:
                # Each delivered copy gets its own recv span under the
                # shared send span, and the handler runs with it active —
                # anything the handler sends becomes a causal child, which
                # is how the DAG crosses daemon boundaries.
                rctx = _causal.span(
                    f"recv.{type(message).__name__}", parent=ctx, at=recipient
                )
                with _causal.activate(rctx):
                    handler(message)
                return
        handler(message)
