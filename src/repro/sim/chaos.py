"""Deterministic fault injection — seeded, time-scheduled chaos plans.

The paper's Section 3.2 claims matchmaking tolerates a misbehaving
substrate because correctness is restored end-to-end at claim time.
This module supplies the misbehaviour, reproducibly: a declarative
:class:`ChaosPlan` describes *when* and *where* the network lies and
*which* daemons die, and a :class:`ChaosController` applies the plan to
a :class:`~repro.sim.network.Network` and a
:class:`~repro.sim.engine.Simulator`.

Fault primitives (all windows are half-open ``[start, end)`` in
simulated seconds; ``src``/``dst`` are :mod:`fnmatch` patterns over
contact addresses such as ``startd@m0`` or ``collector@*``):

* :class:`LossWindow` — extra Bernoulli message loss, optionally scoped
  to a sender/recipient pattern pair;
* :class:`PartitionWindow` — a *one-directional* cut: every matching
  ``src → dst`` message is dropped while ``dst → src`` traffic still
  flows (the asymmetric-partition case that breaks naive protocols);
* :class:`DuplicationWindow` — each matching send also delivers
  ``copies`` extra replicas with independent latency draws, exercising
  receiver-side duplicate suppression;
* :class:`CrashWindow` — a daemon crash (and optional restart) applied
  through crash hooks registered by the harness; unmatched targets fall
  back to downing the address on the network.

All randomness comes from a stream forked off the plan's (or the
harness's) seed, so a given plan replays identically and never perturbs
the draws of other components.  Named fixed-seed profiles back the CI
chaos matrix: ``lossy``, ``partition``, ``cm-crash`` (see
:func:`chaos_profile`); ``REPRO_CHAOS=<profile>`` injects one into
every :class:`~repro.condor.pool.CondorPool` via :func:`plan_from_env`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from fnmatch import fnmatchcase
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

from ..obs import event_log as _events
from .rng import RngStream


@dataclass(frozen=True)
class LossWindow:
    """Extra message loss of probability ``loss`` during [start, end)."""

    start: float
    end: float
    loss: float
    src: str = "*"
    dst: str = "*"


@dataclass(frozen=True)
class PartitionWindow:
    """One-directional cut: ``src → dst`` messages drop during
    [start, end); the reverse direction is untouched."""

    start: float
    end: float
    src: str
    dst: str


@dataclass(frozen=True)
class DuplicationWindow:
    """Each send during [start, end) gains ``copies`` extra deliveries
    with probability ``probability``."""

    start: float
    end: float
    probability: float
    copies: int = 1


@dataclass(frozen=True)
class CrashWindow:
    """Crash ``target`` at ``at``; restart after ``duration`` (None =
    never).  ``target`` is a crash-hook key, an fnmatch pattern over
    hook keys (``startd@*``), or a bare network address."""

    target: str
    at: float
    duration: Optional[float] = None


@dataclass(frozen=True)
class ChaosPlan:
    """A complete, seeded fault schedule."""

    name: str = "custom"
    seed: int = 0
    losses: Tuple[LossWindow, ...] = ()
    partitions: Tuple[PartitionWindow, ...] = ()
    duplications: Tuple[DuplicationWindow, ...] = ()
    crashes: Tuple[CrashWindow, ...] = ()

    def validate(self) -> None:
        for w in self.losses:
            if not 0.0 <= w.loss < 1.0:
                raise ValueError(f"loss window probability must be in [0, 1): {w}")
            if w.end <= w.start:
                raise ValueError(f"empty loss window: {w}")
        for w in self.partitions:
            if w.end <= w.start:
                raise ValueError(f"empty partition window: {w}")
        for w in self.duplications:
            if not 0.0 <= w.probability <= 1.0:
                raise ValueError(f"duplication probability must be in [0, 1]: {w}")
            if w.copies < 1:
                raise ValueError(f"duplication copies must be >= 1: {w}")
            if w.end <= w.start:
                raise ValueError(f"empty duplication window: {w}")
        for c in self.crashes:
            if c.duration is not None and c.duration <= 0:
                raise ValueError(f"crash duration must be positive: {c}")


#: (crash, restart) callables per target key, e.g. {"cm": (...), "startd@m0": (...)}
CrashHooks = Dict[str, Tuple[Callable[[], None], Callable[[], None]]]


def _emit_partition_open(w: PartitionWindow) -> None:
    _events.emit("net.partition", action="open", src=w.src, dst=w.dst, until=w.end)


def _emit_partition_close(w: PartitionWindow) -> None:
    _events.emit("net.partition", action="close", src=w.src, dst=w.dst)


class ChaosController:
    """Applies a :class:`ChaosPlan` to one simulator + network."""

    def __init__(self, plan: ChaosPlan, rng: Optional[RngStream] = None):
        plan.validate()
        self.plan = plan
        self.rng = (rng if rng is not None else RngStream(plan.seed)).fork("chaos")

    # -- the per-send consult (called by Network.send) --------------------

    def send_verdict(self, sender: str, recipient: str, now: float):
        """Returns ``(drop_cause, extra_copies)`` for one send attempt;
        ``drop_cause`` is ``"partition"``, ``"loss"``, or None."""
        for w in self.plan.partitions:
            if (
                w.start <= now < w.end
                and fnmatchcase(sender, w.src)
                and fnmatchcase(recipient, w.dst)
            ):
                return "partition", 0
        for w in self.plan.losses:
            if (
                w.start <= now < w.end
                and fnmatchcase(sender, w.src)
                and fnmatchcase(recipient, w.dst)
                and self.rng.bernoulli(w.loss)
            ):
                return "loss", 0
        copies = 0
        for w in self.plan.duplications:
            if w.start <= now < w.end and self.rng.bernoulli(w.probability):
                copies += w.copies
        return None, copies

    # -- schedule-driven faults -------------------------------------------

    def arm(self, sim, net, crash_hooks: Optional[CrashHooks] = None) -> None:
        """Install the plan: network consults, partition edge events,
        and the crash/restart schedule.

        Everything scheduled here uses the kernel's argument-passing
        API (``schedule_at(t, fn, arg)``) — no per-window closures, so
        the event-queue anatomy check in ``bench_engine.py`` can assert
        a closure-free queue even with a chaos plan armed.
        """
        net.install_chaos(self)
        for w in self.plan.partitions:
            sim.schedule_at(w.start, _emit_partition_open, w)
            sim.schedule_at(w.end, _emit_partition_close, w)
        hooks = crash_hooks or {}
        for c in self.plan.crashes:
            crash_fns, restart_fns = self._resolve(c.target, net, hooks)
            sim.schedule_at(c.at, self._fire_crash, (c.target, crash_fns))
            if c.duration is not None:
                sim.schedule_at(
                    c.at + c.duration, self._fire_restart, (c.target, restart_fns)
                )

    def _fire_crash(self, action) -> None:
        target, fns = action
        _events.emit("chaos.crash", target=target)
        for fn in fns:
            fn()

    def _fire_restart(self, action) -> None:
        target, fns = action
        _events.emit("chaos.restart", target=target)
        for fn in fns:
            fn()

    def _resolve(
        self, target: str, net, hooks: CrashHooks
    ) -> Tuple[List[Callable[[], None]], List[Callable[[], None]]]:
        """The (crash, restart) callable lists for *target*: matching
        crash hooks, or — when no hook knows the target — downing it as
        a plain network address."""
        matched = [
            hooks[key] for key in sorted(hooks) if key == target or fnmatchcase(key, target)
        ]
        if matched:
            return [fn for fn, _ in matched], [fn for _, fn in matched]
        return [partial(net.set_down, target)], [partial(net.set_down, target, False)]


# ---------------------------------------------------------------------------
# named fixed-seed profiles (the CI chaos matrix)

PROFILES = ("lossy", "partition", "cm-crash")


def chaos_profile(name: str, horizon: float = 3600.0) -> ChaosPlan:
    """A named, fixed-seed plan scaled to ``horizon`` simulated seconds.

    * ``lossy`` — two sustained loss windows (8% then 10%) plus 3%
      duplication throughout; exercises retransmission and duplicate
      suppression with no structural faults.
    * ``partition`` — background 2% loss and duplication plus two
      asymmetric cuts: machines→collector (ads silently vanish while
      match traffic flows), then schedds→machines (claim requests drop
      while responses would deliver).
    * ``cm-crash`` — 5% loss and duplication throughout, one mid-run
      central-manager outage, and one machine crash/restart (the
      acceptance scenario: leases + retries must recover everything).
    """
    h = float(horizon)
    if h <= 0:
        raise ValueError("horizon must be positive")
    if name == "lossy":
        return ChaosPlan(
            name="lossy",
            seed=101,
            losses=(
                LossWindow(0.05 * h, 0.45 * h, 0.08),
                LossWindow(0.55 * h, 0.85 * h, 0.10),
            ),
            duplications=(DuplicationWindow(0.0, h, 0.03),),
        )
    if name == "partition":
        return ChaosPlan(
            name="partition",
            seed=202,
            losses=(LossWindow(0.0, h, 0.02),),
            partitions=(
                PartitionWindow(0.15 * h, 0.35 * h, "startd@*", "collector@*"),
                PartitionWindow(0.50 * h, 0.65 * h, "schedd@*", "startd@*"),
            ),
            duplications=(DuplicationWindow(0.0, h, 0.02),),
        )
    if name == "cm-crash":
        return ChaosPlan(
            name="cm-crash",
            seed=303,
            losses=(LossWindow(0.0, h, 0.05),),
            duplications=(DuplicationWindow(0.0, h, 0.03),),
            crashes=(
                CrashWindow("cm", 0.25 * h, 0.20 * h),
                CrashWindow("startd@m0", 0.45 * h, 0.25 * h),
            ),
        )
    raise ValueError(f"unknown chaos profile {name!r} (known: {', '.join(PROFILES)})")


def plan_from_env(horizon: float = 3600.0) -> Optional[ChaosPlan]:
    """The profile named by ``REPRO_CHAOS``, or None when unset.

    ``REPRO_CHAOS=<profile>[:<seed>]`` optionally overrides the
    profile's fixed seed."""
    raw = os.environ.get("REPRO_CHAOS", "").strip()
    if not raw:
        return None
    name, _, seed = raw.partition(":")
    plan = chaos_profile(name, horizon=horizon)
    if seed:
        plan = replace(plan, seed=int(seed))
    return plan
