"""Discrete-event simulation engine — S12 in DESIGN.md.

A minimal, deterministic DES kernel: a binary-heap event queue keyed by
(time, sequence), so simultaneous events fire in schedule order and every
run is exactly reproducible.  This is the substrate on which the
"distributed" system runs; the paper's campus pool becomes agents
exchanging messages over :mod:`repro.sim.network` on this clock.

Design notes (per the HPC guides: simple first, measured later): event
dispatch is a plain callback call — profiling full-pool runs shows >95%
of time in classad evaluation, not the kernel, so no further cleverness
is warranted here.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..obs import event_log as _event_log, metrics as _metrics
from ..obs.causal import causal_log as _causal_log
from ..obs.timeseries import series as _series

# The event counter is the denominator for throughput (events per
# wall-second); step() bumps it behind the registry's one-boolean guard
# so a disabled registry costs a single attribute check per event.
_SIM_EVENTS = _metrics.counter("sim.events", "simulation events dispatched")


@dataclass(frozen=True)
class EventHandle:
    """Returned by schedule(); lets the caller cancel the event."""

    time: float
    sequence: int


class Simulator:
    """The simulation clock and event queue.

    Typical agent code::

        sim = Simulator()
        sim.schedule(5.0, lambda: print("at t=5"))
        sim.every(60.0, advertise)          # periodic timer
        sim.run_until(3600.0)
    """

    def __init__(self, start: float = 0.0):
        self.now = start
        self._heap: List = []  # (time, seq, callback) — callback None if cancelled
        self._sequence = itertools.count()
        self._cancelled: set = set()
        self.events_processed = 0
        # Forensics: the newest simulator becomes the clock of every
        # recorded stream (events, causal spans, pool series), so
        # everything recorded during a simulation is stamped with
        # simulated time.  Each stream's reset() restores the wall clock.
        _event_log.set_clock(lambda: self.now)
        _causal_log.set_clock(lambda: self.now)
        _series.set_clock(lambda: self.now)
        _event_log.emit("sim.started", t=self.now)

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run *callback* after *delay* simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run *callback* at absolute simulated *time*."""
        if time < self.now:
            raise ValueError(f"cannot schedule into the past ({time} < {self.now})")
        seq = next(self._sequence)
        heapq.heappush(self._heap, (time, seq, callback))
        return EventHandle(time, seq)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event; firing a cancelled event is a no-op."""
        self._cancelled.add(handle.sequence)

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        start_delay: Optional[float] = None,
    ) -> "PeriodicTask":
        """Run *callback* every *interval* seconds until stopped.

        The first firing happens after ``start_delay`` (default: one full
        interval), matching how Condor daemons start their timers.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        task = PeriodicTask(self, interval, callback)
        task._arm(interval if start_delay is None else start_delay)
        return task

    # -- execution ---------------------------------------------------------

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None."""
        while self._heap and self._heap[0][1] in self._cancelled:
            _, seq, _ = heapq.heappop(self._heap)
            self._cancelled.discard(seq)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Process one event; False when the queue is empty."""
        when = self.peek_time()
        if when is None:
            return False
        time, seq, callback = heapq.heappop(self._heap)
        if time < self.now:
            raise AssertionError("causality violation: event in the past")
        self.now = time
        self.events_processed += 1
        _SIM_EVENTS.inc()
        callback()
        return True

    def run_until(self, time: float) -> None:
        """Process events up to and including simulated *time*."""
        while True:
            when = self.peek_time()
            if when is None or when > time:
                break
            self.step()
        self.now = max(self.now, time)

    def run(self, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains (or *max_events*)."""
        processed = 0
        while self.step():
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        return processed

    def pending(self) -> int:
        """Number of pending (non-cancelled) events."""
        return sum(1 for _, seq, _ in self._heap if seq not in self._cancelled)


class PeriodicTask:
    """A repeating timer created by :meth:`Simulator.every`."""

    def __init__(self, sim: Simulator, interval: float, callback: Callable[[], None]):
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.stopped = False
        self.firings = 0
        self._handle: Optional[EventHandle] = None

    def _arm(self, delay: float) -> None:
        self._handle = self.sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if self.stopped:
            return
        self.firings += 1
        self.callback()
        if not self.stopped:  # the callback may have stopped us
            self._arm(self.interval)

    def stop(self) -> None:
        self.stopped = True
        if self._handle is not None:
            self.sim.cancel(self._handle)
