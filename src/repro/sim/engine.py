"""Discrete-event simulation engine — S12 in DESIGN.md.

A minimal, deterministic DES kernel: events fire in ``(time, sequence)``
order, so simultaneous events fire in schedule order and every run is
exactly reproducible.  This is the substrate on which the "distributed"
system runs; the paper's campus pool becomes agents exchanging messages
over :mod:`repro.sim.network` on this clock.

Profile history: the seed's docstring claimed >95% of full-pool time in
classad evaluation, so "no further cleverness is warranted here".  PRs
3–8 removed that 95% (compilation, batching, parallel scoring, refresh
ads), which inverted the profile — steady-state runs now spend their
time in the kernel itself.  The soft-state design makes that load
structural: every agent re-advertises every period, every message is a
scheduled event, and same-instant delivery bursts are the common case,
not the corner case.  So the kernel now has a *fast path* tuned for
exactly those regular shapes:

* heap entries are mutable ``[time, seq, fn, arg]`` records — callers
  pass ``schedule(delay, fn, arg)`` and no per-event closure is built;
* runs of same-timestamp events (an advertising burst, a delivery
  fan-out) land in a FIFO *bucket* instead of the heap: one O(1)
  append/popleft per event instead of an O(log n) push/pop pair;
* cancellation marks the entry in place (``fn = None``), which both
  makes ``pending()`` an O(1) live counter and removes the old
  ``_cancelled`` set — cancelling an already-fired handle is a no-op
  instead of an unbounded leak;
* the per-event ``sim.events`` counter bump is hoisted behind the
  metrics registry's ``enabled`` flag.

The ``(time, seq)`` total order is load-bearing (every differential,
chaos, and tracing suite depends on it), so the pre-optimization kernel
survives as the *reference heap*: ``REPRO_NO_FASTKERNEL=1`` (or
:func:`set_fast_kernel`\\ ``(False)``) routes every simulator — and the
network's send fast path — back to it, and
``tests/sim/test_engine_property.py`` drives both kernels through
interleaved schedule/cancel/step sequences asserting identical firing
order.  ``benchmarks/bench_engine.py`` measures the gap and CI gates it
(``engine_event_throughput``).
"""

from __future__ import annotations

import heapq
import itertools
import os
from collections import deque
from typing import Any, Callable, List, Optional

from ..obs import event_log as _event_log, metrics as _metrics
from ..obs.causal import causal_log as _causal_log
from ..obs.timeseries import series as _series

# The event counter is the denominator for throughput (events per
# wall-second); step() bumps it only while the registry is enabled, so
# a disabled registry costs a single attribute check per event.
_SIM_EVENTS = _metrics.counter("sim.events", "simulation events dispatched")
_SIM_EVENT_RATE = _metrics.gauge(
    "sim.events_per_wall_second",
    "raw kernel dispatch throughput, recorded by benchmarks/bench_engine.py",
)

#: Sentinel: "call ``fn`` with no argument" (``None`` is a valid arg).
_NO_ARG = object()


# ---------------------------------------------------------------------------
# kill-switch (mirrors REPRO_NO_COMPILE / REPRO_NO_BATCH / REPRO_NO_REFRESH)


def _env_disabled() -> bool:
    return os.environ.get("REPRO_NO_FASTKERNEL", "").strip().lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


_fast_kernel = not _env_disabled()


def fast_kernel_enabled() -> bool:
    """Whether new simulators use the fast kernel (see
    ``REPRO_NO_FASTKERNEL``).  Also consulted per-send by the network's
    allocation-free fast path, so throwing the switch routes *all*
    substrate shortcuts back to the reference code."""
    return _fast_kernel


def set_fast_kernel(enabled: Optional[bool]) -> None:
    """Override the kill-switch; ``None`` re-reads the environment.

    Affects simulators constructed afterwards (and the network fast
    path immediately); an existing :class:`Simulator` keeps the kernel
    it was born with.
    """
    global _fast_kernel
    _fast_kernel = (not _env_disabled()) if enabled is None else bool(enabled)


class EventHandle(list):
    """Returned by schedule(); lets the caller cancel the event.

    In the fast kernel the handle *is* the queue entry — a mutable
    ``[time, seq, fn, arg]`` list — so scheduling an event allocates
    exactly one object.  The reference kernel keeps immutable tuples in
    its heap and hands back a two-element ``[time, seq]`` handle.
    Ordering is the inherited elementwise list comparison: sequence
    numbers are unique, so two entries always order on ``(time, seq)``
    and callbacks are never compared.
    """

    __slots__ = ()

    @property
    def time(self) -> float:
        return self[0]

    @property
    def sequence(self) -> int:
        return self[1]

    def __hash__(self) -> int:  # identity on (time, seq); both are frozen
        return hash((self[0], self[1]))

    def __repr__(self) -> str:
        return f"EventHandle(time={self[0]!r}, sequence={self[1]!r})"


class Simulator:
    """The simulation clock and event queue.

    Typical agent code::

        sim = Simulator()
        sim.schedule(5.0, callback)          # fn called as callback()
        sim.schedule(5.0, handler, message)  # fn called as handler(message)
        sim.every(60.0, advertise)           # periodic timer
        sim.run_until(3600.0)

    Two kernels share this API (see the module docstring): the fast
    bucketed kernel and the reference heap.  ``fast=None`` (the
    default) consults :func:`fast_kernel_enabled`.
    """

    def __init__(self, start: float = 0.0, fast: Optional[bool] = None):
        self.now = start
        self._fast = _fast_kernel if fast is None else bool(fast)
        self._sequence = itertools.count()
        self.events_processed = 0
        if self._fast:
            # Fast kernel: mutable [time, seq, fn, arg] entries; a FIFO
            # bucket absorbs runs of same-timestamp schedules; _pending
            # is a live counter maintained by schedule/cancel/step.
            # Neither container is ever rebound — run loops hold locals.
            self._heap: List[list] = []
            self._bucket: deque = deque()
            self._bucket_time: float = start
            self._last_time: Optional[float] = None
            self._pending_count = 0
        else:
            # Reference heap: immutable (time, seq, fn, arg) tuples plus
            # a set of live (not yet fired, not cancelled) sequences.
            self._heap = []
            self._live: set = set()
        # Forensics: the newest simulator becomes the clock of every
        # recorded stream (events, causal spans, pool series), so
        # everything recorded during a simulation is stamped with
        # simulated time.  Each stream's reset() restores the wall clock.
        _event_log.set_clock(lambda: self.now)
        _causal_log.set_clock(lambda: self.now)
        _series.set_clock(lambda: self.now)
        _event_log.emit("sim.started", t=self.now)

    # -- scheduling ------------------------------------------------------

    def schedule(
        self, delay: float, fn: Callable, arg: Any = _NO_ARG
    ) -> EventHandle:
        """Run *fn* after *delay* simulated seconds.

        With *arg* given the event fires as ``fn(arg)``; without it, as
        ``fn()`` — so hot callers pass a bound method plus its argument
        instead of allocating a closure per event.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        if not self._fast:
            return self.schedule_at(self.now + delay, fn, arg)
        # Inlined fast-path schedule_at (delay >= 0 already proves the
        # past-check): this is the hottest call in a full-pool run.
        time = self.now + delay
        entry = EventHandle((time, next(self._sequence), fn, arg))
        bucket = self._bucket
        if bucket:
            if time == self._bucket_time:
                bucket.append(entry)
            else:
                heapq.heappush(self._heap, entry)
        elif time == self._last_time:
            # Second same-instant schedule in a row: a run is starting,
            # open the bucket for it.  (The first went to the heap with
            # a smaller sequence, so ordering still holds.)
            self._bucket_time = time
            bucket.append(entry)
        else:
            self._last_time = time
            heapq.heappush(self._heap, entry)
        self._pending_count += 1
        return entry

    def schedule_at(
        self, time: float, fn: Callable, arg: Any = _NO_ARG
    ) -> EventHandle:
        """Run *fn* at absolute simulated *time* (see :meth:`schedule`)."""
        if time < self.now:
            raise ValueError(f"cannot schedule into the past ({time} < {self.now})")
        seq = next(self._sequence)
        if not self._fast:
            heapq.heappush(self._heap, (time, seq, fn, arg))
            self._live.add(seq)
            return EventHandle((time, seq))
        entry = EventHandle((time, seq, fn, arg))
        bucket = self._bucket
        if bucket:
            # Invariant: while the bucket is open at _bucket_time, every
            # schedule at that instant appends here — so heap-resident
            # entries at the same instant (pushed before it opened) all
            # carry smaller sequences and still fire first.
            if time == self._bucket_time:
                bucket.append(entry)
            else:
                heapq.heappush(self._heap, entry)
        elif time == self._last_time:
            # Open the bucket lazily, on the second same-instant
            # schedule in a row — sparse timer loads stay pure-heap.
            self._bucket_time = time
            bucket.append(entry)
        else:
            self._last_time = time
            heapq.heappush(self._heap, entry)
        self._pending_count += 1
        return entry

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event; cancelling one that already fired
        (or was already cancelled) is a no-op."""
        if not self._fast:
            self._live.discard(handle[1])
            return
        if len(handle) == 4 and handle[2] is not None:
            handle[2] = None
            self._pending_count -= 1

    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        start_delay: Optional[float] = None,
    ) -> "PeriodicTask":
        """Run *callback* every *interval* seconds until stopped.

        The first firing happens after ``start_delay`` (default: one full
        interval), matching how Condor daemons start their timers.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        task = PeriodicTask(self, interval, callback)
        task._arm(interval if start_delay is None else start_delay)
        return task

    # -- execution ---------------------------------------------------------

    def _head(self) -> Optional[list]:
        """Fast kernel: the next live entry (heads cleaned), unpopped."""
        heap = self._heap
        while heap and heap[0][2] is None:
            heapq.heappop(heap)
        bucket = self._bucket
        while bucket and bucket[0][2] is None:
            bucket.popleft()
        if bucket:
            if heap and heap[0] < bucket[0]:
                return heap[0]
            return bucket[0]
        return heap[0] if heap else None

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None."""
        if self._fast:
            head = self._head()
            return head[0] if head is not None else None
        heap = self._heap
        live = self._live
        while heap and heap[0][1] not in live:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    def _fire(self, entry: list) -> None:
        """Fast kernel: consume one popped entry."""
        time = entry[0]
        if time < self.now:
            raise AssertionError("causality violation: event in the past")
        self.now = time
        self.events_processed += 1
        self._pending_count -= 1
        fn = entry[2]
        arg = entry[3]
        entry[2] = None  # mark fired: cancel-after-fire stays a no-op
        if _metrics.enabled:
            _SIM_EVENTS.inc()
        if arg is _NO_ARG:
            fn()
        else:
            fn(arg)

    def step(self) -> bool:
        """Process one event; False when the queue is empty."""
        if self._fast:
            head = self._head()
            if head is None:
                return False
            # pop whichever structure holds the head
            if self._bucket and head is self._bucket[0]:
                self._bucket.popleft()
            else:
                heapq.heappop(self._heap)
            self._fire(head)
            return True
        when = self.peek_time()
        if when is None:
            return False
        time, seq, fn, arg = heapq.heappop(self._heap)
        self._live.remove(seq)
        if time < self.now:
            raise AssertionError("causality violation: event in the past")
        self.now = time
        self.events_processed += 1
        # The reference kernel keeps the seed's unconditional per-event
        # metrics call (the counter's own guard eats it when disabled) —
        # hoisting it is part of what the fast kernel buys.
        _SIM_EVENTS.inc()
        if arg is _NO_ARG:
            fn()
        else:
            fn(arg)
        return True

    def run_until(self, time: float) -> None:
        """Process events up to and including simulated *time*."""
        if self._fast:
            # Inlined dispatch loop: no per-event method calls beyond
            # the callback itself.  The past-event assertion is omitted
            # here — schedule_at's guard makes it unreachable (step()
            # still carries it).
            heap = self._heap
            bucket = self._bucket
            registry = _metrics
            pop_heap = heapq.heappop
            popleft = bucket.popleft
            while True:
                while heap and heap[0][2] is None:
                    pop_heap(heap)
                while bucket and bucket[0][2] is None:
                    popleft()
                if bucket:
                    b0 = bucket[0]
                    if heap and heap[0] < b0:
                        entry = heap[0]
                        if entry[0] > time:
                            break
                        pop_heap(heap)
                    else:
                        # The bucket head wins, and the rest of the
                        # bucket shares its timestamp: nothing a fired
                        # callback schedules can preempt the run
                        # (same-instant schedules append behind us;
                        # later times go to the heap, which already
                        # lost).  Drain the run in one tight loop with
                        # the clock write hoisted and the counters
                        # batched.  The timestamp re-check guards the
                        # one escape hatch: if the bucket momentarily
                        # empties mid-run, a callback can re-open it at
                        # a later instant.
                        now_t = b0[0]
                        if now_t > time:
                            break
                        self.now = now_t
                        fired = 0
                        while bucket:
                            entry = bucket[0]
                            if entry[0] != now_t:
                                break
                            popleft()
                            fn = entry[2]
                            if fn is None:
                                continue
                            entry[2] = None  # cancel-after-fire no-ops
                            fired += 1
                            if registry.enabled:
                                _SIM_EVENTS.inc()
                            arg = entry[3]
                            if arg is _NO_ARG:
                                fn()
                            else:
                                fn(arg)
                        self.events_processed += fired
                        self._pending_count -= fired
                        continue
                elif heap:
                    entry = heap[0]
                    if entry[0] > time:
                        break
                    pop_heap(heap)
                else:
                    break
                self.now = entry[0]
                self.events_processed += 1
                self._pending_count -= 1
                fn = entry[2]
                arg = entry[3]
                entry[2] = None  # mark fired: cancel-after-fire is a no-op
                if registry.enabled:
                    _SIM_EVENTS.inc()
                if arg is _NO_ARG:
                    fn()
                else:
                    fn(arg)
            self.now = max(self.now, time)
            return
        while True:
            when = self.peek_time()
            if when is None or when > time:
                break
            self.step()
        self.now = max(self.now, time)

    def run(self, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains (or *max_events*)."""
        processed = 0
        while self.step():
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        return processed

    def pending(self) -> int:
        """Number of pending (non-cancelled) events — O(1)."""
        return self._pending_count if self._fast else len(self._live)


class PeriodicTask:
    """A repeating timer created by :meth:`Simulator.every`.

    Re-arming reuses one bound method (``_fire_cb``) captured at
    construction, so a million firings allocate no closures — just the
    kernel's own event entry per arm.
    """

    __slots__ = ("sim", "interval", "callback", "stopped", "firings", "_handle", "_fire_cb")

    def __init__(self, sim: Simulator, interval: float, callback: Callable[[], None]):
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.stopped = False
        self.firings = 0
        self._handle: Optional[EventHandle] = None
        self._fire_cb = self._fire

    def _arm(self, delay: float) -> None:
        self._handle = self.sim.schedule(delay, self._fire_cb)

    def _fire(self) -> None:
        if self.stopped:
            return
        self.firings += 1
        self.callback()
        if not self.stopped:  # the callback may have stopped us
            self._arm(self.interval)

    def stop(self) -> None:
        self.stopped = True
        if self._handle is not None:
            self.sim.cancel(self._handle)
