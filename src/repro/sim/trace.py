"""Event tracing — part of S23 in DESIGN.md.

A trace is an append-only list of (time, kind, fields) records emitted
by agents; the F3 benchmark renders one into the paper's Figure 3
sequence (advertise → match → notify → claim), and integration tests
assert protocol ordering on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    time: float
    kind: str
    fields: Dict[str, Any]

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:10.3f}] {self.kind:<22} {details}"


class Trace:
    """Collects :class:`TraceEvent` records during a simulation run."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        if self.enabled:
            self.events.append(TraceEvent(time, kind, fields))

    def of_kind(self, *kinds: str) -> List[TraceEvent]:
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def kinds(self) -> List[str]:
        """Distinct kinds in first-appearance order."""
        seen: Dict[str, None] = {}
        for e in self.events:
            seen.setdefault(e.kind, None)
        return list(seen)

    def first(self, kind: str) -> Optional[TraceEvent]:
        for e in self.events:
            if e.kind == kind:
                return e
        return None

    def last(self, kind: str) -> Optional[TraceEvent]:
        for e in reversed(self.events):
            if e.kind == kind:
                return e
        return None

    def between(self, start: float, end: float) -> List[TraceEvent]:
        return [e for e in self.events if start <= e.time <= end]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable transcript (the Figure 3 walk-through)."""
        events = self.events if limit is None else self.events[:limit]
        return "\n".join(str(e) for e in events)
