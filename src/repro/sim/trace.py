"""Event tracing — part of S23 in DESIGN.md.

A trace is an append-only list of (time, kind, fields) records emitted
by agents; the F3 benchmark renders one into the paper's Figure 3
sequence (advertise → match → notify → claim), and integration tests
assert protocol ordering on it.

Since the negotiation-forensics work this module is a **thin consumer
of the unified event model** in :mod:`repro.obs.events`:

* :class:`TraceEvent` *is* an :class:`repro.obs.events.Event` (plus the
  legacy ``.time`` accessor), so trace records and forensic records are
  the same shape;
* every :meth:`Trace.emit` is mirrored into the global
  :data:`repro.obs.event_log` — even when this particular trace is
  disabled — so an enabled event log sees the whole simulated protocol
  (advertisements, matches, claims, evictions) alongside the
  matchmaker's own ``cycle.*``/``match.*`` forensics, stamped with
  simulated time.  The mirror no-ops on one boolean check while the
  global log is off.

New code should emit through :data:`repro.obs.event_log` directly;
``Trace`` remains the sim-local, always-unbounded view the experiments
query.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from ..obs.events import Event
from ..obs import event_log as _global_log


class TraceEvent(Event):
    """One trace record: the unified event shape, addressed by sim time."""

    __slots__ = ()

    @property
    def time(self) -> float:
        return self.t

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return f"[{self.time:10.3f}] {self.kind:<22} {details}"


class Trace:
    """Collects :class:`TraceEvent` records during a simulation run."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: List[TraceEvent] = []

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        if self.enabled:
            self.events.append(TraceEvent(len(self.events) + 1, time, kind, fields))
        # Mirror into the forensic event log (no-op while it is off), so
        # the repo has one queryable event stream, not two.
        _global_log.emit(kind, t=time, **fields)

    def of_kind(self, *kinds: str) -> List[TraceEvent]:
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    def kinds(self) -> List[str]:
        """Distinct kinds in first-appearance order."""
        seen: Dict[str, None] = {}
        for e in self.events:
            seen.setdefault(e.kind, None)
        return list(seen)

    def first(self, kind: str) -> Optional[TraceEvent]:
        for e in self.events:
            if e.kind == kind:
                return e
        return None

    def last(self, kind: str) -> Optional[TraceEvent]:
        for e in reversed(self.events):
            if e.kind == kind:
                return e
        return None

    def between(self, start: float, end: float) -> List[TraceEvent]:
        return [e for e in self.events if start <= e.time <= end]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable transcript (the Figure 3 walk-through)."""
        events = self.events if limit is None else self.events[:limit]
        return "\n".join(str(e) for e in events)
