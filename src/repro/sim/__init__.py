"""Simulation substrate — S12–S13 and S23 in DESIGN.md.

The paper deployed on a real campus pool; this package is the
substitution (see DESIGN.md §3): a deterministic discrete-event kernel
(:mod:`~repro.sim.engine`), a lossy/reordering message fabric
(:mod:`~repro.sim.network`), reproducible random streams
(:mod:`~repro.sim.rng`), and the tracing/metrics layers the experiments
read (:mod:`~repro.sim.trace`, :mod:`~repro.sim.metrics`).
"""

from .chaos import (
    PROFILES,
    ChaosController,
    ChaosPlan,
    CrashWindow,
    DuplicationWindow,
    LossWindow,
    PartitionWindow,
    chaos_profile,
    plan_from_env,
)
from .engine import (
    EventHandle,
    PeriodicTask,
    Simulator,
    fast_kernel_enabled,
    set_fast_kernel,
)
from .metrics import PoolMetrics, RunningStats, UtilizationTracker
from .network import Network, NetworkStats
from .rng import RngStream
from .trace import Trace, TraceEvent

__all__ = [
    "PROFILES",
    "ChaosController",
    "ChaosPlan",
    "CrashWindow",
    "DuplicationWindow",
    "EventHandle",
    "LossWindow",
    "fast_kernel_enabled",
    "set_fast_kernel",
    "PartitionWindow",
    "chaos_profile",
    "plan_from_env",
    "Network",
    "NetworkStats",
    "PeriodicTask",
    "PoolMetrics",
    "RngStream",
    "RunningStats",
    "Simulator",
    "Trace",
    "TraceEvent",
    "UtilizationTracker",
]
