"""Metrics for the experiments — part of S23 in DESIGN.md.

High-throughput computing measures itself in sustained work over long
horizons (the paper's "TIPYs", trillions of instructions per year), so
the central metrics are:

* **goodput** — simulated CPU-seconds of work that contributed to a
  completed job;
* **badput** — CPU-seconds lost to evictions without checkpoint (work
  that must be redone);
* per-job **wait time** and **makespan**, and pool **utilization**.

:class:`RunningStats` implements Welford's online algorithm so million-
event runs never hold per-sample lists.  It now lives in
:mod:`repro.obs.registry` (the observability layer's histograms are
built on it and must sit below this package in the import graph); the
name is re-exported here unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..obs.registry import RunningStats

__all__ = ["PoolMetrics", "RunningStats", "UtilizationTracker"]


@dataclass
class PoolMetrics:
    """Aggregated outcome of one pool simulation run."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    evictions: int = 0
    evictions_checkpointed: int = 0
    preemptions: int = 0
    claims_attempted: int = 0
    claims_rejected: int = 0
    claim_rejections_by_reason: Dict[str, int] = field(default_factory=dict)
    goodput: float = 0.0  # cpu-seconds retained
    badput: float = 0.0  # cpu-seconds lost to eviction
    wait_time: RunningStats = field(default_factory=RunningStats)
    turnaround: RunningStats = field(default_factory=RunningStats)
    match_latency: RunningStats = field(default_factory=RunningStats)

    def record_claim_rejection(self, reason: str) -> None:
        self.claims_rejected += 1
        self.claim_rejections_by_reason[reason] = (
            self.claim_rejections_by_reason.get(reason, 0) + 1
        )

    @property
    def completion_rate(self) -> float:
        if not self.jobs_submitted:
            return 0.0
        return self.jobs_completed / self.jobs_submitted

    @property
    def claim_rejection_rate(self) -> float:
        if not self.claims_attempted:
            return 0.0
        return self.claims_rejected / self.claims_attempted

    @property
    def goodput_fraction(self) -> float:
        total = self.goodput + self.badput
        return self.goodput / total if total else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible snapshot (feeds the BENCH_*.json reports)."""
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "completion_rate": self.completion_rate,
            "evictions": self.evictions,
            "evictions_checkpointed": self.evictions_checkpointed,
            "preemptions": self.preemptions,
            "claims_attempted": self.claims_attempted,
            "claims_rejected": self.claims_rejected,
            "claim_rejections_by_reason": dict(self.claim_rejections_by_reason),
            "goodput": self.goodput,
            "badput": self.badput,
            "goodput_fraction": self.goodput_fraction,
            "wait_time": self.wait_time.to_dict(),
            "turnaround": self.turnaround.to_dict(),
            "match_latency": self.match_latency.to_dict(),
        }

    def summary(self) -> str:
        lines = [
            f"jobs completed     : {self.jobs_completed}/{self.jobs_submitted}"
            f" ({100 * self.completion_rate:.1f}%)",
            f"claims             : {self.claims_attempted} attempted,"
            f" {self.claims_rejected} rejected"
            f" ({100 * self.claim_rejection_rate:.1f}%)",
            f"evictions          : {self.evictions}"
            f" ({self.evictions_checkpointed} with checkpoint)",
            f"goodput / badput   : {self.goodput:.0f}s / {self.badput:.0f}s"
            f" ({100 * self.goodput_fraction:.1f}% good)",
            f"mean wait          : {self.wait_time.mean:.1f}s",
            f"mean turnaround    : {self.turnaround.mean:.1f}s",
        ]
        if self.claim_rejections_by_reason:
            reasons = ", ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.claim_rejections_by_reason.items())
            )
            lines.append(f"rejection reasons  : {reasons}")
        return "\n".join(lines)


@dataclass
class UtilizationTracker:
    """Integrates busy-machine count over time → pool utilization."""

    capacity: int
    _busy: int = 0
    _last_time: float = 0.0
    _busy_integral: float = 0.0

    def advance(self, now: float) -> None:
        if now < self._last_time:
            raise ValueError("time went backwards")
        self._busy_integral += self._busy * (now - self._last_time)
        self._last_time = now

    def claim(self, now: float) -> None:
        self.advance(now)
        self._busy += 1
        if self._busy > self.capacity:
            raise ValueError("more claims than machines")

    def release(self, now: float) -> None:
        self.advance(now)
        if self._busy == 0:
            raise ValueError("release without claim")
        self._busy -= 1

    def utilization(self, now: float) -> float:
        """Average fraction of the pool busy over [0, now]."""
        self.advance(now)
        if now <= 0 or self.capacity == 0:
            return 0.0
        return self._busy_integral / (now * self.capacity)
