"""Deterministic random-number streams for the simulator.

Every stochastic component (network jitter, workload arrivals, keyboard
traces) draws from its own named stream forked off a single root seed,
so adding a new random consumer never perturbs the draws of existing
ones — runs stay comparable across code changes, which matters when
benchmarks compare configurations (E2, E5's checkpointing ablation).
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


class RngStream:
    """A named, forkable wrapper around :class:`random.Random`."""

    def __init__(self, seed: int, name: str = "root"):
        self.seed = seed
        self.name = name
        digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
        self._random = random.Random(int.from_bytes(digest[:8], "big"))

    def fork(self, name: str) -> "RngStream":
        """An independent stream derived from this one's identity."""
        return RngStream(self.seed, f"{self.name}/{name}")

    # -- draws -------------------------------------------------------------

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return self._random.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Exponential inter-arrival times; *rate* is events per second."""
        return self._random.expovariate(rate)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high], inclusive."""
        return self._random.randint(low, high)

    def choice(self, seq):
        return self._random.choice(seq)

    def choices(self, seq, weights=None, k=1):
        return self._random.choices(seq, weights=weights, k=k)

    def shuffle(self, seq) -> None:
        self._random.shuffle(seq)

    def sample(self, seq, k: int):
        return self._random.sample(seq, k)

    def random(self) -> float:
        return self._random.random()

    def gauss(self, mu: float, sigma: float) -> float:
        return self._random.gauss(mu, sigma)

    def lognormal(self, mu: float, sigma: float) -> float:
        return self._random.lognormvariate(mu, sigma)

    def bernoulli(self, p: float) -> bool:
        return self._random.random() < p
