"""The paper's literal figures, as reusable library assets.

Figures 1 and 2 of Raman, Livny & Solomon (HPDC'98) are the canonical
workstation and job classads; tests, examples and the F1/F2 benchmarks
all reproduce behaviour against these exact ads, so they live here in one
place.  The numeric values are those printed in the paper (DayTime and
QDate values are representative: the paper elides them with comments).
"""

from __future__ import annotations

from .classads import ClassAd

#: Figure 1 — "A classad describing a workstation" (leonardo.cs.wisc.edu).
#: The Constraint encodes the four-tier owner policy narrated in
#: Section 4: never serve untrusted users; always serve the research
#: group; serve friends only when the workstation is idle (keyboard
#: untouched >15 min, load <0.3); serve everyone else only at night
#: (before 8am or after 6pm).
FIGURE1_MACHINE = """[
  Type          = "Machine";
  Activity      = "Idle";
  DayTime       = 36107;        // current time, seconds since midnight
  KeyboardIdle  = 1432;         // seconds
  Disk          = 323496;       // kbytes
  Memory        = 64;           // megabytes
  State         = "Unclaimed";
  LoadAvg       = 0.042969;
  Mips          = 104;
  Arch          = "INTEL";
  OpSys         = "SOLARIS251";
  KFlops        = 21893;
  Name          = "leonardo.cs.wisc.edu";
  ResearchGroup = { "raman", "miron", "solomon", "jbasney" };
  Friends       = { "tannenba", "wright" };
  Untrusted     = { "rival", "riffraff" };
  Rank          = member(other.Owner, ResearchGroup) * 10
                  + member(other.Owner, Friends);
  Constraint    = !member(other.Owner, Untrusted) &&
                  (Rank >= 10 ? true :
                   Rank > 0 ? LoadAvg < 0.3 && KeyboardIdle > 15*60 :
                   DayTime < 8*60*60 || DayTime > 18*60*60)
]"""

#: The Constraint exactly as printed in Figure 1.  Under C precedence
#: (`?:` binding loosest, which this implementation follows) the printed
#: expression parses as ``(!member(...) && Rank >= 10) ? ... `` — which
#: admits *untrusted* users through the at-night branch, contradicting
#: Section 4's narration that rival and riffraff are never served.
#: FIGURE1_MACHINE above adds the parentheses the narration implies; this
#: constant preserves the literal text so the discrepancy stays testable
#: (see tests/classads/test_paper_figures.py and EXPERIMENTS.md, note F1).
FIGURE1_CONSTRAINT_LITERAL = """
    !member(other.Owner, Untrusted) && Rank >= 10 ? true :
    Rank > 0 ? LoadAvg < 0.3 && KeyboardIdle > 15*60 :
    DayTime < 8*60*60 || DayTime > 18*60*60
"""

#: Figure 2 — "A classad describing a submitted job" (raman's simulation).
FIGURE2_JOB = """[
  Type               = "Job";
  QDate              = 886799469;  // submit time, secs past 1/1/1970
  CompletionDate     = 0;
  Owner              = "raman";
  Cmd                = "run_sim";
  WantRemoteSyscalls = 1;
  WantCheckpoint     = 1;
  Iwd                = "/usr/raman/sim2";
  Args               = "-Q 17 3200 10";
  Memory             = 31;
  Rank               = KFlops / 1E3 + other.Memory / 32;
  Constraint         = other.Type == "Machine" && Arch == "INTEL" &&
                       OpSys == "SOLARIS251" && Disk >= 10000 &&
                       other.Memory >= self.Memory
]"""


def figure1_machine() -> ClassAd:
    """A fresh copy of the Figure 1 workstation ad."""
    return ClassAd.parse(FIGURE1_MACHINE)


def figure2_job() -> ClassAd:
    """A fresh copy of the Figure 2 job ad."""
    return ClassAd.parse(FIGURE2_JOB)


def figure1_machine_at(
    daytime: int,
    keyboard_idle: int = 1432,
    load_avg: float = 0.042969,
) -> ClassAd:
    """The Figure 1 machine with its dynamic state overridden.

    Used by the F1 experiment to sweep the policy over time-of-day,
    keyboard activity and load average.
    """
    ad = figure1_machine()
    ad["DayTime"] = daytime
    ad["KeyboardIdle"] = keyboard_idle
    ad["LoadAvg"] = load_avg
    return ad


def job_from(owner: str, memory: int = 31) -> ClassAd:
    """A Figure 2-shaped job submitted by *owner*.

    The F1 policy matrix exercises the machine's Constraint against jobs
    from research-group members, friends, strangers, and untrusted users.
    """
    ad = figure2_job()
    ad["Owner"] = owner
    ad["Memory"] = memory
    return ad
