"""Built-in function library for the classad language.

The paper's Figure 1 uses ``member(other.Owner, ResearchGroup)``; the rest
of this table follows the classic ClassAd library so realistic Condor-era
policy ads evaluate unmodified.  All functions are *total*: bad arguments
produce the in-language ``error`` value, and (unless documented
otherwise) an ``undefined`` argument yields ``undefined`` — strictness
mirrors the operator semantics.

Type-test predicates (``isUndefined`` etc.) are intentionally non-strict:
their whole purpose is to inspect ``undefined``/``error`` values.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Dict, List

from .values import (
    ERROR,
    UNDEFINED,
    ErrorValue,
    coerce_to_number,
    is_boolean,
    is_classad,
    is_error,
    is_integer,
    is_list,
    is_number,
    is_real,
    is_string,
    is_undefined,
)

BUILTINS: Dict[str, Callable[[List], object]] = {}


def _builtin(*names: str):
    """Register a function under one or more (case-insensitive) names."""

    def register(fn):
        for name in names:
            BUILTINS[name.lower()] = fn
        return fn

    return register


def _arity_error(name: str, expected: str) -> ErrorValue:
    return ErrorValue(f"{name} expects {expected} argument(s)")


def _strict_guard(args):
    """Return the dominating error/undefined among *args*, or None."""
    for a in args:
        if is_error(a):
            return a
    for a in args:
        if is_undefined(a):
            return UNDEFINED
    return None


# ---------------------------------------------------------------------------
# list functions


@_builtin("member")
def _member(args):
    """member(x, list) — true iff some element of list equals x (== rules)."""
    if len(args) != 2:
        return _arity_error("member", "2")
    item, seq = args
    guard = _strict_guard([item, seq])
    if guard is not None:
        return guard
    if not is_list(seq):
        return ErrorValue("member: second argument is not a list")
    saw_error = False
    for element in seq:
        if is_string(item) and is_string(element):
            if item.lower() == element.lower():
                return True
        else:
            left = coerce_to_number(item)
            right = coerce_to_number(element)
            if left is not None and right is not None:
                if left == right:
                    return True
            else:
                saw_error = True
    if saw_error:
        return ErrorValue("member: incomparable element in list")
    return False


@_builtin("identicalmember")
def _identical_member(args):
    """identicalMember(x, list) — membership under `is` (meta-identity)."""
    from .values import values_identical

    if len(args) != 2:
        return _arity_error("identicalMember", "2")
    item, seq = args
    if is_error(seq):
        return seq
    if is_undefined(seq):
        return UNDEFINED
    if not is_list(seq):
        return ErrorValue("identicalMember: second argument is not a list")
    return any(values_identical(item, element) for element in seq)


@_builtin("size")
def _size(args):
    """size(x) — length of a list, string, or classad."""
    if len(args) != 1:
        return _arity_error("size", "1")
    (value,) = args
    guard = _strict_guard(args)
    if guard is not None:
        return guard
    if is_list(value) or is_string(value):
        return len(value)
    if is_classad(value):
        return len(value)
    return ErrorValue("size: argument has no size")


@_builtin("sum")
def _sum(args):
    """sum(list) — numeric sum; booleans count as 0/1; non-numeric ⇒ error."""
    if len(args) != 1:
        return _arity_error("sum", "1")
    guard = _strict_guard(args)
    if guard is not None:
        return guard
    (seq,) = args
    if not is_list(seq):
        return ErrorValue("sum: argument is not a list")
    total = 0
    for element in seq:
        if is_undefined(element):
            return UNDEFINED
        number = coerce_to_number(element)
        if number is None:
            return ErrorValue("sum: non-numeric element")
        total += number
    return total


@_builtin("min")
def _min(args):
    return _fold_extremum("min", args, min)


@_builtin("max")
def _max(args):
    return _fold_extremum("max", args, max)


def _fold_extremum(name, args, fold):
    """min/max over a list argument or over the argument tuple itself."""
    if not args:
        return _arity_error(name, "1 or more")
    values = args[0] if len(args) == 1 and is_list(args[0]) else args
    guard = _strict_guard(list(values))
    if guard is not None:
        return guard
    numbers = []
    for element in values:
        number = coerce_to_number(element)
        if number is None:
            return ErrorValue(f"{name}: non-numeric element")
        numbers.append(number)
    if not numbers:
        return UNDEFINED
    return fold(numbers)


# ---------------------------------------------------------------------------
# string functions


@_builtin("strcat")
def _strcat(args):
    """strcat(s1, s2, ...) — concatenation; numbers/booleans are stringified."""
    guard = _strict_guard(args)
    if guard is not None:
        return guard
    parts = []
    for value in args:
        text = _stringify(value)
        if text is None:
            return ErrorValue("strcat: unprintable argument")
        parts.append(text)
    return "".join(parts)


@_builtin("substr")
def _substr(args):
    """substr(s, offset [, length]) — negative offsets count from the end."""
    if len(args) not in (2, 3):
        return _arity_error("substr", "2 or 3")
    guard = _strict_guard(args)
    if guard is not None:
        return guard
    text, offset = args[0], args[1]
    if not is_string(text) or not is_integer(offset):
        return ErrorValue("substr: bad argument types")
    if offset < 0:
        offset = max(0, len(text) + offset)
    if len(args) == 3:
        length = args[2]
        if not is_integer(length):
            return ErrorValue("substr: bad length")
        if length < 0:
            end = max(offset, len(text) + length)
        else:
            end = offset + length
        return text[offset:end]
    return text[offset:]


@_builtin("toupper")
def _toupper(args):
    if len(args) != 1:
        return _arity_error("toUpper", "1")
    guard = _strict_guard(args)
    if guard is not None:
        return guard
    if not is_string(args[0]):
        return ErrorValue("toUpper: argument is not a string")
    return args[0].upper()


@_builtin("tolower")
def _tolower(args):
    if len(args) != 1:
        return _arity_error("toLower", "1")
    guard = _strict_guard(args)
    if guard is not None:
        return guard
    if not is_string(args[0]):
        return ErrorValue("toLower: argument is not a string")
    return args[0].lower()


@_builtin("regexp")
def _regexp(args):
    """regexp(pattern, target [, options]) — options: "i" case-insensitive."""
    if len(args) not in (2, 3):
        return _arity_error("regexp", "2 or 3")
    guard = _strict_guard(args)
    if guard is not None:
        return guard
    pattern, target = args[0], args[1]
    if not is_string(pattern) or not is_string(target):
        return ErrorValue("regexp: arguments must be strings")
    flags = 0
    if len(args) == 3:
        if not is_string(args[2]):
            return ErrorValue("regexp: options must be a string")
        if "i" in args[2].lower():
            flags |= re.IGNORECASE
    try:
        return re.search(pattern, target, flags) is not None
    except re.error:
        return ErrorValue(f"regexp: bad pattern {pattern!r}")


@_builtin("stringlistmember")
def _string_list_member(args):
    """stringListMember(x, "a,b,c" [, delims]) — Condor's string-list test."""
    if len(args) not in (2, 3):
        return _arity_error("stringListMember", "2 or 3")
    guard = _strict_guard(args)
    if guard is not None:
        return guard
    item, text = args[0], args[1]
    delims = args[2] if len(args) == 3 else ","
    if not (is_string(item) and is_string(text) and is_string(delims)):
        return ErrorValue("stringListMember: arguments must be strings")
    pattern = "|".join(re.escape(d) for d in delims) or ","
    members = [part.strip() for part in re.split(pattern, text)]
    return item.lower() in (m.lower() for m in members if m)


@_builtin("split")
def _split(args):
    """split(s [, delims]) — tokenize on any of the delimiter chars
    (default whitespace), dropping empty tokens."""
    if len(args) not in (1, 2):
        return _arity_error("split", "1 or 2")
    guard = _strict_guard(args)
    if guard is not None:
        return guard
    text = args[0]
    if not is_string(text):
        return ErrorValue("split: first argument must be a string")
    if len(args) == 2:
        delims = args[1]
        if not is_string(delims) or not delims:
            return ErrorValue("split: delimiters must be a non-empty string")
        pattern = "|".join(re.escape(d) for d in delims)
        parts = re.split(pattern, text)
    else:
        parts = text.split()
    return [part for part in parts if part]


@_builtin("join")
def _join(args):
    """join(sep, list) or join(sep, s1, s2, ...) — concatenate with *sep*."""
    if len(args) < 2:
        return _arity_error("join", "2 or more")
    guard = _strict_guard(args)
    if guard is not None:
        return guard
    sep = args[0]
    if not is_string(sep):
        return ErrorValue("join: separator must be a string")
    items = args[1] if len(args) == 2 and is_list(args[1]) else args[1:]
    parts = []
    for item in items:
        if is_undefined(item):
            return UNDEFINED
        text = _stringify(item)
        if text is None:
            return ErrorValue("join: unprintable element")
        parts.append(text)
    return sep.join(parts)


def _stringify(value):
    if is_string(value):
        return value
    if is_boolean(value):
        return "true" if value else "false"
    if is_integer(value):
        return str(value)
    if is_real(value):
        return repr(value)
    return None


# ---------------------------------------------------------------------------
# numeric functions


@_builtin("int")
def _int(args):
    if len(args) != 1:
        return _arity_error("int", "1")
    guard = _strict_guard(args)
    if guard is not None:
        return guard
    (value,) = args
    if is_string(value):
        try:
            return int(float(value.strip()))
        except ValueError:
            return ErrorValue(f"int: cannot convert {value!r}")
    number = coerce_to_number(value)
    if number is None:
        return ErrorValue("int: non-numeric argument")
    return int(number)


@_builtin("real")
def _real(args):
    if len(args) != 1:
        return _arity_error("real", "1")
    guard = _strict_guard(args)
    if guard is not None:
        return guard
    (value,) = args
    if is_string(value):
        try:
            return float(value.strip())
        except ValueError:
            return ErrorValue(f"real: cannot convert {value!r}")
    number = coerce_to_number(value)
    if number is None:
        return ErrorValue("real: non-numeric argument")
    return float(number)


@_builtin("string")
def _string(args):
    if len(args) != 1:
        return _arity_error("string", "1")
    guard = _strict_guard(args)
    if guard is not None:
        return guard
    text = _stringify(args[0])
    if text is None:
        return ErrorValue("string: unprintable argument")
    return text


@_builtin("floor")
def _floor(args):
    return _rounding("floor", args, math.floor)


@_builtin("ceiling")
def _ceiling(args):
    return _rounding("ceiling", args, math.ceil)


@_builtin("round")
def _round(args):
    # Classic round() rounds half away from zero, unlike Python's banker's
    # rounding; policy expressions written for Condor expect that.
    return _rounding("round", args, lambda x: int(math.floor(x + 0.5)) if x >= 0 else int(math.ceil(x - 0.5)))


def _rounding(name, args, fn):
    if len(args) != 1:
        return _arity_error(name, "1")
    guard = _strict_guard(args)
    if guard is not None:
        return guard
    number = coerce_to_number(args[0])
    if number is None:
        return ErrorValue(f"{name}: non-numeric argument")
    return int(fn(number))


@_builtin("abs")
def _abs(args):
    if len(args) != 1:
        return _arity_error("abs", "1")
    guard = _strict_guard(args)
    if guard is not None:
        return guard
    number = coerce_to_number(args[0])
    if number is None:
        return ErrorValue("abs: non-numeric argument")
    return abs(number)


@_builtin("pow")
def _pow(args):
    if len(args) != 2:
        return _arity_error("pow", "2")
    guard = _strict_guard(args)
    if guard is not None:
        return guard
    base, exponent = (coerce_to_number(a) for a in args)
    if base is None or exponent is None:
        return ErrorValue("pow: non-numeric argument")
    try:
        result = base**exponent
    except (OverflowError, ZeroDivisionError):
        return ErrorValue("pow: domain error")
    if isinstance(result, complex):
        return ErrorValue("pow: domain error")
    return result


# ---------------------------------------------------------------------------
# type predicates (non-strict by design)


@_builtin("isundefined")
def _is_undefined(args):
    if len(args) != 1:
        return _arity_error("isUndefined", "1")
    return is_undefined(args[0])


@_builtin("iserror")
def _is_error(args):
    if len(args) != 1:
        return _arity_error("isError", "1")
    return is_error(args[0])


@_builtin("isstring")
def _is_string(args):
    if len(args) != 1:
        return _arity_error("isString", "1")
    return is_string(args[0])


@_builtin("isinteger")
def _is_integer(args):
    if len(args) != 1:
        return _arity_error("isInteger", "1")
    return is_integer(args[0])


@_builtin("isreal")
def _is_real(args):
    if len(args) != 1:
        return _arity_error("isReal", "1")
    return is_real(args[0])


@_builtin("isboolean")
def _is_boolean(args):
    if len(args) != 1:
        return _arity_error("isBoolean", "1")
    return is_boolean(args[0])


@_builtin("islist")
def _is_list(args):
    if len(args) != 1:
        return _arity_error("isList", "1")
    return is_list(args[0])


@_builtin("isclassad")
def _is_classad(args):
    if len(args) != 1:
        return _arity_error("isClassAd", "1")
    return is_classad(args[0])
