"""Evaluator for classad expressions with the paper's three-valued logic.

Semantics implemented (Section 3.1):

* A reference to a non-existent attribute evaluates to ``undefined``.
* Arithmetic and comparison operators are *strict*: if either operand is
  ``undefined`` the result is ``undefined`` (``error`` dominates).
* ``&&`` and ``||`` are *non-strict on both arguments*:
  ``false && x == false`` and ``true || x == true`` for any ``x``,
  including ``undefined`` and ``error``.
* ``is`` / ``isnt`` always return Booleans (meta-identity), permitting
  explicit tests like ``other.Memory is undefined``.
* ``self.Name`` refers to the ad containing the reference, ``other.Name``
  to the candidate ad of the match.

Bare-name resolution.  The paper's prose says a bare name "assumes the
self prefix", but its own Figure 2 relies on richer behaviour: the job's
Constraint references ``Arch``, ``OpSys`` and ``Disk``, which exist only
in the *machine* ad.  We therefore implement the classic Condor rule the
figures assume: a bare name resolves lexically through enclosing nested
records, then the root ad of its own side, and finally falls through to
the other ad.  An attribute found in an ad is always evaluated in *that
ad's* environment (its ``self`` is its home ad), so policy expressions
mean the same thing no matter who triggers their evaluation.

Totality.  Evaluation never raises for in-language faults; it returns the
``error`` value.  Runaway recursion (pathological nesting) is cut off by
a depth/step budget that also yields ``error`` — circular attribute
references, however, are detected exactly and yield ``undefined`` per
classic ClassAd behaviour.
"""

from __future__ import annotations

from typing import Optional

from ..obs import metrics as _metrics
from .ast import (
    AttributeRef,
    BinaryOp,
    Conditional,
    Expr,
    FunctionCall,
    ListExpr,
    Literal,
    RecordExpr,
    Select,
    Subscript,
    UnaryOp,
)
from .classad import ClassAd
from .values import (
    ERROR,
    UNDEFINED,
    ErrorValue,
    coerce_to_number,
    is_boolean,
    is_classad,
    is_error,
    is_integer,
    is_list,
    is_number,
    is_string,
    is_undefined,
    values_identical,
)

#: Default ceiling on evaluate() steps; generous enough for any realistic
#: policy ad (Figure 1's full evaluation takes ~60 steps) while bounding
#: adversarial input.
DEFAULT_MAX_STEPS = 100_000
DEFAULT_MAX_DEPTH = 150

# Observability: >95% of a full-pool run is spent in this module, so even
# one counter-dict update per toplevel call is measurable (~7% on E6's
# smoke cycle).  Instead the hot path adds to two module ints and a
# registry collector settles them into the real counters whenever a
# snapshot is taken.
_EVALUATIONS = _metrics.counter(
    "classads.evaluations", "toplevel classad expression evaluations"
)
_EVAL_STEPS = _metrics.counter(
    "classads.eval_steps", "expression nodes visited across all evaluations"
)

_pending_evaluations = 0
_pending_steps = 0


def _flush_eval_counters() -> None:
    global _pending_evaluations, _pending_steps
    if _pending_evaluations:
        _EVALUATIONS.inc(_pending_evaluations)
        _EVAL_STEPS.inc(_pending_steps)
        _pending_evaluations = 0
        _pending_steps = 0


_metrics.register_collector(_flush_eval_counters)


def _note_evaluation(steps: int) -> None:
    """Record one toplevel evaluation of *steps* nodes (compiled path).

    The compiled evaluator (:mod:`.compile`) reports its conservative
    static step charge here so ``classads.evaluations`` and
    ``classads.eval_steps`` keep counting whichever path served a call.
    """
    global _pending_evaluations, _pending_steps
    _pending_evaluations += 1
    _pending_steps += steps


class _EvalState:
    """Mutable evaluation context for one toplevel evaluate() call.

    ``self_ad``/``other_ad`` are the two root ads of the (possibly
    one-sided) match environment.  ``scopes`` is the lexical chain of
    enclosing records on the *self* side, innermost last.  ``in_progress``
    holds (record-id, canonical-name) pairs for cycle detection.
    """

    __slots__ = ("self_ad", "other_ad", "scopes", "in_progress", "steps", "depth", "max_steps", "max_depth")

    def __init__(self, self_ad, other_ad, max_steps, max_depth):
        self.self_ad = self_ad
        self.other_ad = other_ad
        self.scopes = [self_ad] if self_ad is not None else []
        self.in_progress = set()
        self.steps = 0
        self.depth = 0
        self.max_steps = max_steps
        self.max_depth = max_depth

    def flipped(self) -> "_EvalState":
        """The same evaluation viewed from the other ad's side.

        Shares the step budget and cycle set so ping-pong references
        (self.Rank -> other.Rank -> self.Rank) terminate.
        """
        flipped = _EvalState.__new__(_EvalState)
        flipped.self_ad = self.other_ad
        flipped.other_ad = self.self_ad
        flipped.scopes = [self.other_ad] if self.other_ad is not None else []
        flipped.in_progress = self.in_progress
        flipped.steps = self.steps
        flipped.max_steps = self.max_steps
        flipped.depth = self.depth
        flipped.max_depth = self.max_depth
        return flipped


def evaluate(
    expr: Expr,
    self_ad: Optional[ClassAd] = None,
    other: Optional[ClassAd] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_depth: int = DEFAULT_MAX_DEPTH,
):
    """Evaluate *expr* with *self_ad* as ``self`` and *other* as ``other``.

    Either ad may be None (e.g. evaluating a detached expression, or a
    one-way query against a single ad).  Returns a classad value; never
    raises for in-language faults.
    """
    state = _EvalState(self_ad, other, max_steps, max_depth)
    result = _eval(expr, state)
    if _metrics.enabled:
        global _pending_evaluations, _pending_steps
        _pending_evaluations += 1
        _pending_steps += state.steps
    return result


def evaluate_attribute(
    ad: ClassAd,
    name: str,
    other: Optional[ClassAd] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_depth: int = DEFAULT_MAX_DEPTH,
):
    """Evaluate attribute *name* of *ad*; ``undefined`` if absent."""
    expr = ad.lookup(name)
    if expr is None:
        return UNDEFINED
    state = _EvalState(ad, other, max_steps, max_depth)
    result = _resolve_found(expr, ad, name, state)
    if _metrics.enabled:
        global _pending_evaluations, _pending_steps
        _pending_evaluations += 1
        _pending_steps += state.steps
    return result


# ---------------------------------------------------------------------------
# core dispatch


def _eval(expr: Expr, state: _EvalState):
    state.steps += 1
    if state.steps > state.max_steps:
        return ErrorValue("evaluation step budget exceeded")
    if state.depth >= state.max_depth:
        return ErrorValue("evaluation depth budget exceeded")
    state.depth += 1
    try:
        kind = type(expr)
        if kind is Literal:
            return expr.value
        if kind is AttributeRef:
            return _eval_ref(expr, state)
        if kind is BinaryOp:
            return _eval_binary(expr, state)
        if kind is UnaryOp:
            return _eval_unary(expr, state)
        if kind is Conditional:
            return _eval_conditional(expr, state)
        if kind is FunctionCall:
            return _eval_call(expr, state)
        if kind is Select:
            return _eval_select(expr, state)
        if kind is Subscript:
            return _eval_subscript(expr, state)
        if kind is ListExpr:
            return [_eval(item, state) for item in expr.items]
        if kind is RecordExpr:
            return ClassAd.from_record(expr)
        return ErrorValue(f"unknown expression node {kind.__name__}")
    finally:
        state.depth -= 1


# ---------------------------------------------------------------------------
# attribute resolution


def _resolve_found(expr: Expr, container, name: str, state: _EvalState):
    """Evaluate *expr*, found as attribute *name* of *container*, with
    cycle detection keyed on the (container, name) pair."""
    key = (id(container), name.lower())
    if key in state.in_progress:
        return UNDEFINED  # circular reference
    state.in_progress.add(key)
    try:
        return _eval(expr, state)
    finally:
        state.in_progress.discard(key)


def _eval_ref(ref: AttributeRef, state: _EvalState):
    name = ref.canonical
    if ref.scope == "self":
        ad = state.self_ad
        if ad is None:
            return UNDEFINED
        expr = ad.lookup(name)
        if expr is None:
            return UNDEFINED
        return _resolve_found(expr, ad, name, state)
    if ref.scope == "other":
        ad = state.other_ad
        if ad is None:
            return UNDEFINED
        expr = ad.lookup(name)
        if expr is None:
            return UNDEFINED
        return _resolve_found(expr, ad, name, state.flipped())
    # Bare name: lexical chain (innermost record outward), then root self
    # ad (the chain's first element), then fall through to the other ad.
    for depth in range(len(state.scopes) - 1, -1, -1):
        scope = state.scopes[depth]
        expr = scope.lookup(name)
        if expr is not None:
            # Evaluate in the scope chain as of that record's nesting level
            # so sibling references inside nested records resolve there.
            saved = state.scopes
            state.scopes = state.scopes[: depth + 1]
            try:
                return _resolve_found(expr, scope, name, state)
            finally:
                state.scopes = saved
    if state.other_ad is not None:
        expr = state.other_ad.lookup(name)
        if expr is not None:
            return _resolve_found(expr, state.other_ad, name, state.flipped())
    return UNDEFINED


def _eval_select(node: Select, state: _EvalState):
    base = _eval(node.base, state)
    if is_undefined(base):
        return UNDEFINED
    if is_error(base):
        return base
    if not is_classad(base):
        return ErrorValue(f"cannot select attribute of {type(base).__name__}")
    expr = base.lookup(node.canonical)
    if expr is None:
        return UNDEFINED
    # The selected record joins the lexical chain so its attributes can
    # reference siblings; see module docstring for the scoping model.
    state.scopes.append(base)
    try:
        return _resolve_found(expr, base, node.canonical, state)
    finally:
        state.scopes.pop()


def _eval_subscript(node: Subscript, state: _EvalState):
    base = _eval(node.base, state)
    index = _eval(node.index, state)
    for v in (base, index):
        if is_error(v):
            return v
    for v in (base, index):
        if is_undefined(v):
            return UNDEFINED
    if not is_list(base):
        return ErrorValue("subscript of non-list")
    if not is_integer(index):
        return ErrorValue("non-integer subscript")
    if 0 <= index < len(base):
        return base[index]
    return ErrorValue(f"subscript {index} out of range (list of {len(base)})")


# ---------------------------------------------------------------------------
# operators


def _eval_unary(node: UnaryOp, state: _EvalState):
    value = _eval(node.operand, state)
    if node.op == "!":
        if is_boolean(value):
            return not value
        if is_undefined(value):
            return UNDEFINED
        if is_error(value):
            return value
        return ErrorValue("! applied to non-boolean")
    # numeric + / -
    if is_error(value):
        return value
    if is_undefined(value):
        return UNDEFINED
    number = coerce_to_number(value)
    if number is None:
        return ErrorValue(f"unary {node.op} applied to non-number")
    return -number if node.op == "-" else number


def _eval_binary(node: BinaryOp, state: _EvalState):
    op = node.op
    if op == "&&":
        return _eval_and(node, state)
    if op == "||":
        return _eval_or(node, state)
    left = _eval(node.left, state)
    right = _eval(node.right, state)
    if op == "is":
        return values_identical(left, right)
    if op == "isnt":
        return not values_identical(left, right)
    # Strict operators: error dominates, then undefined.
    if is_error(left):
        return left
    if is_error(right):
        return right
    if is_undefined(left) or is_undefined(right):
        return UNDEFINED
    if op in ("+", "-", "*", "/", "%"):
        return _arith(op, left, right)
    return _compare(op, left, right)


def _eval_and(node: BinaryOp, state: _EvalState):
    left = _to_logic(_eval(node.left, state))
    if left is False:
        return False
    right = _to_logic(_eval(node.right, state))
    if right is False:
        return False
    for v in (left, right):
        if is_error(v):
            return v
    if is_undefined(left) or is_undefined(right):
        return UNDEFINED
    return True


def _eval_or(node: BinaryOp, state: _EvalState):
    left = _to_logic(_eval(node.left, state))
    if left is True:
        return True
    right = _to_logic(_eval(node.right, state))
    if right is True:
        return True
    for v in (left, right):
        if is_error(v):
            return v
    if is_undefined(left) or is_undefined(right):
        return UNDEFINED
    return False


def _to_logic(value):
    """Map a value into the three-valued logic domain for &&/||.

    Booleans pass through; undefined/error pass through; anything else is
    a type error.  (Classic ClassAds do not truth-test numbers.)
    """
    if is_boolean(value) or is_undefined(value) or is_error(value):
        return value
    return ErrorValue("logical operator applied to non-boolean")


def _arith(op: str, left, right):
    l = coerce_to_number(left)
    r = coerce_to_number(right)
    if l is None or r is None:
        return ErrorValue(f"{op} applied to non-numeric operand")
    if op == "+":
        return l + r
    if op == "-":
        return l - r
    if op == "*":
        return l * r
    if op == "/":
        if r == 0:
            return ErrorValue("division by zero")
        if isinstance(l, int) and isinstance(r, int):
            # C-like truncation toward zero, matching classic ClassAds.
            # Pure integer arithmetic: round-tripping through float (the
            # obvious int(l / r)) silently loses precision past 2**53.
            return -(-l // r) if (l < 0) != (r < 0) else l // r
        return l / r
    if op == "%":
        if not (isinstance(l, int) and isinstance(r, int)):
            return ErrorValue("% requires integer operands")
        if r == 0:
            return ErrorValue("modulus by zero")
        # C semantics: result takes the sign of the dividend.
        quotient = -(-l // r) if (l < 0) != (r < 0) else l // r
        return l - r * quotient
    return ErrorValue(f"unknown arithmetic operator {op}")


_COMPARISONS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


def _compare(op: str, left, right):
    fn = _COMPARISONS.get(op)
    if fn is None:
        return ErrorValue(f"unknown comparison operator {op}")
    if is_string(left) and is_string(right):
        # String comparison is case-insensitive in the classic language;
        # case-sensitive identity is spelled `is`.
        return fn(left.lower(), right.lower())
    l = coerce_to_number(left)
    r = coerce_to_number(right)
    if l is not None and r is not None:
        return fn(l, r)
    return ErrorValue("comparison of incompatible types")


# ---------------------------------------------------------------------------
# conditionals and calls


def _eval_conditional(node: Conditional, state: _EvalState):
    cond = _eval(node.cond, state)
    if cond is True:
        return _eval(node.then, state)
    if cond is False:
        return _eval(node.otherwise, state)
    if is_undefined(cond):
        return UNDEFINED
    if is_error(cond):
        return cond
    return ErrorValue("conditional guard is not boolean")


def _eval_call(node: FunctionCall, state: _EvalState):
    from .builtins import BUILTINS  # late import: builtins use the evaluator

    name = node.canonical
    # ifThenElse is the one lazily-evaluated builtin: only the selected
    # branch is evaluated, mirroring `?:`.
    if name == "ifthenelse":
        if len(node.args) != 3:
            return ErrorValue("ifThenElse expects 3 arguments")
        return _eval_conditional(
            Conditional(node.args[0], node.args[1], node.args[2]), state
        )
    fn = BUILTINS.get(name)
    if fn is None:
        return ErrorValue(f"unknown function {node.name!r}")
    args = [_eval(arg, state) for arg in node.args]
    return fn(args)
