"""The ClassAd container: "a mapping from attribute names to expressions".

This is the paper's central data structure (Section 3.1).  A ClassAd
behaves as an ordered, case-insensitive mapping whose values are
unevaluated :class:`~repro.classads.ast.Expr` nodes; evaluation happens
lazily, in an environment that may pair the ad with a candidate ("other")
ad — see :mod:`repro.classads.evaluator`.

Ads are mutable (agents update ``State``, ``LoadAvg`` etc. between
advertisements) and therefore unhashable, like ``dict``; the collector
and matchmaker key their stores by advertised name instead.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from .ast import Expr, Literal, ListExpr, RecordExpr
from .values import (
    UNDEFINED,
    ErrorValue,
    UndefinedType,
    is_classad,
)


def _value_to_expr(value: Any) -> Expr:
    """Convert a Python value (or Expr) to an expression node.

    Accepted: Expr (passed through), int/float/str/bool/undefined/error
    literals, lists (recursively), ClassAds and dicts (to nested records).
    Strings are treated as literal strings, *not* parsed — use
    :meth:`ClassAd.set_expr` or the parser for expression-valued strings.
    """
    if isinstance(value, Expr):
        return value
    if isinstance(value, (bool, int, float, str, UndefinedType, ErrorValue)):
        return Literal(value)
    if value is None:
        return Literal(UNDEFINED)
    if isinstance(value, (list, tuple)):
        return ListExpr([_value_to_expr(v) for v in value])
    if isinstance(value, ClassAd):
        return RecordExpr(list(value.items()))
    if isinstance(value, Mapping):
        return RecordExpr([(k, _value_to_expr(v)) for k, v in value.items()])
    raise TypeError(f"cannot convert {type(value).__name__} to a classad expression")


class ClassAd:
    """An ordered, case-insensitive mapping from attribute names to expressions.

    Construction accepts any mix of expressions and plain Python values::

        ad = ClassAd({"Type": "Machine", "Memory": 64})
        ad["Rank"] = parse("other.Memory / 32")

    Key operations:

    * ``ad[name]`` / ``ad.lookup(name)`` — the bound *expression*
      (``lookup`` returns None when absent; ``[]`` raises KeyError).
    * ``ad.evaluate(name, other=...)`` — evaluate an attribute in a match
      environment (delegates to the evaluator).
    * Insertion order is preserved for faithful unparsing.
    """

    __slots__ = ("_fields", "_names", "_ccache", "_fpcache")

    def __init__(self, fields: Union[None, Mapping, Iterable[Tuple[str, Any]]] = None):
        # _fields maps canonical (lowercase) name -> Expr;
        # _names maps canonical name -> original spelling, in insert order.
        # _ccache lazily maps canonical name -> (Expr, compiled closure);
        # owned by repro.classads.compile, entries validated by expression
        # identity and dropped on rebinding.
        # _fpcache is owned by repro.classads.fingerprint: serialized
        # per-attribute payloads, content fingerprints, and the wire-size
        # estimate, all dropped wholesale on any mutation.
        self._fields: Dict[str, Expr] = {}
        self._names: Dict[str, str] = {}
        self._ccache: Optional[dict] = None
        self._fpcache: Optional[dict] = None
        if fields is not None:
            items = fields.items() if isinstance(fields, Mapping) else fields
            for name, value in items:
                self[name] = value

    # -- mapping protocol ----------------------------------------------

    def __setitem__(self, name: str, value: Any) -> None:
        key = name.lower()
        if key not in self._names:
            self._names[key] = name
        self._fields[key] = _value_to_expr(value)
        if self._ccache is not None:
            self._ccache.pop(key, None)
        self._fpcache = None

    def __getitem__(self, name: str) -> Expr:
        expr = self._fields.get(name.lower())
        if expr is None:
            raise KeyError(name)
        return expr

    def __delitem__(self, name: str) -> None:
        key = name.lower()
        if key not in self._fields:
            raise KeyError(name)
        del self._fields[key]
        del self._names[key]
        if self._ccache is not None:
            self._ccache.pop(key, None)
        self._fpcache = None

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.lower() in self._fields

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names.values())

    def keys(self) -> List[str]:
        """Attribute names in insertion order, original spelling."""
        return list(self._names.values())

    def canonical_keys(self) -> List[str]:
        """Attribute names in insertion order, lower-cased."""
        return list(self._names.keys())

    def items(self) -> List[Tuple[str, Expr]]:
        """(name, expression) pairs in insertion order."""
        return [(self._names[k], self._fields[k]) for k in self._names]

    def lookup(self, name: str) -> Optional[Expr]:
        """The expression bound to *name*, or None if absent."""
        return self._fields.get(name.lower())

    def set_expr(self, name: str, source: str) -> None:
        """Bind *name* to the expression parsed from *source*."""
        from .parser import parse

        self[name] = parse(source)

    def update(self, other: Union[Mapping, "ClassAd"]) -> None:
        """Merge attributes from *other*, overwriting on collision."""
        items = other.items() if hasattr(other, "items") else other
        for name, value in items:
            self[name] = value

    def copy(self) -> "ClassAd":
        """A shallow copy (expressions are immutable and shared)."""
        return ClassAd(self.items())

    # -- evaluation ------------------------------------------------------

    def evaluate(self, name: str, other: Optional["ClassAd"] = None, **kwargs):
        """Evaluate attribute *name* with this ad as ``self``.

        Returns ``undefined`` when the attribute is absent, mirroring the
        language rule for dangling references.

        Served by the closure-compiled evaluator (:mod:`.compile`) with
        the tree-walking interpreter as fallback and kill-switch
        (``REPRO_NO_COMPILE=1``).
        """
        from .compile import evaluate_attribute

        return evaluate_attribute(self, name, other=other, **kwargs)

    def eval_expr(self, source_or_expr, other: Optional["ClassAd"] = None, **kwargs):
        """Evaluate an expression (source text or Expr) against this ad."""
        from .compile import evaluate
        from .parser import parse

        expr = (
            parse(source_or_expr)
            if isinstance(source_or_expr, str)
            else source_or_expr
        )
        return evaluate(expr, self, other=other, **kwargs)

    # -- conversion ------------------------------------------------------

    def to_record(self) -> RecordExpr:
        """This ad as a RecordExpr node (for nesting inside other ads)."""
        return RecordExpr(self.items())

    @classmethod
    def from_record(cls, record: RecordExpr) -> "ClassAd":
        """Build an ad from a parsed record expression."""
        return cls(record.fields)

    @classmethod
    def parse(cls, text: str) -> "ClassAd":
        """Parse classad source text (``[...]`` brackets optional)."""
        from .parser import parse_record

        return cls.from_record(parse_record(text))

    def __str__(self) -> str:
        from .unparse import unparse_classad

        return unparse_classad(self)

    def __repr__(self) -> str:
        head = ", ".join(self.keys()[:4])
        suffix = ", ..." if len(self) > 4 else ""
        return f"<ClassAd [{head}{suffix}] ({len(self)} attrs)>"

    def __eq__(self, other: object) -> bool:
        """Structural equality: same attributes bound to equal expressions.

        Attribute *order* is ignored (two agents advertising the same
        state in different orders describe the same entity); name case is
        ignored per the language rules.
        """
        if not is_classad(other):
            return NotImplemented
        if self._fields.keys() != other._fields.keys():  # type: ignore[attr-defined]
            return False
        return all(
            self._fields[k] == other._fields[k]  # type: ignore[attr-defined]
            for k in self._fields
        )

    __hash__ = None  # type: ignore[assignment]  # mutable: unhashable like dict
