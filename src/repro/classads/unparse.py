"""Unparser: render expressions and ads back to classad source text.

The output is round-trippable: for any expression ``e`` built from
identifier-named attributes, ``parse(unparse(e)) == e`` structurally
(a hypothesis property test enforces this).  Parentheses are emitted
only where precedence requires them, so Figure 1/2-style ads come back
out looking like the paper's listings.

Caveat: attribute names are emitted verbatim, so names that are not
identifiers (or that collide with reserved words) will not re-parse;
the agents and generators in this repository only ever use identifier
names, matching the grammar.
"""

from __future__ import annotations

from typing import List

from .ast import (
    AttributeRef,
    BinaryOp,
    Conditional,
    Expr,
    FunctionCall,
    ListExpr,
    Literal,
    RecordExpr,
    Select,
    Subscript,
    UnaryOp,
)
from .values import ErrorValue, UndefinedType

# Precedence levels, mirroring the parser's grammar ladder.
_PREC_COND = 1
_PREC_OR = 2
_PREC_AND = 3
_PREC_EQ = 4
_PREC_REL = 5
_PREC_ADD = 6
_PREC_MUL = 7
_PREC_UNARY = 8
_PREC_POSTFIX = 9
_PREC_ATOM = 10

_BINARY_PREC = {
    "||": _PREC_OR,
    "&&": _PREC_AND,
    "==": _PREC_EQ,
    "!=": _PREC_EQ,
    "is": _PREC_EQ,
    "isnt": _PREC_EQ,
    "<": _PREC_REL,
    "<=": _PREC_REL,
    ">": _PREC_REL,
    ">=": _PREC_REL,
    "+": _PREC_ADD,
    "-": _PREC_ADD,
    "*": _PREC_MUL,
    "/": _PREC_MUL,
    "%": _PREC_MUL,
}

_STRING_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\t": "\\t",
    "\r": "\\r",
    "\b": "\\b",
    "\f": "\\f",
}


def _escape_string(text: str) -> str:
    return '"' + "".join(_STRING_ESCAPES.get(ch, ch) for ch in text) + '"'


def _format_real(value: float) -> str:
    if value != value or value in (float("inf"), float("-inf")):
        # No literal syntax for non-finite reals; emit a conversion that
        # evaluates to the same value.
        return f'real("{value!r}")'
    text = repr(value)
    # Negative reals only arise from host-constructed literals (the parser
    # builds UnaryOp('-')); parenthesize so they re-parse as atoms.
    return f"({text})" if value < 0 else text


def unparse(expr: Expr, min_prec: int = 0) -> str:
    """Render *expr* as source text, parenthesizing below *min_prec*."""
    text, prec = _render(expr)
    if prec < min_prec:
        return f"({text})"
    return text


def _render(expr: Expr):
    kind = type(expr)
    if kind is Literal:
        return _render_literal(expr), _PREC_ATOM
    if kind is AttributeRef:
        prefix = f"{expr.scope}." if expr.scope else ""
        return f"{prefix}{expr.name}", _PREC_ATOM
    if kind is UnaryOp:
        inner = unparse(expr.operand, _PREC_UNARY)
        return f"{expr.op}{inner}", _PREC_UNARY
    if kind is BinaryOp:
        prec = _BINARY_PREC[expr.op]
        # Left-associative: the left child may sit at the same level, the
        # right child must bind tighter.
        left = unparse(expr.left, prec)
        right = unparse(expr.right, prec + 1)
        return f"{left} {expr.op} {right}", prec
    if kind is Conditional:
        cond = unparse(expr.cond, _PREC_COND + 1)
        then = unparse(expr.then, _PREC_COND)
        other = unparse(expr.otherwise, _PREC_COND)
        return f"{cond} ? {then} : {other}", _PREC_COND
    if kind is ListExpr:
        items = ", ".join(unparse(item) for item in expr.items)
        return "{ " + items + " }" if items else "{ }", _PREC_ATOM
    if kind is RecordExpr:
        fields = "; ".join(f"{name} = {unparse(value)}" for name, value in expr.fields)
        return "[ " + fields + " ]" if fields else "[ ]", _PREC_ATOM
    if kind is Select:
        base = unparse(expr.base, _PREC_POSTFIX)
        return f"{base}.{expr.attr}", _PREC_POSTFIX
    if kind is Subscript:
        base = unparse(expr.base, _PREC_POSTFIX)
        return f"{base}[{unparse(expr.index)}]", _PREC_POSTFIX
    if kind is FunctionCall:
        args = ", ".join(unparse(arg) for arg in expr.args)
        return f"{expr.name}({args})", _PREC_ATOM
    raise TypeError(f"cannot unparse {kind.__name__}")


def _render_literal(node: Literal) -> str:
    value = node.value
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, UndefinedType):
        return "undefined"
    if isinstance(value, ErrorValue):
        return "error"
    if isinstance(value, str):
        return _escape_string(value)
    if isinstance(value, float):
        return _format_real(value)
    if isinstance(value, int):
        # Negative literals only arise from host-constructed ads (the
        # parser builds UnaryOp('-')); parenthesize so `x - -3` style
        # output still re-parses as unary minus applied to an atom.
        return f"(-{-value})" if value < 0 else str(value)
    raise TypeError(f"cannot render literal {value!r}")


def unparse_classad(ad, indent: int = 2) -> str:
    """Pretty-print a ClassAd in the paper's multi-line figure style."""
    pad = " " * indent
    lines: List[str] = ["["]
    for name, expr in ad.items():
        lines.append(f"{pad}{name} = {unparse(expr)};")
    lines.append("]")
    return "\n".join(lines)
