"""Exception types for the classad language implementation.

The classad language itself (Raman et al., HPDC'98, Section 3.1) never
raises during *evaluation*: type errors, bad function arguments and
division by zero produce the in-language ``error`` value, and references
to missing attributes produce ``undefined``.  Python exceptions are
therefore reserved for problems *outside* evaluation: malformed source
text handed to the lexer/parser, and host-side API misuse.
"""

from __future__ import annotations


class ClassAdException(Exception):
    """Base class for all exceptions raised by :mod:`repro.classads`."""


class LexerError(ClassAdException):
    """Raised when the source text contains an untokenizable character
    sequence (e.g. an unterminated string literal).

    Attributes
    ----------
    position:
        Zero-based character offset of the offending input.
    line, column:
        One-based line and column, for human-readable messages.
    """

    def __init__(self, message: str, position: int, line: int, column: int):
        super().__init__(f"{message} (line {line}, column {column})")
        self.position = position
        self.line = line
        self.column = column


class ParseError(ClassAdException):
    """Raised when token stream does not form a valid classad expression.

    Attributes
    ----------
    token:
        The :class:`repro.classads.lexer.Token` at which parsing failed,
        or ``None`` for unexpected end of input.
    """

    def __init__(self, message: str, token=None):
        if token is not None:
            message = f"{message} (line {token.line}, column {token.column})"
        super().__init__(message)
        self.token = token


class EvaluationLimitExceeded(ClassAdException):
    """Raised when an evaluation exceeds the configured depth/step budget.

    This is a host-side safety valve against pathological (e.g. deeply
    nested or adversarial) ads; ordinary circular references are handled
    in-language by evaluating to ``undefined`` and never raise.
    """
