"""Content fingerprints over the classad wire form.

The advertising fast path (PR 8) needs a cheap, stable answer to "is
this ad the same one I sent last period?" — Robinson & DeWitt's
database framing of the pool makes re-advertisement a no-op update, and
no-op updates are detected by content hashing.  The fingerprint here is
a :mod:`blake2b` digest over the :mod:`repro.classads.serialize` wire
form, canonicalized so that it respects the language's equality rules
at the top level:

* top-level attribute *order* is ignored (payloads are hashed in sorted
  canonical-name order);
* top-level attribute name *case* is ignored (canonical names are the
  lower-cased spellings);
* everything below the top level rides through the serializer verbatim,
  so nested structure, expression shape, and literal *types* all count
  — the fingerprint is strictly finer than ``ClassAd.__eq__`` (which
  conflates ``3``, ``3.0`` and ``true``).  Finer is the safe direction:
  a spurious difference costs one full advertisement, never a wrong
  skip.

``exclude`` names attributes whose *values* are left out of the hash
(the advertising protocol's volatile attributes — ``LoadAvg``,
``KeyboardIdle``, ``DayTime``, ``AdvertisedAt`` — which change every
period by construction and ride the compact ``Refresh`` message
instead).  Excluded attributes still contribute their *presence*: an ad
that drops a volatile attribute fingerprints differently from one that
carries it, so the refresh fast path can never mask an attribute
appearing or disappearing.

All derived forms (per-attribute payload strings, digests per exclusion
set, the wire-size estimate) are cached on the ad itself (the
``_fpcache`` slot) and invalidated wholesale by any mutation, so the
serialization cost is paid once per distinct ad content.
"""

from __future__ import annotations

import json
from hashlib import blake2b
from typing import Dict, FrozenSet, Iterable

from .ast import Expr, ListExpr, Literal, RecordExpr
from .classad import ClassAd
from .serialize import _expr_to_json

_NO_EXCLUDE: FrozenSet[str] = frozenset()

#: Marker hashed in place of an excluded attribute's payload.  It can
#: never collide with a real payload (JSON strings cannot contain a
#: raw NUL) so presence-without-value is unambiguous.
_VOLATILE_MARKER = b"\x00volatile"


def _payloads(ad: ClassAd) -> Dict[str, str]:
    """Per-attribute compact-JSON payload strings, canonical-name keyed."""
    cache = ad._fpcache
    if cache is None:
        cache = ad._fpcache = {}
    payloads = cache.get("payloads")
    if payloads is None:
        payloads = cache["payloads"] = {
            key: json.dumps(_expr_to_json(expr), separators=(",", ":"))
            for key, expr in ad._fields.items()
        }
    return payloads


def fingerprint(ad: ClassAd, exclude: Iterable[str] = _NO_EXCLUDE) -> str:
    """Stable content hash of *ad*'s wire form.

    ``exclude`` attributes contribute presence but not value (see the
    module docstring).  Cached per (ad, exclusion set); any mutation of
    the ad invalidates the cache.
    """
    if exclude is _NO_EXCLUDE:
        exclude_set = _NO_EXCLUDE
    else:
        exclude_set = frozenset(name.lower() for name in exclude)
    payloads = _payloads(ad)
    cache = ad._fpcache
    cache_key = ("fp", exclude_set)
    cached = cache.get(cache_key)
    if cached is not None:
        return cached
    digest = blake2b(digest_size=16)
    for name in sorted(payloads):
        digest.update(name.encode("utf-8"))
        digest.update(b"=")
        if name in exclude_set:
            digest.update(_VOLATILE_MARKER)
        else:
            digest.update(payloads[name].encode("utf-8"))
        digest.update(b";")
    result = digest.hexdigest()
    cache[cache_key] = result
    return result


def ad_wire_size(ad: ClassAd) -> int:
    """Estimated serialized size of *ad* in bytes (names + payloads +
    framing), for the network's bytes-on-wire accounting.  Cached with
    the fingerprint payloads."""
    payloads = _payloads(ad)
    cache = ad._fpcache
    size = cache.get("size")
    if size is None:
        size = cache["size"] = 2 + sum(
            len(name) + len(payload) + 4 for name, payload in payloads.items()
        )
    return size


def payload_equal(a: Expr, b: Expr) -> bool:
    """Whether two expressions serialize to the *same wire payload*.

    This is the sender-side change detector for the refresh fast path:
    it must be exactly as fine as :func:`fingerprint` (which hashes the
    serialized form), so it compares literal types — ``3`` vs ``3.0``
    differs here even though ``==`` conflates them.  Every ``True``
    answer is provable payload equality; anything uncertain answers
    ``False``, which merely costs a full advertisement.
    """
    if a is b:
        return True
    if isinstance(a, Literal) or isinstance(b, Literal):
        if not (isinstance(a, Literal) and isinstance(b, Literal)):
            return False
        va, vb = a.value, b.value
        if type(va) is not type(vb):
            return False
        if isinstance(va, float) and (va != va or vb != vb):
            # NaN never equals itself; treat as changed (conservative).
            return False
        return va == vb
    if isinstance(a, ListExpr):
        if not isinstance(b, ListExpr) or len(a.items) != len(b.items):
            return False
        return all(map(payload_equal, a.items, b.items))
    if isinstance(a, RecordExpr):
        if not isinstance(b, RecordExpr) or len(a.fields) != len(b.fields):
            return False
        # Nested records serialize with original spelling and order, so
        # the comparison is spelling- and order-exact.
        return all(
            na == nb and payload_equal(ea, eb)
            for (na, ea), (nb, eb) in zip(a.fields, b.fields)
        )
    if type(a) is not type(b):
        return False
    # Operator/reference nodes serialize through the unparser; compare
    # the unparsed source, which is deterministic per AST.
    from .unparse import unparse

    return unparse(a) == unparse(b)
