"""Compile classad expressions to cached Python closures.

The negotiation inner loop evaluates the same ``Constraint``/``Rank``
ASTs for every candidate (request, provider) pair; the recursive
interpreter in :mod:`.evaluator` re-dispatches on node type, re-resolves
operators, and re-walks constant subtrees on every one of those
evaluations.  Robinson & DeWitt ("Turning Cluster Management into Data
Management") observe that matchmaking is query evaluation — the standard
fix is compiled predicates.  This module is that fix:

* :func:`compile_expr` lowers an :class:`~.ast.Expr` to a tree of nested
  Python closures — one closure per node, with dispatch resolved at
  compile time, operator implementations bound into cells, and constant
  subtrees folded to literal values;
* every :class:`~.classad.ClassAd` carries a compiled-attribute cache
  (``Constraint``/``Rank`` compile once per ad and are reused across all
  candidates; entries are validated by expression identity, so mutating
  an ad invalidates its stale code automatically);
* structurally equal expressions share compiled code through a global
  memo (thousands of machine ads advertising the same policy text
  compile it once).

Semantics are the interpreter's, exactly: three-valued ``&&``/``||``,
strict operators, ``is``/``isnt`` meta-identity, ``self``/``other``
scope resolution with bare-name fall-through, cycle detection, and
totality (in-language faults yield ``error``, never an exception).  The
differential harness in ``tests/classads/test_compile_equivalence.py``
checks compiled == interpreted on generated expressions; the interpreter
remains the semantic reference and the runtime fallback.

Where the two paths intentionally differ: *budget accounting*.  The
interpreter charges one step per visited node and one depth level per
active node; the compiled path charges a tree's full static size and
static depth up front (at entry and at each attribute resolution).  The
compiled charge is conservative — it can exhaust a budget slightly
earlier when short-circuiting would have skipped a large subtree — and
expressions too large or too deep for a caller's budget (or for the
compiler's own limits) fall back to the interpreter wholesale, so tiny
explicit budgets behave exactly as before.

Kill-switch: set ``REPRO_NO_COMPILE=1`` in the environment (or call
:func:`set_compilation` ``(False)``) and every entry point routes to the
tree-walking interpreter.  CI runs the fast test tier once in that mode
so the fallback cannot rot.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional

from ..obs import metrics as _metrics
from . import evaluator as _interp
from .ast import (
    AttributeRef,
    BinaryOp,
    Conditional,
    Expr,
    FunctionCall,
    ListExpr,
    Literal,
    RecordExpr,
    Select,
    Subscript,
    UnaryOp,
)
from .classad import ClassAd
from .evaluator import (
    DEFAULT_MAX_DEPTH,
    DEFAULT_MAX_STEPS,
    _COMPARISONS,
    _EvalState,
    _arith,
)
from .values import (
    UNDEFINED,
    ErrorValue,
    values_identical,
)

__all__ = [
    "CompiledExpr",
    "cache_hits_total",
    "cache_stats",
    "clear_cache",
    "compilation_enabled",
    "compile_expr",
    "evaluate",
    "evaluate_attribute",
    "set_compilation",
    "structural_key",
]

#: Compiler refusal limits: expressions bigger/deeper than this are left
#: to the interpreter (its per-node budget accounting is exact, and such
#: expressions are pathological, not hot).
MAX_COMPILE_SIZE = 4096
MAX_COMPILE_DEPTH = 100

#: Global structural memo: (Expr, literal-type signature) -> _Compiled |
#: None (None = refused).  Expr equality/hashing is structural, so equal
#: policy text parsed into thousands of ads compiles exactly once.  The
#: type signature is needed because AST equality inherits Python's
#: type-coarse value equality (``Literal(3) == Literal(3.0) ==
#: Literal(True)``) while the language distinguishes them (``is``,
#: ``isInteger``); without it the memo would conflate their code.
_MEMO: Dict[tuple, Optional["_Compiled"]] = {}
_MEMO_LIMIT = 4096

_MISSING = object()


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


_ENABLED = not _env_flag("REPRO_NO_COMPILE")


def compilation_enabled() -> bool:
    """Whether the compiled path is active (see ``REPRO_NO_COMPILE``)."""
    return _ENABLED


def set_compilation(enabled: bool) -> None:
    """Programmatic kill-switch (benchmarks and tests toggle this)."""
    global _ENABLED
    _ENABLED = bool(enabled)


# ---------------------------------------------------------------------------
# observability
#
# The always-on tallies are single module-int adds (negligible next to an
# evaluation); a registry collector settles deltas into the real counters
# whenever a snapshot is taken, mirroring the evaluator's pattern.  The
# matchmaker also reads `cache_hits_total()` around a cycle to report the
# per-cycle `evals_saved` event field.

_C_COMPILES = _metrics.counter(
    "classads.compile.compiles", "expressions lowered to closures"
)
_C_HITS = _metrics.counter(
    "classads.compile.cache_hits", "evaluations served by a cached compiled attribute"
)
_C_MISSES = _metrics.counter(
    "classads.compile.cache_misses", "compiled-attribute cache misses (compile or re-validate)"
)

_stat_compiles = 0
_stat_hits = 0
_stat_misses = 0
_settled_compiles = 0
_settled_hits = 0
_settled_misses = 0


def _flush_compile_counters() -> None:
    global _settled_compiles, _settled_hits, _settled_misses
    if _stat_compiles != _settled_compiles:
        _C_COMPILES.inc(_stat_compiles - _settled_compiles)
        _settled_compiles = _stat_compiles
    if _stat_hits != _settled_hits:
        _C_HITS.inc(_stat_hits - _settled_hits)
        _settled_hits = _stat_hits
    if _stat_misses != _settled_misses:
        _C_MISSES.inc(_stat_misses - _settled_misses)
        _settled_misses = _stat_misses


_metrics.register_collector(_flush_compile_counters)


def cache_hits_total() -> int:
    """Running count of compiled-cache hits (monotone, always counted)."""
    return _stat_hits


def cache_stats() -> Dict[str, int]:
    """The always-on tallies: compiles / cache hits / cache misses."""
    return {"compiles": _stat_compiles, "hits": _stat_hits, "misses": _stat_misses}


def clear_cache() -> None:
    """Drop the global compiled-code memo (cold-cache benchmarking)."""
    _MEMO.clear()


# ---------------------------------------------------------------------------
# shared fault constants (ErrorValue compares equal regardless of reason,
# so sharing instances is semantically invisible and allocation-free)

_ERR_STEPS = ErrorValue("evaluation step budget exceeded")
_ERR_DEPTH = ErrorValue("evaluation depth budget exceeded")
_ERR_LOGIC = ErrorValue("logical operator applied to non-boolean")
_ERR_GUARD = ErrorValue("conditional guard is not boolean")
_ERR_NOT_BOOL = ErrorValue("! applied to non-boolean")
_ERR_SUB_LIST = ErrorValue("subscript of non-list")
_ERR_SUB_INT = ErrorValue("non-integer subscript")
_ERR_CMP = ErrorValue("comparison of incompatible types")


class _Compiled:
    """A compiled expression: its closure plus static size/depth charges."""

    __slots__ = ("fn", "size", "depth")

    def __init__(self, fn: Callable, size: int, depth: int):
        self.fn = fn
        self.size = size
        self.depth = depth


# ---------------------------------------------------------------------------
# static measurement

_CHILDREN = {
    Literal: lambda n: (),
    AttributeRef: lambda n: (),
    UnaryOp: lambda n: (n.operand,),
    BinaryOp: lambda n: (n.left, n.right),
    Conditional: lambda n: (n.cond, n.then, n.otherwise),
    ListExpr: lambda n: n.items,
    RecordExpr: lambda n: (),  # fields evaluate lazily, in their own ad
    Select: lambda n: (n.base,),
    Subscript: lambda n: (n.base, n.index),
    FunctionCall: lambda n: n.args,
}


def _measure(expr: Expr):
    """(node count, tree depth) of *expr*, or None when past the limits."""
    stack = [(expr, 1)]
    count = 0
    max_depth = 0
    while stack:
        node, depth = stack.pop()
        count += 1
        if depth > max_depth:
            max_depth = depth
        if count > MAX_COMPILE_SIZE or depth > MAX_COMPILE_DEPTH:
            return None
        children = _CHILDREN.get(type(node))
        if children is None:
            return None  # unknown node kind: interpreter's problem
        for child in children(node):
            stack.append((child, depth + 1))
    return count, max_depth


# ---------------------------------------------------------------------------
# attribute resolution (the only dynamically recursive part)


def _compiled_for(ad: ClassAd, name: str, expr: Expr) -> Optional[_Compiled]:
    """Compiled code for attribute *name* of *ad* (canonical name).

    The per-ad cache is validated by expression identity — rebinding an
    attribute replaces the expression object, so stale code can never be
    used after a mutation.  Structural sharing happens one level down in
    the global memo.
    """
    global _stat_hits, _stat_misses
    cache = ad._ccache
    if cache is None:
        cache = ad._ccache = {}
    entry = cache.get(name)
    if entry is not None and entry[0] is expr:
        _stat_hits += 1
        return entry[1]
    _stat_misses += 1
    compiled = _memo_compile(expr)
    cache[name] = (expr, compiled)
    return compiled


def _type_sig(expr: Expr) -> tuple:
    """Everything structural equality ignores but compiled code preserves:
    literal value types (int/float/bool/...) and record field spellings."""
    from .ast import walk

    sig = []
    for node in walk(expr):
        t = type(node)
        if t is Literal:
            sig.append(type(node.value).__name__)
        elif t is RecordExpr:
            sig.extend(name for name, _ in node.fields)
    return tuple(sig)


def structural_key(expr: Expr) -> tuple:
    """The global memo's key for *expr*: structural equality refined by
    the literal-type signature.

    Two expressions with equal keys are *behaviourally identical* — they
    evaluate to identical values in every environment — which is exactly
    what AST equality alone cannot promise (``Literal(3) == Literal(3.0)``
    while ``is``/``isInteger`` distinguish them).  The matchmaker's
    request-batching layer keys its equivalence classes on this, so the
    guarantee is load-bearing beyond the compile cache.
    """
    return (expr, _type_sig(expr))


def _memo_compile(expr: Expr) -> Optional[_Compiled]:
    global _stat_compiles
    key = structural_key(expr)
    compiled = _MEMO.get(key, _MISSING)
    if compiled is not _MISSING:
        return compiled
    measured = _measure(expr)
    if measured is None:
        compiled = None
    else:
        size, depth = measured
        fn, const = _build(expr)
        if const is not _NOT_CONST:
            value = const
            fn = lambda state: value  # noqa: E731
        compiled = _Compiled(fn, size, depth)
        _stat_compiles += 1
    if len(_MEMO) >= _MEMO_LIMIT:
        _MEMO.clear()
    _MEMO[key] = compiled
    return compiled


def _resolve_root(expr: Expr, ad: ClassAd, name: str, state: _EvalState):
    """Evaluate non-literal attribute *name* of root ad *ad* in *state*.

    Mirrors the interpreter's ``_resolve_found``: cycle detection on the
    (ad identity, canonical name) pair — the key format matches the
    interpreter's exactly, so mixed compiled/interpreted evaluation
    shares one cycle set — plus the conservative static budget charge.
    """
    key = (id(ad), name)
    in_progress = state.in_progress
    if key in in_progress:
        return UNDEFINED  # circular reference
    compiled = _compiled_for(ad, name, expr)
    if compiled is None:
        return _interp._resolve_found(expr, ad, name, state)
    steps = state.steps + compiled.size
    if steps > state.max_steps:
        return _ERR_STEPS
    depth = state.depth + compiled.depth
    if depth >= state.max_depth:
        return _ERR_DEPTH
    state.steps = steps
    state.depth = depth
    in_progress.add(key)
    try:
        return compiled.fn(state)
    finally:
        in_progress.discard(key)
        state.depth = depth - compiled.depth


# ---------------------------------------------------------------------------
# the compiler proper
#
# _build(expr) -> (closure, const) where const is _NOT_CONST for dynamic
# nodes and the folded value otherwise.  Closures take the shared
# _EvalState and return a classad value; they never raise for in-language
# faults.  Constant folding calls the freshly built closure once with
# state=None — a node is only foldable when no path through it can touch
# the state, which holds exactly when every child is constant and the
# node is not a reference or record constructor.

_NOT_CONST = object()


def _build(expr: Expr):
    kind = type(expr)
    builder = _BUILDERS.get(kind)
    if builder is None:  # unreachable behind _measure, but stay total
        reason = ErrorValue(f"unknown expression node {kind.__name__}")
        return (lambda state: reason), _NOT_CONST
    return builder(expr)


def _fold(fn):
    """Run a state-free closure once and return (trivial closure, value)."""
    value = fn(None)
    return (lambda state: value), value


def _build_literal(expr: Literal):
    value = expr.value
    return (lambda state: value), value


def _build_ref(expr: AttributeRef):
    name = expr.canonical
    scope = expr.scope

    if scope == "self":

        def fn(state):
            ad = state.self_ad
            if ad is None:
                return UNDEFINED
            bound = ad._fields.get(name)
            if bound is None:
                return UNDEFINED
            if type(bound) is Literal:
                return bound.value
            return _resolve_root(bound, ad, name, state)

    elif scope == "other":

        def fn(state):
            ad = state.other_ad
            if ad is None:
                return UNDEFINED
            bound = ad._fields.get(name)
            if bound is None:
                return UNDEFINED
            if type(bound) is Literal:
                return bound.value
            return _resolve_root(bound, ad, name, state.flipped())

    else:
        # Bare name: the hot case is a flat match environment (one root
        # scope).  Nested lexical chains (inside Select / nested records)
        # defer to the interpreter's resolution for exactness.
        def fn(state):
            scopes = state.scopes
            if len(scopes) == 1:
                ad = scopes[0]
                bound = ad._fields.get(name)
                if bound is not None:
                    if type(bound) is Literal:
                        return bound.value
                    return _resolve_root(bound, ad, name, state)
            elif scopes:
                return _interp._eval_ref(expr, state)
            other = state.other_ad
            if other is not None:
                bound = other._fields.get(name)
                if bound is not None:
                    if type(bound) is Literal:
                        return bound.value
                    return _resolve_root(bound, other, name, state.flipped())
            return UNDEFINED

    return fn, _NOT_CONST


def _build_unary(expr: UnaryOp):
    operand_fn, operand_const = _build(expr.operand)
    op = expr.op

    if op == "!":

        def fn(state):
            value = operand_fn(state)
            if value is True:
                return False
            if value is False:
                return True
            if value is UNDEFINED:
                return UNDEFINED
            if type(value) is ErrorValue:
                return value
            return _ERR_NOT_BOOL

    else:
        negate = op == "-"
        reason = ErrorValue(f"unary {op} applied to non-number")

        def fn(state):
            value = operand_fn(state)
            if type(value) is ErrorValue:
                return value
            if value is UNDEFINED:
                return UNDEFINED
            if type(value) is bool:
                value = 1 if value else 0
            elif type(value) is not int and type(value) is not float:
                return reason
            return -value if negate else value

    if operand_const is not _NOT_CONST:
        return _fold(fn)
    return fn, _NOT_CONST


def _logic(value):
    """The compiled twin of the interpreter's ``_to_logic``."""
    if value is True or value is False or value is UNDEFINED:
        return value
    if type(value) is ErrorValue:
        return value
    return _ERR_LOGIC


def _build_and(left_fn, left_const, right_fn, right_const):
    if left_const is not _NOT_CONST:
        left_logic = _logic(left_const)
        if left_logic is False:
            return (lambda state: False), False
        if left_logic is True:

            def fn(state):
                return _logic(right_fn(state))

        else:  # undefined or error on the left

            def fn(state):
                right = _logic(right_fn(state))
                if right is False:
                    return False
                if type(left_logic) is ErrorValue:
                    return left_logic
                if type(right) is ErrorValue:
                    return right
                return UNDEFINED

    else:

        def fn(state):
            left = _logic(left_fn(state))
            if left is False:
                return False
            right = _logic(right_fn(state))
            if right is False:
                return False
            if type(left) is ErrorValue:
                return left
            if type(right) is ErrorValue:
                return right
            if left is UNDEFINED or right is UNDEFINED:
                return UNDEFINED
            return True

    if left_const is not _NOT_CONST and right_const is not _NOT_CONST:
        return _fold(fn)
    return fn, _NOT_CONST


def _build_or(left_fn, left_const, right_fn, right_const):
    if left_const is not _NOT_CONST:
        left_logic = _logic(left_const)
        if left_logic is True:
            return (lambda state: True), True
        if left_logic is False:

            def fn(state):
                return _logic(right_fn(state))

        else:

            def fn(state):
                right = _logic(right_fn(state))
                if right is True:
                    return True
                if type(left_logic) is ErrorValue:
                    return left_logic
                if type(right) is ErrorValue:
                    return right
                return UNDEFINED

    else:

        def fn(state):
            left = _logic(left_fn(state))
            if left is True:
                return True
            right = _logic(right_fn(state))
            if right is True:
                return True
            if type(left) is ErrorValue:
                return left
            if type(right) is ErrorValue:
                return right
            if left is UNDEFINED or right is UNDEFINED:
                return UNDEFINED
            return False

    if left_const is not _NOT_CONST and right_const is not _NOT_CONST:
        return _fold(fn)
    return fn, _NOT_CONST


def _build_binary(expr: BinaryOp):
    op = expr.op
    left_fn, left_const = _build(expr.left)
    right_fn, right_const = _build(expr.right)
    both_const = left_const is not _NOT_CONST and right_const is not _NOT_CONST

    if op == "&&":
        return _build_and(left_fn, left_const, right_fn, right_const)
    if op == "||":
        return _build_or(left_fn, left_const, right_fn, right_const)

    if op == "is":

        def fn(state):
            return values_identical(left_fn(state), right_fn(state))

    elif op == "isnt":

        def fn(state):
            return not values_identical(left_fn(state), right_fn(state))

    elif op in _COMPARISONS:
        compare = _COMPARISONS[op]
        if right_const is not _NOT_CONST and type(right_const) is str:
            # The dominant matchmaking shape: attr <cmp> "constant".
            lowered = right_const.lower()

            def fn(state):
                left = left_fn(state)
                if type(left) is str:
                    return compare(left.lower(), lowered)
                if type(left) is ErrorValue:
                    return left
                if left is UNDEFINED:
                    return UNDEFINED
                return _ERR_CMP  # string vs non-string never compares

        else:

            def fn(state):
                left = left_fn(state)
                right = right_fn(state)
                if type(left) is ErrorValue:
                    return left
                if type(right) is ErrorValue:
                    return right
                if left is UNDEFINED or right is UNDEFINED:
                    return UNDEFINED
                if type(left) is str and type(right) is str:
                    return compare(left.lower(), right.lower())
                if type(left) is bool:
                    left = 1 if left else 0
                elif type(left) is not int and type(left) is not float:
                    return _ERR_CMP
                if type(right) is bool:
                    right = 1 if right else 0
                elif type(right) is not int and type(right) is not float:
                    return _ERR_CMP
                return compare(left, right)

    else:  # arithmetic (+ - * / %) and anything unknown: share _arith

        def fn(state):
            left = left_fn(state)
            right = right_fn(state)
            if type(left) is ErrorValue:
                return left
            if type(right) is ErrorValue:
                return right
            if left is UNDEFINED or right is UNDEFINED:
                return UNDEFINED
            return _arith(op, left, right)

    if both_const:
        return _fold(fn)
    return fn, _NOT_CONST


def _build_conditional(expr: Conditional):
    cond_fn, cond_const = _build(expr.cond)
    then_fn, then_const = _build(expr.then)
    else_fn, else_const = _build(expr.otherwise)

    if cond_const is not _NOT_CONST:
        # The guard is known now: the dead branch is dropped entirely.
        if cond_const is True:
            return then_fn, then_const
        if cond_const is False:
            return else_fn, else_const
        if cond_const is UNDEFINED:
            return (lambda state: UNDEFINED), UNDEFINED
        if type(cond_const) is ErrorValue:
            value = cond_const
            return (lambda state: value), value
        return (lambda state: _ERR_GUARD), _ERR_GUARD

    def fn(state):
        cond = cond_fn(state)
        if cond is True:
            return then_fn(state)
        if cond is False:
            return else_fn(state)
        if cond is UNDEFINED:
            return UNDEFINED
        if type(cond) is ErrorValue:
            return cond
        return _ERR_GUARD

    return fn, _NOT_CONST


def _build_list(expr: ListExpr):
    built = [_build(item) for item in expr.items]
    fns = [fn for fn, _ in built]
    if all(const is not _NOT_CONST for _, const in built):
        values = [const for _, const in built]
        # Fresh list per evaluation, like the interpreter (callers may
        # treat evaluated lists as their own).
        return (lambda state: values.copy()), _NOT_CONST

    def fn(state):
        return [item_fn(state) for item_fn in fns]

    return fn, _NOT_CONST


def _build_record(expr: RecordExpr):
    # A record constructor yields a *fresh* mutable ad per evaluation;
    # never folded.
    def fn(state):
        return ClassAd.from_record(expr)

    return fn, _NOT_CONST


def _build_select(expr: Select):
    base_fn, base_const = _build(expr.base)
    name = expr.canonical

    def fn(state):
        base = base_fn(state)
        if base is UNDEFINED:
            return UNDEFINED
        if type(base) is ErrorValue:
            return base
        if not isinstance(base, ClassAd):
            return ErrorValue(f"cannot select attribute of {type(base).__name__}")
        bound = base._fields.get(name)
        if bound is None:
            return UNDEFINED
        if type(bound) is Literal:
            return bound.value
        # Nested-record scoping: join the lexical chain and let the
        # interpreter resolve, exactly as the reference semantics do.
        state.scopes.append(base)
        try:
            return _interp._resolve_found(bound, base, name, state)
        finally:
            state.scopes.pop()

    if base_const is not _NOT_CONST:
        # A constant base is never a ClassAd (records don't fold), so
        # this can only fold to undefined/error — still worth folding.
        return _fold(fn)
    return fn, _NOT_CONST


def _build_subscript(expr: Subscript):
    base_fn, base_const = _build(expr.base)
    index_fn, index_const = _build(expr.index)

    def fn(state):
        base = base_fn(state)
        index = index_fn(state)
        if type(base) is ErrorValue:
            return base
        if type(index) is ErrorValue:
            return index
        if base is UNDEFINED or index is UNDEFINED:
            return UNDEFINED
        if type(base) is not list:
            return _ERR_SUB_LIST
        if type(index) is not int:
            return _ERR_SUB_INT
        if 0 <= index < len(base):
            return base[index]
        return ErrorValue(f"subscript {index} out of range (list of {len(base)})")

    if base_const is not _NOT_CONST and index_const is not _NOT_CONST:
        return _fold(fn)
    return fn, _NOT_CONST


def _build_call(expr: FunctionCall):
    from .builtins import BUILTINS  # late import: builtins use the evaluator

    name = expr.canonical
    if name == "ifthenelse":
        if len(expr.args) != 3:
            reason = ErrorValue("ifThenElse expects 3 arguments")
            return (lambda state: reason), reason
        return _build_conditional(
            Conditional(expr.args[0], expr.args[1], expr.args[2])
        )
    builtin = BUILTINS.get(name)
    if builtin is None:
        reason = ErrorValue(f"unknown function {expr.name!r}")
        return (lambda state: reason), reason

    built = [_build(arg) for arg in expr.args]
    fns = [fn for fn, _ in built]

    def fn(state):
        return builtin([arg_fn(state) for arg_fn in fns])

    if all(const is not _NOT_CONST for _, const in built):
        return _fold(fn)  # builtins are pure and total
    return fn, _NOT_CONST


_BUILDERS = {
    Literal: _build_literal,
    AttributeRef: _build_ref,
    UnaryOp: _build_unary,
    BinaryOp: _build_binary,
    Conditional: _build_conditional,
    ListExpr: _build_list,
    RecordExpr: _build_record,
    Select: _build_select,
    Subscript: _build_subscript,
    FunctionCall: _build_call,
}


# ---------------------------------------------------------------------------
# entry points


def _run_compiled(compiled: _Compiled, self_ad, other, max_steps, max_depth, seed_key=None):
    state = _EvalState(self_ad, other, max_steps, max_depth)
    state.steps = compiled.size
    if seed_key is not None:
        state.in_progress.add(seed_key)
    try:
        result = compiled.fn(state)
    except RecursionError:
        # Pathological resolution chains bottom out in the Python stack
        # before the (conservatively charged) budget does; stay total.
        result = ErrorValue("evaluation depth budget exceeded")
    if _metrics.enabled:
        _interp._note_evaluation(state.steps)
    return result


def evaluate(
    expr: Expr,
    self_ad: Optional[ClassAd] = None,
    other: Optional[ClassAd] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_depth: int = DEFAULT_MAX_DEPTH,
):
    """Compiled twin of :func:`repro.classads.evaluator.evaluate`.

    Falls back to the interpreter when compilation is disabled, refused,
    or the compiled static charges don't fit the caller's budgets.
    """
    if not _ENABLED:
        return _interp.evaluate(expr, self_ad, other, max_steps, max_depth)
    compiled = _memo_compile(expr)
    if compiled is None or compiled.size > max_steps or compiled.depth >= max_depth:
        return _interp.evaluate(expr, self_ad, other, max_steps, max_depth)
    return _run_compiled(compiled, self_ad, other, max_steps, max_depth)


def evaluate_attribute(
    ad: ClassAd,
    name: str,
    other: Optional[ClassAd] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_depth: int = DEFAULT_MAX_DEPTH,
):
    """Compiled twin of :func:`repro.classads.evaluator.evaluate_attribute`.

    This is the negotiation hot path: ``Constraint``/``Rank`` compile
    once per ad, and every later (request, provider) pairing reuses the
    cached closure.
    """
    if not _ENABLED:
        return _interp.evaluate_attribute(ad, name, other, max_steps, max_depth)
    canonical = name.lower()
    expr = ad._fields.get(canonical)
    if expr is None:
        return UNDEFINED
    if type(expr) is Literal:
        if _metrics.enabled:
            _interp._note_evaluation(1)
        return expr.value
    compiled = _compiled_for(ad, canonical, expr)
    if compiled is None or compiled.size > max_steps or compiled.depth >= max_depth:
        return _interp.evaluate_attribute(ad, name, other, max_steps, max_depth)
    return _run_compiled(
        compiled, ad, other, max_steps, max_depth, seed_key=(id(ad), canonical)
    )


class CompiledExpr:
    """A detached expression compiled once, for evaluation against many ads.

    ``query.select`` compiles its constraint once and probes the whole
    pool with it; this wrapper carries the compiled code (or the
    interpreter fallback when compilation was refused/disabled).
    """

    __slots__ = ("expr", "_compiled")

    def __init__(self, expr: Expr):
        self.expr = expr
        self._compiled = _memo_compile(expr) if _ENABLED else None

    def evaluate(
        self,
        self_ad: Optional[ClassAd] = None,
        other: Optional[ClassAd] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        max_depth: int = DEFAULT_MAX_DEPTH,
    ):
        compiled = self._compiled
        if (
            not _ENABLED
            or compiled is None
            or compiled.size > max_steps
            or compiled.depth >= max_depth
        ):
            return _interp.evaluate(self.expr, self_ad, other, max_steps, max_depth)
        return _run_compiled(compiled, self_ad, other, max_steps, max_depth)


def compile_expr(expr: Expr) -> CompiledExpr:
    """Compile *expr* (memoized); the result is always safe to evaluate."""
    return CompiledExpr(expr)
