"""Abstract syntax tree for classad expressions.

Expressions are immutable and hashable so they can be shared freely
between ads (the workload generators build thousands of machine ads that
share policy expressions) and used as dict keys by the aggregation engine
(experiment E7 clusters ads by their expression *structure*).

Node equality is structural, which gives us:

* cheap ad-identity checks for the ``is`` operator on nested ads,
* structural signatures for group matching (S21),
* parse∘unparse round-trip property tests (``parse(unparse(e)) == e``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from .values import ERROR, UNDEFINED, ErrorValue, UndefinedType

LiteralValue = Union[int, float, str, bool, UndefinedType, ErrorValue]


class Expr:
    """Base class for all expression nodes."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .unparse import unparse

        return f"<Expr {unparse(self)}>"


@dataclass(frozen=True, repr=False)
class Literal(Expr):
    """A constant: integer, real, string, boolean, undefined, or error."""

    __slots__ = ("value",)
    value: LiteralValue


#: Shared literal nodes for the distinguished constants.
UNDEFINED_LITERAL = Literal(UNDEFINED)
ERROR_LITERAL = Literal(ERROR)
TRUE_LITERAL = Literal(True)
FALSE_LITERAL = Literal(False)


@dataclass(frozen=True, repr=False)
class AttributeRef(Expr):
    """A reference to an attribute by name.

    ``scope`` distinguishes the three reference forms of Section 3.1:

    * ``None`` — a bare name like ``Memory``; "the evaluation mechanism
      assumes the self prefix", resolving lexically through enclosing
      nested ads and finally the root ad of this side of the match.
    * ``"self"`` — ``self.Memory``: the root ad containing the reference.
    * ``"other"`` — ``other.Memory``: the root ad of the candidate ad.

    Names are case-preserving but the language is case-insensitive, so
    ``canonical`` (lower-cased) is what resolution uses.
    """

    __slots__ = ("name", "scope", "canonical")
    name: str
    scope: Union[str, None]
    canonical: str

    def __init__(self, name: str, scope: Union[str, None] = None):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "scope", scope)
        object.__setattr__(self, "canonical", name.lower())

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, AttributeRef)
            and self.canonical == other.canonical
            and self.scope == other.scope
        )

    def __hash__(self) -> int:
        return hash((AttributeRef, self.canonical, self.scope))


@dataclass(frozen=True, repr=False)
class UnaryOp(Expr):
    """Unary operator application: ``-``, ``+``, ``!``."""

    __slots__ = ("op", "operand")
    op: str
    operand: Expr


@dataclass(frozen=True, repr=False)
class BinaryOp(Expr):
    """Binary operator application.

    ``op`` is one of: ``+ - * / % < <= > >= == != && || is isnt``.
    """

    __slots__ = ("op", "left", "right")
    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True, repr=False)
class Conditional(Expr):
    """The ternary ``cond ? then : else`` operator."""

    __slots__ = ("cond", "then", "otherwise")
    cond: Expr
    then: Expr
    otherwise: Expr


@dataclass(frozen=True, repr=False)
class ListExpr(Expr):
    """A list constructor ``{ e1, e2, ... }``."""

    __slots__ = ("items",)
    items: Tuple[Expr, ...]

    def __init__(self, items):
        object.__setattr__(self, "items", tuple(items))


@dataclass(frozen=True, repr=False)
class RecordExpr(Expr):
    """A nested classad constructor ``[ name = expr ; ... ]``.

    Classads are first-class in the model ("They can be arbitrarily
    nested, leading to a natural language for expressing resource
    aggregates or co-allocation requests" — Section 3.1), so a record is
    an ordinary expression node.  Attribute order is preserved for
    faithful unparse; lookup is case-insensitive.
    """

    __slots__ = ("fields", "_index")
    fields: Tuple[Tuple[str, Expr], ...]

    def __init__(self, fields):
        object.__setattr__(self, "fields", tuple(fields))
        object.__setattr__(
            self, "_index", {name.lower(): expr for name, expr in fields}
        )

    def lookup(self, name: str):
        """Return the expression bound to *name* (case-insensitive) or None."""
        return self._index.get(name.lower())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RecordExpr):
            return NotImplemented
        if len(self.fields) != len(other.fields):
            return False
        return all(
            a[0].lower() == b[0].lower() and a[1] == b[1]
            for a, b in zip(self.fields, other.fields)
        )

    def __hash__(self) -> int:
        return hash(
            (RecordExpr, tuple((n.lower(), e) for n, e in self.fields))
        )


@dataclass(frozen=True, repr=False)
class Select(Expr):
    """Attribute selection on an expression: ``expr.Attr``.

    Distinct from :class:`AttributeRef`: the base is a general expression
    (typically a nested ad), e.g. ``cpu.Mips`` where ``cpu`` names a
    record-valued attribute.
    """

    __slots__ = ("base", "attr", "canonical")
    base: Expr
    attr: str
    canonical: str

    def __init__(self, base: Expr, attr: str):
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "attr", attr)
        object.__setattr__(self, "canonical", attr.lower())

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Select)
            and self.base == other.base
            and self.canonical == other.canonical
        )

    def __hash__(self) -> int:
        return hash((Select, self.base, self.canonical))


@dataclass(frozen=True, repr=False)
class Subscript(Expr):
    """List indexing: ``expr[index]`` (0-based)."""

    __slots__ = ("base", "index")
    base: Expr
    index: Expr


@dataclass(frozen=True, repr=False)
class FunctionCall(Expr):
    """A built-in function call ``name(arg, ...)``.

    Function names are case-insensitive; resolution against the builtin
    table happens at evaluation time so unknown functions evaluate to
    ``error`` rather than failing the parse (ads from newer agents must
    degrade gracefully on older matchmakers — the evolvability argument
    of Section 1).
    """

    __slots__ = ("name", "args", "canonical")
    name: str
    args: Tuple[Expr, ...]
    canonical: str

    def __init__(self, name: str, args):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "args", tuple(args))
        object.__setattr__(self, "canonical", name.lower())

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionCall)
            and self.canonical == other.canonical
            and self.args == other.args
        )

    def __hash__(self) -> int:
        return hash((FunctionCall, self.canonical, self.args))


def walk(expr: Expr):
    """Yield *expr* and every sub-expression, pre-order.

    Used by the diagnostics engine (S22) to decompose Constraints into
    clauses and by the index builder (S7) to extract indexable predicates.
    """
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, UnaryOp):
            stack.append(node.operand)
        elif isinstance(node, BinaryOp):
            stack.append(node.right)
            stack.append(node.left)
        elif isinstance(node, Conditional):
            stack.append(node.otherwise)
            stack.append(node.then)
            stack.append(node.cond)
        elif isinstance(node, ListExpr):
            stack.extend(reversed(node.items))
        elif isinstance(node, RecordExpr):
            stack.extend(e for _, e in reversed(node.fields))
        elif isinstance(node, Select):
            stack.append(node.base)
        elif isinstance(node, Subscript):
            stack.append(node.index)
            stack.append(node.base)
        elif isinstance(node, FunctionCall):
            stack.extend(reversed(node.args))


def external_references(expr: Expr):
    """Return the set of canonical attribute names *expr* references.

    Scoped references are reported as ``("self", name)`` / ``("other",
    name)``; bare names as ``(None, name)``.  Select chains rooted at a
    reference report only the root.
    """
    refs = set()
    for node in walk(expr):
        if isinstance(node, AttributeRef):
            refs.add((node.scope, node.canonical))
    return refs
