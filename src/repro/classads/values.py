"""Value domain of the classad language.

Section 3.1 of the paper defines attributes as "simple integer, real, or
string constants, or ... more complicated expressions constructed with
arithmetic and logical operators and record and list constructors", with
two distinguished constants: ``undefined`` (produced by references to
non-existent attributes and propagated by strict operators) and — in the
classic ClassAd realization the paper describes — ``error`` (produced by
type mismatches and other in-language faults).

We represent values as plain Python objects wherever possible:

========================  =========================================
classad type              Python representation
========================  =========================================
Integer                   ``int`` (but not ``bool``)
Real                      ``float``
String                    ``str``
Boolean                   ``bool``
Undefined                 :data:`UNDEFINED` (singleton)
Error                     :class:`ErrorValue` (carries a reason)
List                      ``list`` of values
ClassAd (nested record)   :class:`repro.classads.classad.ClassAd`
========================  =========================================

Using native types keeps the evaluator's hot path allocation-free for the
common case, which matters for the scalability benchmarks (experiment E6):
matching a 5,000-machine pool evaluates hundreds of thousands of
sub-expressions per negotiation cycle.
"""

from __future__ import annotations

from typing import Any, Union


class UndefinedType:
    """The classad ``undefined`` constant.  A singleton: use :data:`UNDEFINED`."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undefined"

    def __bool__(self) -> bool:
        # Guard against accidental host-side truthiness tests: undefined is
        # neither true nor false, and silently treating it as falsy hides
        # three-valued-logic bugs.  Host code must use is_true()/is_false().
        raise TypeError(
            "undefined has no Python truth value; use classad three-valued "
            "logic helpers (is_true / is_false) instead"
        )

    def __hash__(self) -> int:
        return hash("classad-undefined")

    def __reduce__(self):
        return (UndefinedType, ())


UNDEFINED = UndefinedType()


class ErrorValue:
    """The classad ``error`` constant, carrying a human-readable reason.

    Two error values compare equal regardless of reason (the language has a
    single ``error`` constant; the reason exists only for diagnostics).
    """

    __slots__ = ("reason",)

    def __init__(self, reason: str = "error"):
        self.reason = reason

    def __repr__(self) -> str:
        return f"error({self.reason!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ErrorValue)

    def __hash__(self) -> int:
        return hash("classad-error")

    def __bool__(self) -> bool:
        raise TypeError(
            "error has no Python truth value; use classad three-valued "
            "logic helpers (is_true / is_false) instead"
        )


ERROR = ErrorValue()

#: Union of all classad value types (ClassAd joins via duck typing to
#: avoid a circular import; see repro.classads.classad).
Value = Union[int, float, str, bool, UndefinedType, ErrorValue, list]


def is_undefined(v: Any) -> bool:
    """True iff *v* is the classad ``undefined`` constant."""
    return isinstance(v, UndefinedType)


def is_error(v: Any) -> bool:
    """True iff *v* is a classad ``error`` value."""
    return isinstance(v, ErrorValue)


def is_boolean(v: Any) -> bool:
    """True iff *v* is a classad Boolean."""
    return isinstance(v, bool)


def is_integer(v: Any) -> bool:
    """True iff *v* is a classad Integer (excludes Booleans)."""
    return isinstance(v, int) and not isinstance(v, bool)


def is_real(v: Any) -> bool:
    """True iff *v* is a classad Real."""
    return isinstance(v, float)


def is_number(v: Any) -> bool:
    """True iff *v* is an Integer or Real (excludes Booleans)."""
    return is_integer(v) or is_real(v)


def is_string(v: Any) -> bool:
    """True iff *v* is a classad String."""
    return isinstance(v, str)


def is_list(v: Any) -> bool:
    """True iff *v* is a classad List."""
    return isinstance(v, list)


def is_classad(v: Any) -> bool:
    """True iff *v* is a (nested) classad record."""
    from .classad import ClassAd  # local import to break the cycle

    return isinstance(v, ClassAd)


def is_true(v: Any) -> bool:
    """True iff *v* is the Boolean ``true``.

    This is the predicate the matchmaking algorithm uses on ``Constraint``
    values: the paper requires both Constraints to "evaluate to true", and
    "the match fails if the Constraint evaluates to undefined" — so
    undefined, error, and non-Boolean values all yield False here.
    """
    return v is True


def is_false(v: Any) -> bool:
    """True iff *v* is the Boolean ``false``."""
    return v is False


def value_type_name(v: Any) -> str:
    """Human-readable classad type name of *v* (for error reasons)."""
    if is_undefined(v):
        return "undefined"
    if is_error(v):
        return "error"
    if is_boolean(v):
        return "boolean"
    if is_integer(v):
        return "integer"
    if is_real(v):
        return "real"
    if is_string(v):
        return "string"
    if is_list(v):
        return "list"
    if is_classad(v):
        return "classad"
    return type(v).__name__


def coerce_to_number(v: Any):
    """Return *v* as an int/float if it is numeric or Boolean, else None.

    Booleans promote to integers (true=1, false=0).  The paper's Figure 1
    relies on this: ``Rank = member(...)*10 + member(...)`` multiplies a
    Boolean by an integer.
    """
    if is_boolean(v):
        return int(v)
    if is_number(v):
        return v
    return None


def rank_value(v: Any) -> float:
    """Map an evaluated Rank expression to its numeric goodness.

    Per Section 3.1: "non-integer values are treated as zero".  Classic
    ClassAds generalize this to "non-numeric"; Booleans promote.
    """
    n = coerce_to_number(v)
    return float(n) if n is not None else 0.0


def values_identical(a: Any, b: Any) -> bool:
    """The ``is`` operator's meta-identity: same type *and* same value.

    Unlike ``==`` this never yields undefined, treats strings
    case-sensitively, and distinguishes 1 from 1.0 and true.
    """
    if is_undefined(a) or is_undefined(b):
        return is_undefined(a) and is_undefined(b)
    if is_error(a) or is_error(b):
        return is_error(a) and is_error(b)
    if is_boolean(a) or is_boolean(b):
        return is_boolean(a) and is_boolean(b) and a == b
    if is_integer(a) or is_integer(b):
        return is_integer(a) and is_integer(b) and a == b
    if is_real(a) or is_real(b):
        return is_real(a) and is_real(b) and a == b
    if is_string(a) or is_string(b):
        return is_string(a) and is_string(b) and a == b
    if is_list(a) or is_list(b):
        return (
            is_list(a)
            and is_list(b)
            and len(a) == len(b)
            and all(values_identical(x, y) for x, y in zip(a, b))
        )
    if is_classad(a) or is_classad(b):
        if not (is_classad(a) and is_classad(b)):
            return False
        # Attribute names are case-insensitive: compare canonical keys.
        if set(a.canonical_keys()) != set(b.canonical_keys()):
            return False
        # Identity over records compares the *expressions* attribute-wise;
        # two ads are identical iff their unevaluated bodies are.
        return all(a.lookup(k) == b.lookup(k) for k in a.canonical_keys())
    return False
