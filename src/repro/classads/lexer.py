"""Tokenizer for the classad language.

The surface syntax follows the paper's Figures 1 and 2: records are
bracketed ``[ name = expr ; ... ]``, lists are braced ``{ e, e, ... }``,
``//`` introduces a line comment (Figure 1 uses them), and the operator
set is C-like plus the non-strict ``is`` / ``isnt`` comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from .errors import LexerError

# Token kinds.
INT = "INT"
REAL = "REAL"
STRING = "STRING"
IDENT = "IDENT"
OP = "OP"
EOF = "EOF"

#: Multi-character operators, longest first so maximal munch is trivial.
_MULTI_OPS = ("=?=", "=!=", "&&", "||", "<=", ">=", "==", "!=")
_SINGLE_OPS = set("+-*/%()[]{},;=.?:<>!")

#: Reserved words (case-insensitive).  ``is``/``isnt`` are operators with
#: identifier spelling; ``=?=``/``=!=`` are their symbolic aliases.
KEYWORDS = {"true", "false", "undefined", "error", "is", "isnt"}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` holds the decoded payload: int for INT, float for REAL, the
    unescaped text for STRING, the original spelling for IDENT, and the
    operator text for OP.
    """

    kind: str
    value: object
    position: int
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, line={self.line})"


_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    '"': '"',
    "\\": "\\",
    "'": "'",
}


class Lexer:
    """Streaming tokenizer over a source string."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> LexerError:
        return LexerError(message, self.pos, self.line, self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text) and self.text[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments (``// ...`` and ``/* ... */``)."""
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col, start_pos = self.line, self.column, self.pos
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.text):
                        raise LexerError(
                            "unterminated block comment", start_pos, start_line, start_col
                        )
                    self._advance()
                self._advance(2)
            else:
                return

    def _lex_string(self) -> Token:
        start_pos, start_line, start_col = self.pos, self.line, self.column
        self._advance()  # opening quote
        chunks: List[str] = []
        while True:
            if self.pos >= len(self.text) or self._peek() == "\n":
                raise LexerError(
                    "unterminated string literal", start_pos, start_line, start_col
                )
            ch = self._peek()
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                esc = self._peek(1)
                if esc in _ESCAPES:
                    chunks.append(_ESCAPES[esc])
                    self._advance(2)
                else:
                    raise self._error(f"unknown escape sequence \\{esc!s}")
            else:
                chunks.append(ch)
                self._advance()
        return Token(STRING, "".join(chunks), start_pos, start_line, start_col)

    def _lex_number(self) -> Token:
        start_pos, start_line, start_col = self.pos, self.line, self.column
        digits = []
        is_real = False
        while self._peek().isdigit():
            digits.append(self._peek())
            self._advance()
        # A '.' is part of the number only if followed by a digit; this
        # keeps `ad.Attr` selections unambiguous even after a literal.
        if self._peek() == "." and self._peek(1).isdigit():
            is_real = True
            digits.append(".")
            self._advance()
            while self._peek().isdigit():
                digits.append(self._peek())
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_real = True
            digits.append("e")
            self._advance()
            if self._peek() in "+-":
                digits.append(self._peek())
                self._advance()
            while self._peek().isdigit():
                digits.append(self._peek())
                self._advance()
        text = "".join(digits)
        value: object = float(text) if is_real else int(text)
        kind = REAL if is_real else INT
        return Token(kind, value, start_pos, start_line, start_col)

    def _lex_ident(self) -> Token:
        start_pos, start_line, start_col = self.pos, self.line, self.column
        chars = []
        while self._peek().isalnum() or self._peek() == "_":
            chars.append(self._peek())
            self._advance()
        return Token(IDENT, "".join(chars), start_pos, start_line, start_col)

    def next_token(self) -> Token:
        """Return the next token, producing a final EOF token forever."""
        self._skip_trivia()
        if self.pos >= len(self.text):
            return Token(EOF, None, self.pos, self.line, self.column)
        ch = self._peek()
        if ch == '"':
            return self._lex_string()
        if ch.isdigit():
            return self._lex_number()
        if ch.isalpha() or ch == "_":
            return self._lex_ident()
        for op in _MULTI_OPS:
            if self.text.startswith(op, self.pos):
                tok = Token(OP, op, self.pos, self.line, self.column)
                self._advance(len(op))
                return tok
        if ch in _SINGLE_OPS:
            tok = Token(OP, ch, self.pos, self.line, self.column)
            self._advance()
            return tok
        raise self._error(f"unexpected character {ch!r}")

    def tokens(self) -> Iterator[Token]:
        """Yield all tokens including the trailing EOF."""
        while True:
            tok = self.next_token()
            yield tok
            if tok.kind == EOF:
                return


def tokenize(text: str) -> List[Token]:
    """Tokenize *text* fully, returning a list ending with an EOF token."""
    return list(Lexer(text).tokens())
