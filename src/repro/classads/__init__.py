"""The classified advertisement (classad) language — S1–S4 in DESIGN.md.

This package implements the semi-structured data model of Section 3.1 of
Raman, Livny & Solomon (HPDC'98): ads as attribute→expression mappings, a
C-like expression language with lists and nested ads, three-valued logic
over ``undefined``/``error``, and `self`/`other` match environments.

Typical use::

    from repro.classads import ClassAd, parse, evaluate

    machine = ClassAd.parse('[ Type = "Machine"; Memory = 64; '
                            'Constraint = other.Owner != "riffraff" ]')
    job = ClassAd.parse('[ Type = "Job"; Owner = "raman"; '
                        'Constraint = other.Memory >= 32 ]')
    machine.evaluate("Constraint", other=job)   # -> True
"""

from .ast import (
    AttributeRef,
    BinaryOp,
    Conditional,
    Expr,
    FunctionCall,
    ListExpr,
    Literal,
    RecordExpr,
    Select,
    Subscript,
    UnaryOp,
    external_references,
    walk,
)
from .classad import ClassAd
from .compile import (
    CompiledExpr,
    compilation_enabled,
    compile_expr,
    evaluate,
    evaluate_attribute,
    set_compilation,
)
from .errors import ClassAdException, EvaluationLimitExceeded, LexerError, ParseError
from .parser import parse, parse_record
from .fingerprint import ad_wire_size, fingerprint, payload_equal
from .serialize import SerializationError, dumps, from_json_obj, loads, to_json_obj
from .unparse import unparse, unparse_classad
from .values import (
    ERROR,
    UNDEFINED,
    ErrorValue,
    UndefinedType,
    is_classad,
    is_error,
    is_false,
    is_true,
    is_undefined,
    rank_value,
    values_identical,
)

__all__ = [
    "AttributeRef",
    "BinaryOp",
    "ClassAd",
    "ClassAdException",
    "CompiledExpr",
    "Conditional",
    "ERROR",
    "ErrorValue",
    "EvaluationLimitExceeded",
    "Expr",
    "FunctionCall",
    "LexerError",
    "ListExpr",
    "Literal",
    "ParseError",
    "RecordExpr",
    "Select",
    "Subscript",
    "UNDEFINED",
    "UnaryOp",
    "UndefinedType",
    "compilation_enabled",
    "compile_expr",
    "evaluate",
    "evaluate_attribute",
    "set_compilation",
    "external_references",
    "is_classad",
    "is_error",
    "is_false",
    "is_true",
    "is_undefined",
    "SerializationError",
    "ad_wire_size",
    "dumps",
    "fingerprint",
    "from_json_obj",
    "payload_equal",
    "loads",
    "parse",
    "parse_record",
    "to_json_obj",
    "rank_value",
    "unparse",
    "unparse_classad",
    "values_identical",
    "walk",
]
