"""Recursive-descent parser for the classad language.

Grammar (precedence from loosest to tightest binding)::

    expr        := cond
    cond        := or_expr [ '?' expr ':' expr ]          (right assoc)
    or_expr     := and_expr { '||' and_expr }
    and_expr    := eq_expr { '&&' eq_expr }
    eq_expr     := rel_expr { ('==' | '!=' | 'is' | 'isnt'
                               | '=?=' | '=!=') rel_expr }
    rel_expr    := add_expr { ('<' | '<=' | '>' | '>=') add_expr }
    add_expr    := mul_expr { ('+' | '-') mul_expr }
    mul_expr    := unary { ('*' | '/' | '%') unary }
    unary       := ('!' | '-' | '+') unary | postfix
    postfix     := primary { '.' IDENT | '[' expr ']' }
    primary     := INT | REAL | STRING | 'true' | 'false'
                 | 'undefined' | 'error'
                 | ('self' | 'other') '.' IDENT
                 | IDENT '(' [ expr { ',' expr } ] ')'
                 | IDENT
                 | '(' expr ')'
                 | '{' [ expr { ',' expr } ] '}'
                 | record
    record      := '[' [ IDENT '=' expr { ';' IDENT '=' expr } [';'] ] ']'

``is``/``isnt`` carry the symbolic aliases ``=?=``/``=!=`` used by
classic ClassAds; both spellings parse to the same AST node.
"""

from __future__ import annotations

from typing import List, Optional

from . import lexer as lx
from .ast import (
    AttributeRef,
    BinaryOp,
    Conditional,
    Expr,
    FunctionCall,
    ListExpr,
    Literal,
    RecordExpr,
    Select,
    Subscript,
    UnaryOp,
)
from .errors import ParseError
from .values import ERROR, UNDEFINED

_EQ_OPS = {"==": "==", "!=": "!=", "=?=": "is", "=!=": "isnt"}
_REL_OPS = ("<", "<=", ">", ">=")


class Parser:
    """Single-pass recursive-descent parser over a token list."""

    def __init__(self, text: str):
        self.tokens: List[lx.Token] = lx.tokenize(text)
        self.index = 0

    # -- token stream helpers ------------------------------------------

    @property
    def current(self) -> lx.Token:
        return self.tokens[self.index]

    def _advance(self) -> lx.Token:
        tok = self.current
        if tok.kind != lx.EOF:
            self.index += 1
        return tok

    def _at_op(self, *ops: str) -> bool:
        tok = self.current
        return tok.kind == lx.OP and tok.value in ops

    def _accept_op(self, *ops: str) -> Optional[str]:
        if self._at_op(*ops):
            return self._advance().value  # type: ignore[return-value]
        return None

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            raise ParseError(f"expected {op!r}, found {self.current.value!r}", self.current)

    def _at_keyword(self, word: str) -> bool:
        tok = self.current
        return tok.kind == lx.IDENT and tok.value.lower() == word

    def _expect_ident(self) -> str:
        tok = self.current
        if tok.kind != lx.IDENT:
            raise ParseError(f"expected identifier, found {tok.value!r}", tok)
        self._advance()
        return tok.value

    # -- grammar productions -------------------------------------------

    def parse_expression(self) -> Expr:
        """Parse a complete expression; trailing input is an error."""
        expr = self._cond()
        if self.current.kind != lx.EOF:
            raise ParseError(
                f"unexpected trailing input {self.current.value!r}", self.current
            )
        return expr

    def parse_record_body(self) -> RecordExpr:
        """Parse a top-level record (with or without surrounding brackets)."""
        if self._at_op("["):
            record = self._record()
        else:
            record = self._record_fields(closing=None)
        if self.current.kind != lx.EOF:
            raise ParseError(
                f"unexpected trailing input {self.current.value!r}", self.current
            )
        return record

    def _cond(self) -> Expr:
        cond = self._or()
        if self._accept_op("?"):
            then = self._cond()
            self._expect_op(":")
            otherwise = self._cond()
            return Conditional(cond, then, otherwise)
        return cond

    def _or(self) -> Expr:
        left = self._and()
        while self._accept_op("||"):
            left = BinaryOp("||", left, self._and())
        return left

    def _and(self) -> Expr:
        left = self._eq()
        while self._accept_op("&&"):
            left = BinaryOp("&&", left, self._eq())
        return left

    def _eq(self) -> Expr:
        left = self._rel()
        while True:
            sym = self._accept_op(*_EQ_OPS)
            if sym is not None:
                left = BinaryOp(_EQ_OPS[sym], left, self._rel())
                continue
            if self._at_keyword("is") or self._at_keyword("isnt"):
                op = self._advance().value.lower()
                left = BinaryOp(op, left, self._rel())
                continue
            return left

    def _rel(self) -> Expr:
        left = self._add()
        while True:
            sym = self._accept_op(*_REL_OPS)
            if sym is None:
                return left
            left = BinaryOp(sym, left, self._add())

    def _add(self) -> Expr:
        left = self._mul()
        while True:
            sym = self._accept_op("+", "-")
            if sym is None:
                return left
            left = BinaryOp(sym, left, self._mul())

    def _mul(self) -> Expr:
        left = self._unary()
        while True:
            sym = self._accept_op("*", "/", "%")
            if sym is None:
                return left
            left = BinaryOp(sym, left, self._unary())

    def _unary(self) -> Expr:
        sym = self._accept_op("!", "-", "+")
        if sym is not None:
            return UnaryOp(sym, self._unary())
        return self._postfix()

    def _postfix(self) -> Expr:
        expr = self._primary()
        while True:
            if self._accept_op("."):
                expr = Select(expr, self._expect_ident())
            elif self._accept_op("["):
                index = self._cond()
                self._expect_op("]")
                expr = Subscript(expr, index)
            else:
                return expr

    def _primary(self) -> Expr:
        tok = self.current
        if tok.kind == lx.INT or tok.kind == lx.REAL or tok.kind == lx.STRING:
            self._advance()
            return Literal(tok.value)
        if tok.kind == lx.IDENT:
            word = tok.value.lower()
            if word == "true":
                self._advance()
                return Literal(True)
            if word == "false":
                self._advance()
                return Literal(False)
            if word == "undefined":
                self._advance()
                return Literal(UNDEFINED)
            if word == "error":
                self._advance()
                return Literal(ERROR)
            if word in ("self", "other", "my", "target"):
                # `my`/`target` are the classic-ClassAd spellings of the
                # paper's `self`/`other`; accept both.
                scope = "self" if word in ("self", "my") else "other"
                self._advance()
                self._expect_op(".")
                return AttributeRef(self._expect_ident(), scope)
            self._advance()
            if self._accept_op("("):
                args = []
                if not self._at_op(")"):
                    args.append(self._cond())
                    while self._accept_op(","):
                        args.append(self._cond())
                self._expect_op(")")
                return FunctionCall(tok.value, args)
            return AttributeRef(tok.value)
        if self._accept_op("("):
            expr = self._cond()
            self._expect_op(")")
            return expr
        if self._accept_op("{"):
            items = []
            if not self._at_op("}"):
                items.append(self._cond())
                while self._accept_op(","):
                    items.append(self._cond())
            self._expect_op("}")
            return ListExpr(items)
        if self._at_op("["):
            return self._record()
        raise ParseError(f"unexpected token {tok.value!r}", tok)

    def _record(self) -> RecordExpr:
        self._expect_op("[")
        return self._record_fields(closing="]")

    def _record_fields(self, closing: Optional[str]) -> RecordExpr:
        fields = []
        seen = set()

        def at_end() -> bool:
            if closing is None:
                return self.current.kind == lx.EOF
            return self._at_op(closing)

        while not at_end():
            name = self._expect_ident()
            if name.lower() in seen:
                raise ParseError(f"duplicate attribute {name!r}", self.current)
            seen.add(name.lower())
            self._expect_op("=")
            fields.append((name, self._cond()))
            if not self._accept_op(";"):
                break
        if closing is not None:
            self._expect_op(closing)
        return RecordExpr(fields)


def parse(text: str) -> Expr:
    """Parse *text* as a single classad expression."""
    return Parser(text).parse_expression()


def parse_record(text: str) -> RecordExpr:
    """Parse *text* as a record (``[...]`` brackets optional at top level)."""
    return Parser(text).parse_record_body()
