"""JSON serialization for classads.

The paper's agents ship ads over the wire; this module provides the
stable interchange format a modern deployment would use (HTCondor grew
an equivalent JSON form decades later).  The mapping is:

=====================  ==========================================
classad construct      JSON encoding
=====================  ==========================================
Integer/Real/String    native number / string
Boolean                native true/false
undefined              ``{"$undefined": true}``
error                  ``{"$error": "<reason>"}``
List                   array
nested ClassAd         object (attribute order preserved)
any other expression   ``{"$expr": "<classad source text>"}``
=====================  ==========================================

Round trip: ``from_json_obj(to_json_obj(ad)) == ad`` for every ad
(hypothesis-tested), because non-literal expressions ride through the
unparser, which is itself round-trip safe.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from .ast import Expr, ListExpr, Literal, RecordExpr
from .classad import ClassAd
from .errors import ClassAdException
from .parser import parse
from .unparse import unparse
from .values import ERROR, UNDEFINED, ErrorValue, UndefinedType


class SerializationError(ClassAdException):
    """Raised for JSON that does not encode a classad."""


def _expr_to_json(expr: Expr) -> Any:
    if isinstance(expr, Literal):
        value = expr.value
        if isinstance(value, UndefinedType):
            return {"$undefined": True}
        if isinstance(value, ErrorValue):
            return {"$error": value.reason}
        if isinstance(value, float) and (value != value or value in (float("inf"), float("-inf"))):
            return {"$expr": unparse(expr)}
        return value
    if isinstance(expr, ListExpr):
        return [_expr_to_json(item) for item in expr.items]
    if isinstance(expr, RecordExpr):
        return {name: _expr_to_json(sub) for name, sub in expr.fields}
    return {"$expr": unparse(expr)}


def _expr_from_json(obj: Any) -> Expr:
    if isinstance(obj, bool) or isinstance(obj, (int, float, str)):
        return Literal(obj)
    if obj is None:
        return Literal(UNDEFINED)
    if isinstance(obj, list):
        return ListExpr([_expr_from_json(item) for item in obj])
    if isinstance(obj, dict):
        if "$undefined" in obj:
            return Literal(UNDEFINED)
        if "$error" in obj:
            reason = obj["$error"]
            return Literal(ErrorValue(reason) if isinstance(reason, str) else ERROR)
        if "$expr" in obj:
            source = obj["$expr"]
            if not isinstance(source, str):
                raise SerializationError("$expr payload must be a string")
            try:
                return parse(source)
            except ClassAdException as exc:
                raise SerializationError(
                    f"$expr payload is not a classad expression: {exc}"
                ) from exc
        fields = []
        for name, value in obj.items():
            if not isinstance(name, str):
                raise SerializationError("record field names must be strings")
            fields.append((name, _expr_from_json(value)))
        return RecordExpr(fields)
    raise SerializationError(f"cannot decode {type(obj).__name__} as a classad value")


def to_json_obj(ad: ClassAd) -> dict:
    """Encode *ad* as a JSON-compatible dict (attribute order preserved)."""
    return {name: _expr_to_json(expr) for name, expr in ad.items()}


def from_json_obj(obj: dict) -> ClassAd:
    """Decode a dict produced by :func:`to_json_obj` back into an ad."""
    if not isinstance(obj, dict):
        raise SerializationError("top-level classad JSON must be an object")
    ad = ClassAd()
    for name, value in obj.items():
        if not isinstance(name, str):
            raise SerializationError("attribute names must be strings")
        ad[name] = _expr_from_json(value)
    return ad


def dumps(ad: ClassAd, indent: Optional[int] = None) -> str:
    """Serialize *ad* to a JSON string."""
    return json.dumps(to_json_obj(ad), indent=indent)


def loads(text: str) -> ClassAd:
    """Deserialize a JSON string into a ClassAd."""
    if not isinstance(text, str):
        raise SerializationError(
            f"loads() expects a JSON string, got {type(text).__name__}"
        )
    try:
        obj = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON: {exc}") from exc
    return from_json_obj(obj)
