"""State machines for resources and jobs — part of S14/S15.

Machine states follow the paper-era Condor startd:

* ``OWNER``     — the owner is using the workstation; unavailable.
* ``UNCLAIMED`` — available and advertising for customers.
* ``CLAIMED``   — running a customer's job.

(The deployed startd also has transient Matched/Preempting states; in the
simulator the matched→claimed transition is a single claim handshake and
preemption is instantaneous eviction, so those states would never be
observable between events.  DESIGN.md S14 records this simplification.)

Job states follow the paper's customer-agent description: queued jobs are
idle, matched jobs run, evicted jobs return to idle (possibly with a
checkpoint), finished jobs are completed.
"""

from __future__ import annotations

from enum import Enum


class MachineState(Enum):
    OWNER = "Owner"
    UNCLAIMED = "Unclaimed"
    CLAIMED = "Claimed"


class Activity(Enum):
    """The activity advertised alongside the state (Figure 1's ad has
    ``Activity = "Idle"``)."""

    IDLE = "Idle"
    BUSY = "Busy"


class JobState(Enum):
    IDLE = "Idle"
    RUNNING = "Running"
    COMPLETED = "Completed"
    REMOVED = "Removed"


#: Legal machine-state transitions; the MachineAgent asserts on these so a
#: protocol bug can never silently corrupt the state machine.
MACHINE_TRANSITIONS = {
    MachineState.OWNER: {MachineState.UNCLAIMED},
    MachineState.UNCLAIMED: {MachineState.OWNER, MachineState.CLAIMED},
    MachineState.CLAIMED: {MachineState.OWNER, MachineState.UNCLAIMED, MachineState.CLAIMED},
}


def check_machine_transition(old: MachineState, new: MachineState) -> None:
    """Raise AssertionError on an illegal machine state transition.

    CLAIMED→CLAIMED is legal: Rank preemption replaces one claim with
    another without passing through UNCLAIMED.
    """
    if new not in MACHINE_TRANSITIONS[old]:
        raise AssertionError(f"illegal machine transition {old.value} -> {new.value}")
