"""The collector half of the central manager — S16 in DESIGN.md.

Section 4: "RAs and CAs periodically send classads to a Condor pool
manager, describing the resources and job queues respectively."

The collector is the pool manager's ad store: it admits advertisements
that conform to the advertising protocol, expires stale ones, and
answers the negotiator's (and status tools') queries.  It holds *only
soft state*: crashing it loses nothing that the next round of periodic
advertisements does not rebuild — experiment E1's claim.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from ..classads import ClassAd
from ..matchmaking import MaintainedIndex, select
from ..obs import event_log as _events, metrics as _metrics
from ..obs.causal import TraceContext, causal_log as _causal
from ..protocols import AdStore, Advertisement, Withdrawal, validate_ad
from ..sim import Network, Simulator, Trace

_COL_RECEIVED = _metrics.counter(
    "collector.ads_received", "advertisements arriving at a collector"
)
_COL_ADMITTED = _metrics.counter(
    "collector.ads_admitted", "advertisements admitted to the store"
)
_COL_REJECTED = _metrics.counter(
    "collector.ads_rejected", "advertisements failing protocol validation"
)
_COL_EXPIRED = _metrics.counter(
    "collector.ads_expired", "soft-state ads reaped after their lifetime"
)
_COL_STORE_SIZE = _metrics.gauge(
    "collector.store_size", "ads currently held by the collector"
)


class Collector:
    """The pool's advertisement store, listening on the network."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        trace: Optional[Trace] = None,
        address: str = "collector@cm",
        expire_interval: float = 60.0,
    ):
        self.sim = sim
        self.net = net
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.address = address
        self.store = AdStore()
        self.ads_rejected = 0
        self.ads_admitted = 0
        # Persistent machine index (PR 4): built lazily on the first
        # negotiator request, then delta-updated by the advertising
        # traffic instead of being rebuilt from the store every cycle.
        self._mindex: Optional[MaintainedIndex] = None
        # Causal context of each admitted ad (the recv span of the
        # advertisement that produced it) — the negotiator parents its
        # match notifications here, stitching the job's trace across
        # the store.  Dropped with the ad (withdraw/expiry/crash).
        self._ad_ctx: Dict[str, TraceContext] = {}
        net.register(self.address, self._on_message)
        sim.every(expire_interval, self._expire)

    # -- message handling ------------------------------------------------

    def _on_message(self, message) -> None:
        if isinstance(message, Advertisement):
            self._on_advertisement(message)
        elif isinstance(message, Withdrawal):
            self.store.remove(message.name)
            self._ad_ctx.pop(message.name, None)
            if self._mindex is not None:
                self._mindex.withdraw(message.name)

    def _on_advertisement(self, message: Advertisement) -> None:
        _COL_RECEIVED.inc()
        result = validate_ad(message.ad)
        if not result.ok:
            self.ads_rejected += 1
            _COL_REJECTED.inc()
            self.trace.emit(
                self.sim.now,
                "ad-rejected",
                name=message.name,
                problems="; ".join(result.problems),
            )
            return
        had_prior = message.name in self.store
        admitted = self.store.insert(
            message.name,
            message.ad,
            now=self.sim.now,
            lifetime=message.lifetime,
            sequence=message.sequence,
        )
        if admitted:
            self.ads_admitted += 1
            if _causal.enabled:
                ctx = _causal.current()
                if ctx is not None:
                    self._ad_ctx[message.name] = ctx
            _COL_ADMITTED.inc()
            _COL_STORE_SIZE.set(len(self.store))
            if self._mindex is not None and not self._mindex.advertise(
                message.name, message.ad, had_prior=had_prior
            ):
                # Candidate order not preservable by deltas: drop the
                # index; the next negotiator cycle rebuilds it lazily.
                self._mindex = None
        if _events.enabled:
            _events.emit(
                "ad.arrived",
                t=self.sim.now,
                name=message.name,
                admitted=admitted,
                lifetime=message.lifetime,
            )

    def _expire(self) -> None:
        expired = self.store.expire(self.sim.now)
        for name in expired:
            self.trace.emit(self.sim.now, "ad-expired", name=name)
            self._ad_ctx.pop(name, None)
            if self._mindex is not None:
                self._mindex.withdraw(name)
        if expired and _metrics.enabled:
            _COL_EXPIRED.inc(len(expired))
            _COL_STORE_SIZE.set(len(self.store))

    # -- queries ----------------------------------------------------------

    def machine_ads(self) -> List[ClassAd]:
        return select(self.store.ads(), 'Type == "Machine"')

    def provider_index(self) -> MaintainedIndex:
        """The persistent machine index, seeded from the store on first
        use and delta-maintained by advertise/withdraw/expiry after.

        ``provider_index().providers()`` equals :meth:`machine_ads` (same
        ads, same order) without re-selecting and re-indexing the store.
        """
        mindex = self._mindex
        if mindex is None:
            mindex = self._mindex = MaintainedIndex(
                'Type == "Machine"',
                items=[(rec.name, rec.ad) for rec in self.store.records()],
            )
        return mindex

    def job_ads(self) -> List[ClassAd]:
        return select(self.store.ads(), 'Type == "Job"')

    def job_ads_by_owner(self) -> Dict[str, List[ClassAd]]:
        """Idle request ads grouped per submitter, queue order preserved."""
        grouped: Dict[str, List[ClassAd]] = defaultdict(list)
        for ad in self.job_ads():
            owner = ad.evaluate("Owner")
            if isinstance(owner, str):
                grouped[owner].append(ad)
        for ads in grouped.values():
            ads.sort(key=_job_order_key)
        return dict(grouped)

    def ad_context(self, name: str) -> Optional[TraceContext]:
        """Causal context of the admitted ad *name* (None if untraced)."""
        return self._ad_ctx.get(name)

    def sample_pool(self, **cycle_fields) -> None:
        """One pool-health observation into the global time series
        (:mod:`repro.obs.timeseries`); the negotiator calls this after
        every cycle, passing that cycle's match figures."""
        from ..obs.timeseries import series as _series

        if not _series.enabled:
            return
        by_state: Dict[str, int] = {}
        machines = self.machine_ads()
        for ad in machines:
            state = ad.evaluate("State")
            key = state.lower() if isinstance(state, str) else "unknown"
            by_state[key] = by_state.get(key, 0) + 1
        _series.sample(
            t=self.sim.now,
            machines=len(machines),
            owner=by_state.get("owner", 0),
            unclaimed=by_state.get("unclaimed", 0),
            claimed=by_state.get("claimed", 0),
            jobs_idle=len(self.job_ads()),
            store_size=len(self.store),
            **cycle_fields,
        )

    def query(self, constraint: str) -> List[ClassAd]:
        """One-way matching over everything stored (status tools)."""
        return select(self.store.ads(), constraint)

    def snapshot(self) -> str:
        """The current ad store as JSON lines (one ad per line) —
        feed it to the CLI's status/q/diagnose commands."""
        from ..classads.serialize import dumps

        return "\n".join(dumps(ad) for ad in self.store.ads())

    # -- failure injection ----------------------------------------------------

    def crash(self) -> None:
        """Lose all soft state and stop receiving (experiment E1)."""
        self.net.set_down(self.address)
        self.store.clear()
        self._ad_ctx.clear()
        if self._mindex is not None:
            self._mindex.clear()
        self.trace.emit(self.sim.now, "collector-crash")

    def recover(self) -> None:
        self.net.set_down(self.address, down=False)
        self.trace.emit(self.sim.now, "collector-recover")


def _job_order_key(ad: ClassAd):
    """Queue order: user priority first (higher = earlier), then FCFS.

    JobPrio only reorders one submitter's own queue — fair share across
    submitters is the negotiator's business, not the user's.
    """
    prio = ad.evaluate("JobPrio")
    qdate = ad.evaluate("QDate")
    job_id = ad.evaluate("JobId")
    return (
        -(prio if isinstance(prio, (int, float)) and not isinstance(prio, bool) else 0),
        qdate if isinstance(qdate, (int, float)) else 0,
        job_id if isinstance(job_id, int) else 0,
    )
