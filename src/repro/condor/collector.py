"""The collector half of the central manager — S16 in DESIGN.md.

Section 4: "RAs and CAs periodically send classads to a Condor pool
manager, describing the resources and job queues respectively."

The collector is the pool manager's ad store: it admits advertisements
that conform to the advertising protocol, expires stale ones, and
answers the negotiator's (and status tools') queries.  It holds *only
soft state*: crashing it loses nothing that the next round of periodic
advertisements does not rebuild — experiment E1's claim.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from ..classads import ClassAd
from ..matchmaking import MaintainedIndex, select
from ..obs import event_log as _events, metrics as _metrics
from ..obs.causal import TraceContext, causal_log as _causal
from ..protocols import (
    AdStore,
    Advertisement,
    Refresh,
    ResendRequest,
    Withdrawal,
    validate_ad,
)
from ..sim import Network, Simulator, Trace

_COL_RECEIVED = _metrics.counter(
    "collector.ads_received", "advertisements arriving at a collector"
)
_COL_ADMITTED = _metrics.counter(
    "collector.ads_admitted", "advertisements admitted to the store"
)
_COL_REJECTED = _metrics.counter(
    "collector.ads_rejected", "advertisements failing protocol validation"
)
_COL_EXPIRED = _metrics.counter(
    "collector.ads_expired", "soft-state ads reaped after their lifetime"
)
_COL_STORE_SIZE = _metrics.gauge(
    "collector.store_size", "ads currently held by the collector"
)
_COL_REFRESH_HITS = _metrics.counter(
    "collector.refresh_hits",
    "compact refreshes honoured in place (lease renewed, no re-validation)",
)
_COL_REFRESH_MISSES = _metrics.counter(
    "collector.refresh_misses",
    "refreshes naming an unknown, expired, or content-changed ad",
)
_COL_RESEND_REQUESTS = _metrics.counter(
    "collector.resend_requests", "resync NACKs sent back to refreshing agents"
)


class Collector:
    """The pool's advertisement store, listening on the network."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        trace: Optional[Trace] = None,
        address: str = "collector@cm",
        expire_interval: float = 60.0,
    ):
        self.sim = sim
        self.net = net
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.address = address
        self.store = AdStore()
        self.ads_rejected = 0
        self.ads_admitted = 0
        # Persistent machine index (PR 4): built lazily on the first
        # negotiator request, then delta-updated by the advertising
        # traffic instead of being rebuilt from the store every cycle.
        self._mindex: Optional[MaintainedIndex] = None
        # Causal context of each admitted ad (the recv span of the
        # advertisement that produced it) — the negotiator parents its
        # match notifications here, stitching the job's trace across
        # the store.  Dropped with the ad (withdraw/expiry/crash).
        self._ad_ctx: Dict[str, TraceContext] = {}
        # Incremental pool composition (PR 8): kind/state of every stored
        # ad, classified once at admit time, so sample_pool answers from
        # counters instead of re-evaluating Type/State over the store.
        self._kind: Dict[str, Tuple[str, str]] = {}
        self._state_counts: Dict[str, int] = {}
        self._n_machines = 0
        self._n_jobs = 0
        # Cached per-submitter job grouping: rebuilt only when a job ad
        # is admitted, withdrawn, or expired; per-ad Owner/order keys are
        # reused across rebuilds while the ad's fingerprint is unchanged.
        self._grouped: Optional[Dict[str, List[ClassAd]]] = None
        self._job_keys: Dict[str, tuple] = {}
        net.register(self.address, self._on_message)
        sim.every(expire_interval, self._expire)

    # -- message handling ------------------------------------------------

    def _on_message(self, message) -> None:
        if isinstance(message, Advertisement):
            self._on_advertisement(message)
        elif isinstance(message, Refresh):
            self._on_refresh(message)
        elif isinstance(message, Withdrawal):
            if self.store.remove(message.name, tombstone=message.sequence):
                self._counts_drop(message.name)
            self._ad_ctx.pop(message.name, None)
            if self._mindex is not None:
                self._mindex.withdraw(message.name)

    def _on_advertisement(self, message: Advertisement) -> None:
        _COL_RECEIVED.inc()
        result = validate_ad(message.ad)
        if not result.ok:
            self.ads_rejected += 1
            _COL_REJECTED.inc()
            self.trace.emit(
                self.sim.now,
                "ad-rejected",
                name=message.name,
                problems="; ".join(result.problems),
            )
            return
        had_prior = message.name in self.store
        admitted = self.store.insert(
            message.name,
            message.ad,
            now=self.sim.now,
            lifetime=message.lifetime,
            sequence=message.sequence,
            fingerprint=message.fingerprint,
        )
        if admitted:
            self.ads_admitted += 1
            if had_prior:
                self._counts_drop(message.name)
            self._counts_add(message.name, message.ad)
            if _causal.enabled:
                ctx = _causal.current()
                if ctx is not None:
                    self._ad_ctx[message.name] = ctx
            _COL_ADMITTED.inc()
            _COL_STORE_SIZE.set(len(self.store))
            if self._mindex is not None and not self._mindex.advertise(
                message.name, message.ad, had_prior=had_prior
            ):
                # Candidate order not preservable by deltas: drop the
                # index; the next negotiator cycle rebuilds it lazily.
                self._mindex = None
        if _events.enabled:
            _events.emit(
                "ad.arrived",
                t=self.sim.now,
                name=message.name,
                admitted=admitted,
                lifetime=message.lifetime,
            )

    def _on_refresh(self, message: Refresh) -> None:
        """A compact re-advertisement claiming the stored ad is current.

        A hit only renews the soft-state lease and applies the carried
        volatile values in place — no validation, no store replacement,
        no index delta, no causal bookkeeping.  Anything the collector
        cannot vouch for (unknown name, expired ad, fingerprint mismatch
        — e.g. after a crash wiped the store) is answered with a
        :class:`ResendRequest`; the sender's next full advertisement
        restores state within one round trip.
        """
        _COL_RECEIVED.inc()
        if self.store.withdrawn_after(message.name, message.sequence):
            # Late copy of an ad withdrawn since it was sent: drop it as
            # stale (same observable outcome as the full-ad path, where
            # the reordered Advertisement dies on the tombstone).
            if _events.enabled:
                _events.emit(
                    "ad.arrived",
                    t=self.sim.now,
                    name=message.name,
                    admitted=False,
                    lifetime=message.lifetime,
                )
            return
        rec = self.store.record(message.name)
        if rec is None or rec.fingerprint != message.fingerprint:
            _COL_REFRESH_MISSES.inc()
            _COL_RESEND_REQUESTS.inc()
            self.net.send(
                ResendRequest(
                    sender=self.address,
                    recipient=message.sender,
                    name=message.name,
                )
            )
            return
        renewed = self.store.touch(
            message.name,
            now=self.sim.now,
            lifetime=message.lifetime,
            sequence=message.sequence,
        )
        if renewed:
            _COL_REFRESH_HITS.inc()
            ad = rec.ad
            for attr, value in message.volatile:
                ad[attr] = value
            # The maintained index only needs to hear about the renewal
            # if a volatile attribute participates in it (none of the
            # default equality/range attributes are volatile).
            if self._mindex is not None and message.volatile:
                idx = self._mindex.index
                indexed = idx.equality_attrs | idx.range_attrs
                if any(attr.lower() in indexed for attr, _ in message.volatile):
                    if not self._mindex.advertise(
                        message.name, ad, had_prior=True
                    ):
                        self._mindex = None
        if _events.enabled:
            _events.emit(
                "ad.arrived",
                t=self.sim.now,
                name=message.name,
                admitted=bool(renewed),
                lifetime=message.lifetime,
            )

    def _expire(self) -> None:
        expired = self.store.expire(self.sim.now)
        for name in expired:
            self.trace.emit(self.sim.now, "ad-expired", name=name)
            self._counts_drop(name)
            self._ad_ctx.pop(name, None)
            if self._mindex is not None:
                self._mindex.withdraw(name)
        if expired and _metrics.enabled:
            _COL_EXPIRED.inc(len(expired))
            _COL_STORE_SIZE.set(len(self.store))

    # -- incremental pool composition -------------------------------------

    @staticmethod
    def _classify(ad: ClassAd) -> Tuple[str, str]:
        """(kind, state-key) of *ad*, matching the semantics of the
        ``Type == "Machine"`` / ``Type == "Job"`` selections (classad
        string equality is case-insensitive)."""
        kind = ad.evaluate("Type")
        kind = kind.lower() if isinstance(kind, str) else ""
        if kind == "machine":
            state = ad.evaluate("State")
            return "machine", state.lower() if isinstance(state, str) else "unknown"
        if kind == "job":
            return "job", ""
        return "", ""

    def _counts_add(self, name: str, ad: ClassAd) -> None:
        kind, state = self._classify(ad)
        self._kind[name] = (kind, state)
        if kind == "machine":
            self._n_machines += 1
            self._state_counts[state] = self._state_counts.get(state, 0) + 1
        elif kind == "job":
            self._n_jobs += 1
            self._grouped = None

    def _counts_drop(self, name: str) -> None:
        kind, state = self._kind.pop(name, ("", ""))
        if kind == "machine":
            self._n_machines -= 1
            self._state_counts[state] -= 1
        elif kind == "job":
            self._n_jobs -= 1
            self._grouped = None
            self._job_keys.pop(name, None)

    def _recount(self) -> None:
        """Rebuild the composition counts from the store (safety net for
        out-of-band store mutation, e.g. tests poking ``store`` directly)."""
        self._kind.clear()
        self._state_counts.clear()
        self._n_machines = 0
        self._n_jobs = 0
        self._grouped = None
        for rec in self.store.records():
            self._counts_add(rec.name, rec.ad)

    # -- queries ----------------------------------------------------------

    def machine_ads(self) -> List[ClassAd]:
        return select(self.store.ads(), 'Type == "Machine"')

    def provider_index(self) -> MaintainedIndex:
        """The persistent machine index, seeded from the store on first
        use and delta-maintained by advertise/withdraw/expiry after.

        ``provider_index().providers()`` equals :meth:`machine_ads` (same
        ads, same order) without re-selecting and re-indexing the store.
        """
        mindex = self._mindex
        if mindex is None:
            mindex = self._mindex = MaintainedIndex(
                'Type == "Machine"',
                items=[(rec.name, rec.ad) for rec in self.store.records()],
            )
        return mindex

    def job_ads(self) -> List[ClassAd]:
        return select(self.store.ads(), 'Type == "Job"')

    def job_ads_by_owner(self) -> Dict[str, List[ClassAd]]:
        """Idle request ads grouped per submitter, queue order preserved.

        The grouped view is cached between calls and invalidated only
        when a job ad is admitted, withdrawn, or expired — refresh hits
        leave it untouched, so steady-state negotiation cycles reuse it
        outright.  On rebuild, each ad's parsed ``Owner``/queue-order
        key is reused while its stored fingerprint is unchanged.
        """
        if len(self._kind) != len(self.store):
            self._recount()
        if self._grouped is None:
            grouped: Dict[str, List[ClassAd]] = defaultdict(list)
            kinds = self._kind
            keys: Dict[str, tuple] = {}
            for rec in self.store.records():
                if kinds.get(rec.name, ("", ""))[0] != "job":
                    continue
                cached = self._job_keys.get(rec.name)
                if (
                    cached is not None
                    and cached[0] is not None
                    and cached[0] == rec.fingerprint
                ):
                    _, owner, order_key = cached
                else:
                    raw = rec.ad.evaluate("Owner")
                    owner = raw if isinstance(raw, str) else None
                    order_key = _job_order_key(rec.ad)
                keys[rec.name] = (rec.fingerprint, owner, order_key)
                if owner is not None:
                    grouped[owner].append((order_key, rec.ad))
            self._job_keys = keys
            self._grouped = {
                owner: [ad for _, ad in sorted(pairs, key=lambda p: p[0])]
                for owner, pairs in grouped.items()
            }
        # Fresh lists so callers cannot corrupt the cached view.
        return {owner: list(ads) for owner, ads in self._grouped.items()}

    def ad_context(self, name: str) -> Optional[TraceContext]:
        """Causal context of the admitted ad *name* (None if untraced)."""
        return self._ad_ctx.get(name)

    def sample_pool(self, **cycle_fields) -> None:
        """One pool-health observation into the global time series
        (:mod:`repro.obs.timeseries`); the negotiator calls this after
        every cycle, passing that cycle's match figures."""
        from ..obs.timeseries import series as _series

        if not _series.enabled:
            return
        if len(self._kind) != len(self.store):
            self._recount()
        by_state = self._state_counts
        _series.sample(
            t=self.sim.now,
            machines=self._n_machines,
            owner=by_state.get("owner", 0),
            unclaimed=by_state.get("unclaimed", 0),
            claimed=by_state.get("claimed", 0),
            jobs_idle=self._n_jobs,
            store_size=len(self.store),
            **cycle_fields,
        )

    def query(self, constraint: str) -> List[ClassAd]:
        """One-way matching over everything stored (status tools)."""
        return select(self.store.ads(), constraint)

    def snapshot(self) -> str:
        """The current ad store as JSON lines (one ad per line) —
        feed it to the CLI's status/q/diagnose commands."""
        from ..classads.serialize import dumps

        return "\n".join(dumps(ad) for ad in self.store.ads())

    # -- failure injection ----------------------------------------------------

    def crash(self) -> None:
        """Lose all soft state and stop receiving (experiment E1)."""
        self.net.set_down(self.address)
        self.store.clear()
        self._ad_ctx.clear()
        self._kind.clear()
        self._state_counts.clear()
        self._n_machines = 0
        self._n_jobs = 0
        self._grouped = None
        self._job_keys.clear()
        if self._mindex is not None:
            self._mindex.clear()
        self.trace.emit(self.sim.now, "collector-crash")

    def recover(self) -> None:
        self.net.set_down(self.address, down=False)
        self.trace.emit(self.sim.now, "collector-recover")


def _job_order_key(ad: ClassAd):
    """Queue order: user priority first (higher = earlier), then FCFS.

    JobPrio only reorders one submitter's own queue — fair share across
    submitters is the negotiator's business, not the user's.
    """
    prio = ad.evaluate("JobPrio")
    qdate = ad.evaluate("QDate")
    job_id = ad.evaluate("JobId")
    return (
        -(prio if isinstance(prio, (int, float)) and not isinstance(prio, bool) else 0),
        qdate if isinstance(qdate, (int, float)) else 0,
        job_id if isinstance(job_id, int) else 0,
    )
