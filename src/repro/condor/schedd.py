"""The Customer Agent (CA / schedd) — S15 in DESIGN.md.

Section 4: "Customers of Condor are represented by Customer Agents
(CAs), which maintain per-customer queues of submitted jobs, represented
as lists of classads."

Behaviour implemented here:

* a per-customer job queue; idle jobs are advertised (and periodically
  refreshed) as request classads;
* on a match notification the CA performs the claiming protocol: it
  contacts the RA directly with its *current* request ad and the
  forwarded authorization ticket (Figure 3, step 4);
* rejected or timed-out claims return the job to the idle queue — the
  match was only ever a hint;
* evictions return the job to idle, retaining progress only when the
  job checkpoints (E5's goodput/badput accounting happens here);
* completed jobs are recorded and withdrawn from the matchmaker.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..classads import ClassAd, fingerprint
from ..obs import metrics as _metrics, tracer as _tracer
from ..obs.causal import TraceContext, causal_log as _causal, job_trace_id
from ..protocols import (
    VOLATILE_JOB_ATTRS,
    Advertisement,
    BackoffPolicy,
    ClaimRequest,
    ClaimResponse,
    MatchNotification,
    Refresh,
    ReleaseNotice,
    ResendRequest,
    Retransmitter,
    Withdrawal,
    refresh_enabled,
    retries_enabled,
    stable_equal,
    volatile_values,
)
from ..protocols.advertising import ADV_FULL_ADS, ADV_REFRESHES
from ..sim import Network, PoolMetrics, Simulator, Trace
from .jobs import Job
from .messages import JobCompleted, JobEvicted, KeepAlive, LeaseAck, NoticeAck
from .states import JobState

_CA_SUBMITTED = _metrics.counter("schedd.jobs_submitted", "jobs enqueued at CAs")
_CA_COMPLETED = _metrics.counter("schedd.jobs_completed", "jobs finished at CAs")
_CA_CLAIMS = _metrics.counter("schedd.claims_attempted", "claim requests sent")
_CA_CLAIMS_GRANTED = _metrics.counter(
    "schedd.claims_granted", "claim requests the RA accepted"
)
_CA_CLAIMS_DENIED = _metrics.counter(
    "schedd.claims_denied", "claim requests denied, by reason (incl. timeout)"
)
_CA_MATCHES_IGNORED = _metrics.counter(
    "schedd.matches_ignored", "stale match notifications declined by the CA"
)
_CA_EVICTIONS = _metrics.counter(
    "schedd.evictions", "running jobs evicted, by checkpoint outcome"
)
_CA_LEASES_LOST = _metrics.counter(
    "schedd.leases_lost", "running claims declared dead by the lease protocol"
)
_CA_DUP_MATCHES = _metrics.counter(
    "schedd.duplicate_matches", "retransmitted match notifications suppressed"
)

#: Match-notification dedup bound (FIFO eviction; see machine.py's
#: replay cache for the same reasoning).
_SEEN_MATCH_CAP = 512


@dataclass
class _PendingClaim:
    job: Job
    provider_address: str
    provider_name: str
    sent_at: float
    timeout_handle: object


@dataclass
class _ActiveClaim:
    """CA-side record of one running claim: where to renew the lease,
    and when the provider last confirmed it."""

    job: Job
    provider_address: str
    lease_duration: Optional[float]
    last_ack: float
    #: Causal context of the claim acceptance; timer-fired lease
    #: renewals parent on it so they stay inside the job's trace.
    ctx: Optional[TraceContext] = None


class CustomerAgent:
    """One customer's schedd: queue, advertising, claiming, bookkeeping."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        owner: str,
        collector_address: str,
        trace: Optional[Trace] = None,
        metrics: Optional[PoolMetrics] = None,
        advertise_interval: float = 300.0,
        ad_lifetime: Optional[float] = None,
        claim_timeout: float = 30.0,
        alive_interval: float = 60.0,
        flock_collectors: Sequence[str] = (),
        flock_threshold: float = 600.0,
        rng=None,
    ):
        self.sim = sim
        self.net = net
        self.owner = owner
        self.collector_address = collector_address
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.metrics = metrics or PoolMetrics()
        self.advertise_interval = advertise_interval
        self.ad_lifetime = ad_lifetime if ad_lifetime is not None else 3 * advertise_interval
        self.claim_timeout = claim_timeout
        self.alive_interval = alive_interval
        #: Flocking (Epema et al., the paper's ref [3]): collectors of
        #: *remote* pools to advertise starving jobs to.
        self.flock_collectors = list(flock_collectors)
        #: A job idle this long starts flocking to remote pools.
        self.flock_threshold = flock_threshold

        self.address = f"schedd@{owner}"
        self.jobs: Dict[int, Job] = {}
        self._pending: Dict[int, _PendingClaim] = {}  # by match_id
        self._pending_jobs: set = set()  # job ids with a claim in flight
        # active claims by match_id: lease bookkeeping + ALIVE targets
        self._active: Dict[int, _ActiveClaim] = {}
        # match notifications already acted on (retransmit suppression)
        self._seen_matches: OrderedDict = OrderedDict()
        # per-job causal root contexts (timer-fired sends re-enter here)
        self._job_ctx: Dict[int, TraceContext] = {}
        # collectors each job's ad has been sent to (for withdrawal)
        self._advertised_to: Dict[int, set] = {}
        # Refresh fast path: last full ad + fingerprint per
        # (job id, collector) — flocked collectors are courted
        # separately, so each needs its own full ad before refreshes.
        self._ad_cache: Dict[tuple, tuple] = {}
        self._sequence = 0
        retry_rng = rng.fork("retry") if rng is not None else None
        #: Claim requests are retransmitted inside the claim-timeout
        #: window; the RA's replay cache makes the repeats idempotent.
        self._claim_retx = Retransmitter(
            sim,
            net,
            rng=retry_rng,
            kind="claim-request",
            policy=BackoffPolicy(
                base=max(claim_timeout / 6.0, 1.0),
                factor=2.0,
                cap=max(claim_timeout / 2.0, 2.0),
                jitter=0.2,
                max_tries=2,
            ),
        )
        #: Job-ad retransmit: one blind extra copy per advertisement.
        self._ad_retx = Retransmitter(
            sim,
            net,
            rng=retry_rng,
            kind="advertisement",
            policy=BackoffPolicy(
                base=advertise_interval / 8.0,
                factor=2.0,
                cap=advertise_interval / 2.0,
                jitter=0.25,
                max_tries=1,
            ),
        )

        net.register(self.address, self._on_message)

    def start(self) -> None:
        """Arm the periodic queue advertiser and the ALIVE sender."""
        self.sim.every(self.advertise_interval, self.advertise_queue, start_delay=0.0)
        self.sim.every(self.alive_interval, self._send_keepalives)

    def _send_keepalives(self) -> None:
        """Renew the lease of every running claim (Condor's ALIVE
        messages); an RA that stops hearing these reclaims its machine.

        The renewal is bidirectional since the lease work: the RA acks
        each renewal (:class:`LeaseAck`), and a claim whose acks stop
        for longer than the granted lease is declared dead here — the
        only way the CA ever learns a machine crashed mid-job."""
        now = self.sim.now
        for match_id, active in list(self._active.items()):
            if (
                active.lease_duration is not None
                and retries_enabled()
                and now - active.last_ack > active.lease_duration
            ):
                self._lease_lost(match_id)
                continue
            with _causal.activate(active.ctx if _causal.enabled else None):
                self.net.send(
                    KeepAlive(
                        sender=self.address,
                        recipient=active.provider_address,
                        match_id=match_id,
                    )
                )

    def _lease_lost(self, match_id: int) -> None:
        """The provider is gone (lease acks stopped or were NACKed):
        recover the job instead of renewing into the void.  Work done
        under the dead claim is unknown, so none is credited."""
        active = self._active.pop(match_id, None)
        if active is None:
            return
        _CA_LEASES_LOST.inc()
        job = active.job
        if job.state is not JobState.RUNNING or job.running_match_id != match_id:
            return
        job.state = JobState.IDLE
        job.running_on = None
        job.running_match_id = None
        job.restarts += 1
        self.trace.emit(
            self.sim.now, "claim.lease.lost", owner=self.owner, job=job.job_id,
            match=match_id,
        )
        self._advertise_job(job)  # back in the hunt immediately

    # -- queue management ------------------------------------------------

    def _job_causal(self, job_id: int) -> Optional[TraceContext]:
        """Fallback causal context for timer-fired sends about *job_id*:
        the job's root span, unless a recv span is already active (in
        which case activating nothing keeps the tighter parent)."""
        if _causal.enabled and _causal.current() is None:
            return self._job_ctx.get(job_id)
        return None

    def submit(self, job: Job) -> None:
        """Enqueue *job* and advertise it immediately."""
        job.submit_time = self.sim.now
        job.state = JobState.IDLE
        self.jobs[job.job_id] = job
        self.metrics.jobs_submitted += 1
        _CA_SUBMITTED.inc()
        extra = {}
        if _causal.enabled:
            # The whole lifecycle of this job shares one deterministic
            # trace id; every message it causes descends from this root.
            trace_id = job_trace_id(self.owner, job.job_id)
            self._job_ctx[job.job_id] = _causal.start_trace(
                trace_id, "job.submit", owner=self.owner, job=job.job_id
            )
            extra["trace"] = trace_id
        self.trace.emit(
            self.sim.now, "job-submitted", owner=self.owner, job=job.job_id, **extra
        )
        self._advertise_job(job)

    def idle_jobs(self) -> List[Job]:
        return [
            job
            for job in self.jobs.values()
            if job.state is JobState.IDLE and job.job_id not in self._pending_jobs
        ]

    def unfinished(self) -> int:
        return sum(
            1
            for job in self.jobs.values()
            if job.state not in (JobState.COMPLETED, JobState.REMOVED)
        )

    def remove(self, job_id: int) -> bool:
        """condor_rm: withdraw a job from the system.

        Idle jobs are withdrawn from the matchmaker; running jobs
        relinquish their claim directly with the RA ("When the CA
        finishes using the resource, it relinquishes the claim" —
        Section 4 — removal is just finishing early).  Returns False for
        unknown or already-terminal jobs.
        """
        job = self.jobs.get(job_id)
        if job is None or job.state in (JobState.COMPLETED, JobState.REMOVED):
            return False
        if job.state is JobState.RUNNING and job.running_match_id is not None:
            active = self._active.pop(job.running_match_id, None)
            if active is not None:
                with _causal.activate(self._job_causal(job.job_id)):
                    self.net.send(
                        ReleaseNotice(
                            sender=self.address,
                            recipient=active.provider_address,
                            match_id=job.running_match_id,
                        )
                    )
        else:
            self._withdraw_job(job)
        self._pending_jobs.discard(job.job_id)
        self._job_ctx.pop(job.job_id, None)
        job.state = JobState.REMOVED
        job.running_on = None
        job.running_match_id = None
        self.trace.emit(self.sim.now, "job-removed", owner=self.owner, job=job.job_id)
        return True

    # -- advertising (Figure 3, step 1) ------------------------------------

    def _ad_name(self, job: Job) -> str:
        return f"job.{self.owner}.{job.job_id}"

    def _advertise_job(self, job: Job, collector: Optional[str] = None) -> None:
        collector = collector if collector is not None else self.collector_address
        self._sequence += 1
        ad = job.to_classad(self.address, self.sim.now)
        key = (job.job_id, collector)
        cached = self._ad_cache.get(key) if refresh_enabled() else None
        message = None
        # Same-instant guard: never refresh at the moment the referenced
        # full ad was sent — latency jitter could deliver the Refresh
        # first and force a needless resync round trip.
        if (
            cached is not None
            and self.sim.now > cached[2]
            and stable_equal(ad, cached[0], VOLATILE_JOB_ATTRS)
        ):
            volatile = volatile_values(ad, VOLATILE_JOB_ATTRS)
            if volatile is not None:
                ADV_REFRESHES.inc()
                message = Refresh(
                    sender=self.address,
                    recipient=collector,
                    name=self._ad_name(job),
                    fingerprint=cached[1],
                    lifetime=self.ad_lifetime,
                    sequence=self._sequence,
                    volatile=volatile,
                )
        if message is None:
            if refresh_enabled():
                fp = fingerprint(ad, exclude=VOLATILE_JOB_ATTRS)
                self._ad_cache[key] = (ad, fp, self.sim.now)
            else:
                self._ad_cache.pop(key, None)
                fp = None
            ADV_FULL_ADS.inc()
            message = Advertisement(
                sender=self.address,
                recipient=collector,
                name=self._ad_name(job),
                ad=ad,
                lifetime=self.ad_lifetime,
                sequence=self._sequence,
                fingerprint=fp,
            )
        # One blind extra copy, abandoned once the job stops being idle
        # (stale copies of older ads are dropped by the collector's
        # sequence check anyway).
        with _causal.activate(self._job_causal(job.job_id)):
            self._ad_retx.send(
                message,
                stop_when=lambda: job.state is not JobState.IDLE
                or job.job_id in self._pending_jobs,
            )
        self._advertised_to.setdefault(job.job_id, set()).add(collector)
        self.trace.emit(
            self.sim.now,
            "advertise-job" if collector == self.collector_address else "advertise-job-flock",
            owner=self.owner,
            job=job.job_id,
            collector=collector,
        )

    def _withdraw_job(self, job: Job) -> None:
        """Withdraw the job's ad from every collector that received it."""
        with _causal.activate(self._job_causal(job.job_id)):
            for collector in self._advertised_to.pop(
                job.job_id, {self.collector_address}
            ):
                # A withdrawn ad must never be refreshed back to life.
                self._ad_cache.pop((job.job_id, collector), None)
                self.net.send(
                    Withdrawal(
                        sender=self.address,
                        recipient=collector,
                        name=self._ad_name(job),
                        # Every ad/refresh already in flight for this job
                        # carries a smaller-or-equal sequence, so the
                        # collector can drop reordered late copies.
                        sequence=self._sequence,
                    )
                )

    def advertise_queue(self) -> None:
        """Refresh the request ads of every idle job.

        Jobs that have starved past the flock threshold are additionally
        advertised to the remote pools' collectors — the local pool gets
        right of first refusal, then the flock shares the load.
        """
        for job in self.idle_jobs():
            self._advertise_job(job)
            if (
                self.flock_collectors
                and self.sim.now - job.submit_time >= self.flock_threshold
            ):
                for collector in self.flock_collectors:
                    self._advertise_job(job, collector=collector)

    # -- message handling -----------------------------------------------------

    def _on_message(self, message) -> None:
        if isinstance(message, MatchNotification):
            self._on_match(message)
        elif isinstance(message, ClaimResponse):
            self._on_claim_response(message)
        elif isinstance(message, JobCompleted):
            self._on_completed(message)
        elif isinstance(message, JobEvicted):
            self._on_evicted(message)
        elif isinstance(message, ResendRequest):
            self._on_resend_request(message)
        elif isinstance(message, LeaseAck):
            self._on_lease_ack(message)

    def _on_resend_request(self, message: ResendRequest) -> None:
        """A collector NACKed our Refresh (it crashed, expired the ad,
        or saw another fingerprint): drop the cache for that collector
        and, if the job is still in the hunt, re-advertise in full to
        that collector immediately."""
        prefix = f"job.{self.owner}."
        if not message.name.startswith(prefix):
            return
        try:
            job_id = int(message.name[len(prefix):])
        except ValueError:
            return
        self._ad_cache.pop((job_id, message.sender), None)
        job = self.jobs.get(job_id)
        if (
            job is None
            or job.state is not JobState.IDLE
            or job_id in self._pending_jobs
        ):
            return  # no longer advertising; let the stale ad stay dead
        self._advertise_job(job, collector=message.sender)

    def _on_lease_ack(self, message: LeaseAck) -> None:
        active = self._active.get(message.match_id)
        if active is None:
            return
        if message.ok:
            active.last_ack = self.sim.now
            if message.lease is not None:
                active.lease_duration = message.lease
        elif retries_enabled():
            # The RA disowned the claim (it crashed or reaped the lease
            # and the teardown notice never reached us): recover now.
            self._lease_lost(message.match_id)

    def _on_match(self, notification: MatchNotification) -> None:
        """Figure 3, step 3→4: a match is a *hint*; try to claim."""
        if notification.match_id in self._seen_matches:
            # Retransmitted notification: the first copy already decided.
            _CA_DUP_MATCHES.inc()
            return
        self._seen_matches[notification.match_id] = True
        while len(self._seen_matches) > _SEEN_MATCH_CAP:
            self._seen_matches.popitem(last=False)
        job_id = notification.my_ad.evaluate("JobId")
        job = self.jobs.get(job_id) if isinstance(job_id, int) else None
        if job is None or job.state is not JobState.IDLE or job.job_id in self._pending_jobs:
            # Stale match (job finished, running, or already being claimed):
            # the CA simply declines to proceed — "Either entity may choose
            # to not proceed further and reject the introduction."
            _CA_MATCHES_IGNORED.inc()
            self.trace.emit(
                self.sim.now, "match-ignored", owner=self.owner, job=job_id
            )
            return
        job.matches += 1
        provider_name = str(notification.peer_ad.evaluate("Name"))
        advertised_at = notification.my_ad.evaluate("AdvertisedAt")
        if isinstance(advertised_at, (int, float)):
            self.metrics.match_latency.add(self.sim.now - float(advertised_at))
        self.trace.emit(
            self.sim.now,
            "match-notified-customer",
            owner=self.owner,
            job=job.job_id,
            machine=provider_name,
            match=notification.match_id,
        )
        # Claim with the *current* request ad (it may differ from the ad
        # the matchmaker used — that is the point of claim-time checks).
        request = ClaimRequest(
            sender=self.address,
            recipient=notification.peer_address,
            customer_ad=job.to_classad(self.address, self.sim.now),
            ticket=notification.ticket,
            match_id=notification.match_id,
        )
        timeout = self.sim.schedule(
            self.claim_timeout, self._claim_timed_out, notification.match_id
        )
        self._pending[notification.match_id] = _PendingClaim(
            job=job,
            provider_address=notification.peer_address,
            provider_name=provider_name,
            sent_at=self.sim.now,
            timeout_handle=timeout,
        )
        self._pending_jobs.add(job.job_id)
        self.metrics.claims_attempted += 1
        _CA_CLAIMS.inc()
        _tracer.event("claim_requested", owner=self.owner, job=job.job_id)
        self.trace.emit(
            self.sim.now, "claim-request", owner=self.owner, job=job.job_id,
            machine=provider_name,
        )
        match_id = notification.match_id
        self._claim_retx.send(
            request, stop_when=lambda: match_id not in self._pending
        )

    def _claim_timed_out(self, match_id: int) -> None:
        pending = self._pending.pop(match_id, None)
        if pending is None:
            return
        self._pending_jobs.discard(pending.job.job_id)
        self.metrics.record_claim_rejection("timeout")
        _CA_CLAIMS_DENIED.inc(reason="timeout")
        self.trace.emit(
            self.sim.now, "claim-timeout", owner=self.owner, job=pending.job.job_id
        )

    def _on_claim_response(self, response: ClaimResponse) -> None:
        pending = self._pending.pop(response.match_id, None)
        if pending is None:
            return  # timed out already, or duplicate
        self.sim.cancel(pending.timeout_handle)
        job = pending.job
        self._pending_jobs.discard(job.job_id)
        if not response.accepted:
            job.claim_rejections += 1
            self.metrics.record_claim_rejection(response.reason)
            _CA_CLAIMS_DENIED.inc(reason=response.reason)
            self.trace.emit(
                self.sim.now,
                "claim-rejected",
                owner=self.owner,
                job=job.job_id,
                reason=response.reason,
            )
            return  # job stays idle; next cycle retries
        _CA_CLAIMS_GRANTED.inc()
        job.state = JobState.RUNNING
        job.running_on = pending.provider_name
        job.running_match_id = response.match_id
        self._active[response.match_id] = _ActiveClaim(
            job=job,
            provider_address=pending.provider_address,
            lease_duration=response.lease_duration,
            last_ack=self.sim.now,
            ctx=_causal.current(),
        )
        if job.first_start_time is None:
            job.first_start_time = self.sim.now
            wait = job.wait_time()
            if wait is not None:
                self.metrics.wait_time.add(wait)
        self._withdraw_job(job)
        self.trace.emit(
            self.sim.now,
            "claim-accepted",
            owner=self.owner,
            job=job.job_id,
            machine=pending.provider_name,
            match=response.match_id,
        )

    def _ack_notice(self, message) -> None:
        """Teardown notices are retried by the RA until acked; always ack,
        even for duplicates or stale match ids."""
        self.net.send(
            NoticeAck(
                sender=self.address, recipient=message.sender, match_id=message.match_id
            )
        )

    def _current_claim_notice(self, message) -> Optional[Job]:
        """The job this teardown notice is about, iff it refers to the
        job's *current* claim (stale duplicates from an earlier claim,
        or notices for jobs the user removed, must not disturb it)."""
        job = self.jobs.get(message.job_id)
        if job is None or job.state is not JobState.RUNNING:
            return None
        if job.running_match_id != message.match_id:
            return None
        return job

    def _on_completed(self, message: JobCompleted) -> None:
        self._ack_notice(message)
        job = self._current_claim_notice(message)
        self._active.pop(message.match_id, None)
        if job is None:
            return
        job.state = JobState.COMPLETED
        job.completion_time = self.sim.now
        job.running_on = None
        job.running_match_id = None
        self._job_ctx.pop(job.job_id, None)
        self.metrics.jobs_completed += 1
        self.metrics.goodput += message.work_done
        _CA_COMPLETED.inc()
        turnaround = job.turnaround()
        if turnaround is not None:
            self.metrics.turnaround.add(turnaround)
        self.trace.emit(
            self.sim.now, "job-done", owner=self.owner, job=job.job_id
        )

    def _on_evicted(self, message: JobEvicted) -> None:
        self._ack_notice(message)
        job = self._current_claim_notice(message)
        self._active.pop(message.match_id, None)
        if job is None:
            return
        job.state = JobState.IDLE
        job.running_on = None
        job.running_match_id = None
        job.evictions += 1
        self.metrics.evictions += 1
        _CA_EVICTIONS.inc(checkpointed=message.checkpointed)
        if message.checkpointed:
            job.completed_work += message.work_done
            self.metrics.evictions_checkpointed += 1
            self.metrics.goodput += message.work_done
        else:
            job.restarts += 1
            self.metrics.badput += message.work_done
        self.trace.emit(
            self.sim.now,
            "job-evicted-ca",
            owner=self.owner,
            job=job.job_id,
            checkpointed=message.checkpointed,
            lost=0.0 if message.checkpointed else message.work_done,
        )
        self._advertise_job(job)  # back in the hunt immediately
