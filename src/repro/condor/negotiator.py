"""The negotiator half of the central manager — S16 in DESIGN.md.

Section 4: "Periodically, the pool manager enters a negotiation cycle.
This phase invokes the matchmaking algorithm, which determines which CAs
require matchmaking services, obtains requests from these CAs, and
matches them with compatible RA ads. ... When the pool manager
determines that two classads match, it invokes the matchmaking protocol
to contact the matched principals at the contact addresses specified in
their classads and send them each other's classads.  The manager also
gives the CA the authorization ticket supplied by the RA."

The negotiator is *stateless across cycles* except for the fair-share
accountant (which Condor persists separately); each cycle recomputes
from the collector's current ads.
"""

from __future__ import annotations

import time
from typing import List, Optional

from ..matchmaking import Accountant, Assignment, CycleStats, negotiation_cycle
from ..matchmaking.index import ProviderIndex
from ..matchmaking.match import DEFAULT_POLICY, MatchPolicy
from ..obs import metrics as _metrics, tracer as _tracer
from ..obs.causal import causal_log as _causal
from ..protocols import BackoffPolicy, Retransmitter, build_notifications
from ..sim import Network, Simulator, Trace
from .collector import Collector

_NEG_CYCLES = _metrics.counter("negotiator.cycles", "negotiator cycles fired")
_NEG_MATCHES = _metrics.counter("negotiator.matches", "assignments notified")
_NEG_NOTIFY_FAILURES = _metrics.counter(
    "negotiator.notify_failures", "matches dropped for missing contact addresses"
)
_NEG_CYCLE_SECONDS = _metrics.histogram(
    "negotiator.cycle_seconds", "wall-clock cost of one full negotiator cycle"
)
_NEG_PROVIDERS = _metrics.gauge(
    "negotiator.providers", "machine ads seen at the last cycle"
)
_NEG_REQUESTS_PENDING = _metrics.gauge(
    "negotiator.requests_pending", "job ads queued at the last cycle"
)


class Negotiator:
    """Runs periodic negotiation cycles against a collector."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        collector: Collector,
        trace: Optional[Trace] = None,
        address: str = "negotiator@cm",
        cycle_interval: float = 300.0,
        accountant: Optional[Accountant] = None,
        policy: MatchPolicy = DEFAULT_POLICY,
        allow_preemption: bool = True,
        use_index: bool = False,
        with_session_key: bool = False,
        parallel: Optional[bool] = None,
        rng=None,
    ):
        self.sim = sim
        self.net = net
        self.collector = collector
        #: Match notifications get one blind retransmit shortly after
        #: the original (both receivers de-duplicate by match id); a
        #: notification lost twice is recovered by the next cycle.
        self._notify_retx = Retransmitter(
            sim,
            net,
            rng=rng.fork("retry") if rng is not None else None,
            kind="match-notification",
            policy=BackoffPolicy(base=5.0, factor=2.0, cap=10.0, jitter=0.25, max_tries=1),
        )
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.address = address
        self.cycle_interval = cycle_interval
        self.accountant = accountant if accountant is not None else Accountant()
        self.policy = policy
        self.allow_preemption = allow_preemption
        self.use_index = use_index
        self.with_session_key = with_session_key
        #: Tri-state: None defers to the module-level parallel-scoring
        #: switch (REPRO_SCORING_WORKERS / REPRO_NO_PARALLEL).
        self.parallel = parallel

        self.cycles_run = 0
        self.total_matches = 0
        self.last_cycle_stats: Optional[CycleStats] = None
        self._down = False
        net.register(self.address, lambda message: None)  # no inbound traffic
        sim.every(cycle_interval, self.run_cycle)

    def run_cycle(self) -> List[Assignment]:
        """One negotiation cycle: match, then notify (Figure 3, steps 2–3)."""
        if self._down:
            return []
        start = time.perf_counter()
        self.accountant.advance_to(self.sim.now)
        index: Optional[ProviderIndex] = None
        if self.use_index:
            # The collector's persistent index is delta-maintained by the
            # advertising traffic — no per-cycle select + rebuild.
            mindex = self.collector.provider_index()
            providers = mindex.providers()
            index = mindex.index
        else:
            providers = self.collector.machine_ads()
        requests = self.collector.job_ads_by_owner()
        stats = CycleStats()
        with _tracer.span(
            "negotiator_cycle", now=self.sim.now, providers=len(providers)
        ) as span:
            assignments = negotiation_cycle(
                requests,
                providers,
                accountant=self.accountant,
                policy=self.policy,
                allow_preemption=self.allow_preemption,
                index=index,
                stats=stats,
                parallel=self.parallel,
            )
            span.annotate(matched=len(assignments))
        if _metrics.enabled:
            _NEG_CYCLES.inc()
            _NEG_MATCHES.inc(len(assignments))
            _NEG_PROVIDERS.set(len(providers))
            _NEG_REQUESTS_PENDING.set(sum(len(ads) for ads in requests.values()))
            _NEG_CYCLE_SECONDS.observe(time.perf_counter() - start)
        self.cycles_run += 1
        self.total_matches += len(assignments)
        self.last_cycle_stats = stats
        self.trace.emit(
            self.sim.now,
            "negotiation-cycle",
            machines=len(providers),
            requests=stats.requests_considered,
            matched=len(assignments),
            preemptions=stats.preemptions,
        )
        for assignment in assignments:
            self._notify(assignment)
        self.collector.sample_pool(
            cycle=self.cycles_run,
            matched=len(assignments),
            requests=stats.requests_considered,
            match_rate=(
                len(assignments) / stats.requests_considered
                if stats.requests_considered
                else 0.0
            ),
            preemptions=stats.preemptions,
        )
        return assignments

    def _notify(self, assignment: Assignment) -> None:
        try:
            to_customer, to_provider = build_notifications(
                self.address,
                assignment.request,
                assignment.provider,
                with_session_key=self.with_session_key,
            )
        except ValueError:
            # An ad slipped in without a contact address; the advertising
            # protocol should have rejected it — drop the match, log it.
            _NEG_NOTIFY_FAILURES.inc()
            self.trace.emit(self.sim.now, "notify-failed", submitter=assignment.submitter)
            return
        job_id = assignment.request.evaluate("JobId")
        self.trace.emit(
            self.sim.now,
            "match",
            submitter=assignment.submitter,
            job=job_id,
            machine=assignment.provider.evaluate("Name"),
            preempts=assignment.preempts,
        )
        ctx = None
        if _causal.enabled:
            # Stitch the negotiation decision into the job's trace: the
            # match span parents on the stored job ad's delivery context
            # (the recv span of the advertisement that got matched), and
            # both notifications descend from the match span.
            parent = self.collector.ad_context(
                f"job.{assignment.submitter}.{job_id}"
            )
            if parent is not None:
                ctx = _causal.span(
                    "negotiate.match",
                    parent=parent,
                    submitter=assignment.submitter,
                    job=job_id,
                    machine=to_customer.peer_address,
                    match=to_customer.match_id,
                )
        with _causal.activate(ctx):
            self._notify_retx.send(to_customer)
            self._notify_retx.send(to_provider)

    # -- failure injection ----------------------------------------------------

    def crash(self) -> None:
        """Stop negotiating (experiment E1).  The matchmaker holds no
        match state, so nothing else needs saving."""
        self._down = True
        self.trace.emit(self.sim.now, "negotiator-crash")

    def recover(self) -> None:
        self._down = False
        self.trace.emit(self.sim.now, "negotiator-recover")
