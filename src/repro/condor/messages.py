"""Condor-specific wire messages, extending the framework protocols.

The framework's claiming protocol (S11) deliberately leaves the content
of the working relationship to the parties ("bilateral specialization",
Section 3.2): the matchmaker never sees these.  They are the CA↔RA
traffic *after* a claim is established.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..protocols.messages import Message


@dataclass(frozen=True)
class JobCompleted(Message):
    """RA → CA: the claimed job ran to completion."""

    match_id: int
    job_id: int
    work_done: float  # reference CPU-seconds executed under this claim


@dataclass(frozen=True)
class JobEvicted(Message):
    """RA → CA: the claim was terminated before completion.

    ``checkpointed`` tells the CA whether ``work_done`` was saved (the
    job resumes from there) or lost (badput; the job restarts).
    """

    match_id: int
    job_id: int
    reason: str
    checkpointed: bool
    work_done: float


@dataclass(frozen=True)
class KeepAlive(Message):
    """CA → RA: the customer still exists and wants its claim.

    Condor's schedd sends periodic ALIVE messages for every active
    claim; a startd whose claim stops receiving them concludes the
    customer died and reclaims the machine (the *claim lease*).  Without
    this, a crashed CA would strand a workstation in Claimed forever.
    """

    match_id: int


@dataclass(frozen=True)
class LeaseAck(Message):
    """RA → CA: reply to a KeepAlive lease renewal.

    ``ok=True`` confirms the claim's lease was extended by ``lease``
    seconds.  ``ok=False`` says the RA holds no such claim (it crashed,
    reaped the lease, or was preempted and the teardown notice was
    lost) — the CA should declare the claim dead and recover the job
    rather than keep renewing into the void.
    """

    match_id: int
    ok: bool
    lease: Optional[float] = None


@dataclass(frozen=True)
class NoticeAck(Message):
    """CA → RA: acknowledges a JobCompleted/JobEvicted notice.

    The claim-teardown notices are the one place the simulated datagram
    network cannot be allowed to silently lose a message (a lost
    completion would strand the job as RUNNING forever), so the RA
    retries them until acked — the reliability Condor gets from TCP.
    """

    match_id: int
