"""Status tools — the one-way-matching utilities of Section 4.

"All entities are represented with classads, as are queries submitted by
various administrative and user tools.  One-way matching protocols are
used to find all objects matching a given pattern.  For example, there
are tools to check on the status of job queues and browse existing
resources."

These render the classic Condor command-line views from a collector's ad
store (or any ad list): ``condor_status`` (machines), ``condor_q``
(jobs), and a generic constrained query.  Pure functions over ads, so
they work identically against a live simulation or a saved snapshot.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..classads import ClassAd
from ..matchmaking import select


def _cell(ad: ClassAd, attr: str, width: int = 0, numeric: bool = False) -> str:
    value = ad.evaluate(attr)
    if isinstance(value, bool):
        text = "true" if value else "false"
    elif isinstance(value, float):
        text = f"{value:.3f}"
    elif isinstance(value, (int, str)):
        text = str(value)
    else:
        text = "[?]"
    return text


def _render(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = ["  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))]
    for row in rows:
        lines.append("  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def machine_status(
    ads: Iterable[ClassAd], constraint: Optional[str] = None
) -> str:
    """The ``condor_status`` view: one row per machine ad."""
    machines = select(ads, 'Type == "Machine"')
    if constraint is not None:
        machines = select(machines, constraint)
    rows = [
        [
            _cell(ad, "Name"),
            _cell(ad, "Arch"),
            _cell(ad, "OpSys"),
            _cell(ad, "State"),
            _cell(ad, "Activity"),
            _cell(ad, "Memory"),
            _cell(ad, "LoadAvg"),
            _cell(ad, "KeyboardIdle"),
        ]
        for ad in machines
    ]
    table = _render(
        ["Name", "Arch", "OpSys", "State", "Activity", "Mem", "LoadAv", "KbdIdle"],
        rows,
    )
    summary = _state_summary(machines)
    return f"{table}\n\n{summary}" if rows else f"(no machines)\n\n{summary}"


def _state_summary(machines: List[ClassAd]) -> str:
    counts = {}
    for ad in machines:
        state = ad.evaluate("State")
        key = state if isinstance(state, str) else "?"
        counts[key] = counts.get(key, 0) + 1
    total = len(machines)
    parts = ", ".join(f"{v} {k}" for k, v in sorted(counts.items()))
    return f"Total {total} machines: {parts}" if total else "Total 0 machines"


def queue_status(ads: Iterable[ClassAd], owner: Optional[str] = None) -> str:
    """The ``condor_q`` view over advertised (idle) request ads."""
    jobs = select(ads, 'Type == "Job"')
    if owner is not None:
        jobs = [ad for ad in jobs if ad.evaluate("Owner") == owner]
    rows = [
        [
            _cell(ad, "JobId"),
            _cell(ad, "Owner"),
            _cell(ad, "Cmd"),
            _cell(ad, "Memory"),
            _cell(ad, "ReqArch"),
            _cell(ad, "RemainingWork"),
        ]
        for ad in jobs
    ]
    table = _render(["ID", "Owner", "Cmd", "Mem", "Arch", "Remaining"], rows)
    return table if rows else "(no idle jobs advertised)"


def browse(ads: Iterable[ClassAd], constraint: str) -> List[ClassAd]:
    """Generic one-way browse: every ad satisfying *constraint*."""
    return select(ads, constraint)


def job_history(jobs, owner: Optional[str] = None) -> str:
    """The ``condor_history`` view over Job objects (completed/removed)."""
    from .states import JobState

    rows = []
    for job in jobs:
        if job.state not in (JobState.COMPLETED, JobState.REMOVED):
            continue
        if owner is not None and job.owner != owner:
            continue
        turnaround = job.turnaround()
        rows.append(
            [
                str(job.job_id),
                job.owner,
                job.state.value,
                f"{job.submit_time:.0f}",
                f"{turnaround:.0f}" if turnaround is not None else "-",
                str(job.evictions),
                str(job.matches),
            ]
        )
    table = _render(
        ["ID", "Owner", "State", "Submitted", "Turnaround", "Evicts", "Matches"], rows
    )
    return table if rows else "(no finished jobs)"


def format_userprio(accountant) -> str:
    """The ``condor_userprio`` view from an Accountant."""
    rows = [
        [name, f"{priority:.2f}", f"{usage:.0f}", str(in_use)]
        for name, priority, usage, in_use in accountant.usage_report()
    ]
    return _render(["User", "EffPrio", "Usage(cpu·s)", "InUse"], rows)
