"""Workload and pool generators — S17 in DESIGN.md.

The paper evaluated on the UW–Madison pool: hundreds of heterogeneous,
distributively-owned workstations plus a stream of scientific batch
jobs.  These generators synthesize that environment (DESIGN.md's
substitution table): machine mixes over architecture/OS/memory/speed,
owner-presence traces (office-hours and random-interruption models), and
job streams with Figure-2-shaped requirements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..sim.rng import RngStream
from .jobs import Job
from .machine import MachineSpec, OwnerModel

#: (arch, opsys) platforms with late-90s pool weights: mostly Intel
#: Solaris/Linux boxes, a tail of big-iron workstations.
DEFAULT_PLATFORMS: Sequence[Tuple[str, str, float]] = (
    ("INTEL", "SOLARIS251", 0.45),
    ("INTEL", "LINUX", 0.25),
    ("SPARC", "SOLARIS251", 0.20),
    ("ALPHA", "OSF1", 0.10),
)

DEFAULT_MEMORY_CHOICES: Sequence[int] = (32, 64, 128, 256)


# ---------------------------------------------------------------------------
# owner-presence models


class NeverPresentOwner(OwnerModel):
    """A dedicated compute node: the owner never appears."""


class PoissonOwner(OwnerModel):
    """Memoryless interruptions: exponential active and idle phases.

    Models the paper's "transit between available and unavailable states
    without advance notice".
    """

    def __init__(self, mean_active: float = 1_800.0, mean_idle: float = 5_400.0):
        if mean_active <= 0 or mean_idle <= 0:
            raise ValueError("phase means must be positive")
        self.mean_active = mean_active
        self.mean_idle = mean_idle

    def first_event(self, rng):
        # Start in the idle phase with the stationary probability.
        p_idle = self.mean_idle / (self.mean_idle + self.mean_active)
        if rng.bernoulli(p_idle):
            return False, self.idle_duration(rng)
        return True, self.active_duration(rng)

    def active_duration(self, rng) -> float:
        return rng.expovariate(1.0 / self.mean_active)

    def idle_duration(self, rng) -> float:
        return rng.expovariate(1.0 / self.mean_idle)


class OfficeHoursOwner(OwnerModel):
    """Deterministic nine-to-five-ish presence with a per-machine jitter.

    The owner arrives at ``start`` and leaves at ``end`` every simulated
    day (offsets jittered once per machine so the whole pool does not
    move in lock-step).
    """

    def __init__(self, start: float = 9 * 3600, end: float = 17 * 3600, jitter: float = 1_800.0):
        if not 0 <= start < end <= 86_400:
            raise ValueError("office hours must fall within one day")
        self.start = start
        self.end = end
        self.jitter = jitter
        self._offset: Optional[float] = None

    def _jittered(self, rng) -> Tuple[float, float]:
        if self._offset is None:
            self._offset = rng.uniform(-self.jitter, self.jitter) if rng else 0.0
        start = min(max(0.0, self.start + self._offset), 86_000.0)
        end = min(max(start + 60.0, self.end + self._offset), 86_400.0)
        return start, end

    def first_event(self, rng):
        start, end = self._jittered(rng)
        # Simulations start at t=0 (midnight): owner is away until start.
        return False, start

    def active_duration(self, rng) -> float:
        start, end = self._jittered(rng)
        return end - start

    def idle_duration(self, rng) -> float:
        start, end = self._jittered(rng)
        return 86_400.0 - (end - start)


# ---------------------------------------------------------------------------
# pool generation


@dataclass
class PoolProfile:
    """Knobs for synthesizing a machine pool."""

    platforms: Sequence[Tuple[str, str, float]] = DEFAULT_PLATFORMS
    memory_choices: Sequence[int] = DEFAULT_MEMORY_CHOICES
    mips_range: Tuple[float, float] = (50.0, 300.0)
    kflops_per_mips: float = 200.0
    disk_range: Tuple[int, int] = (100_000, 2_000_000)
    constraint: str = 'other.Type == "Job"'
    rank: str = "0"


#: The Figure 1 owner policy, parameterized by per-machine lists
#: (ResearchGroup / Friends / Untrusted go into extra_attrs).
FIGURE1_POLICY_CONSTRAINT = (
    "!member(other.Owner, Untrusted) && "
    "(Rank >= 10 ? true : "
    "Rank > 0 ? LoadAvg < 0.3 && KeyboardIdle > 15*60 : "
    "DayTime < 8*60*60 || DayTime > 18*60*60)"
)
FIGURE1_POLICY_RANK = (
    "member(other.Owner, ResearchGroup) * 10 + member(other.Owner, Friends)"
)


def generate_policy_pool(
    rng: RngStream,
    count: int,
    groups: Sequence[Sequence[str]],
    friends: Sequence[str] = (),
    untrusted: Sequence[str] = (),
    profile: Optional[PoolProfile] = None,
    name_prefix: str = "ws",
) -> List[MachineSpec]:
    """A pool of Figure-1-policy workstations.

    Each machine belongs to one research group from *groups* (assigned
    round-robin) and carries the full four-tier owner policy: its group
    always welcome, *friends* only when idle, strangers only at night,
    *untrusted* never.  This is the workload that makes bilateral
    matching necessary — no queue configuration can express it.
    """
    profile = profile or PoolProfile()
    specs = generate_pool(rng, count, profile, name_prefix=name_prefix)
    for i, spec in enumerate(specs):
        group = list(groups[i % len(groups)])
        spec.constraint = FIGURE1_POLICY_CONSTRAINT
        spec.rank = FIGURE1_POLICY_RANK
        spec.extra_attrs.update(
            ResearchGroup=group,
            Friends=list(friends),
            Untrusted=list(untrusted),
        )
    return specs


def generate_pool(
    rng: RngStream,
    count: int,
    profile: Optional[PoolProfile] = None,
    name_prefix: str = "vm",
) -> List[MachineSpec]:
    """*count* machine specs drawn from *profile*'s distributions."""
    profile = profile or PoolProfile()
    platforms = [(a, o) for a, o, _ in profile.platforms]
    weights = [w for _, _, w in profile.platforms]
    specs: List[MachineSpec] = []
    for i in range(count):
        arch, opsys = rng.choices(platforms, weights=weights)[0]
        mips = rng.uniform(*profile.mips_range)
        specs.append(
            MachineSpec(
                name=f"{name_prefix}{i:04d}",
                arch=arch,
                opsys=opsys,
                memory=rng.choice(list(profile.memory_choices)),
                disk=rng.randint(*profile.disk_range),
                mips=mips,
                kflops=mips * profile.kflops_per_mips,
                constraint=profile.constraint,
                rank=profile.rank,
            )
        )
    return specs


# ---------------------------------------------------------------------------
# job generation


@dataclass
class JobProfile:
    """Knobs for synthesizing a job stream."""

    mean_work: float = 1_800.0  # reference CPU-seconds
    memory_choices: Sequence[int] = (16, 31, 64, 128)
    want_checkpoint_fraction: float = 1.0
    platforms: Sequence[Tuple[str, str, float]] = DEFAULT_PLATFORMS


def generate_jobs(
    rng: RngStream,
    owner: str,
    count: int,
    profile: Optional[JobProfile] = None,
) -> List[Job]:
    """*count* jobs for *owner*, requirements drawn from *profile*."""
    profile = profile or JobProfile()
    platforms = [(a, o) for a, o, _ in profile.platforms]
    weights = [w for _, _, w in profile.platforms]
    jobs: List[Job] = []
    for _ in range(count):
        arch, opsys = rng.choices(platforms, weights=weights)[0]
        work = rng.expovariate(1.0 / profile.mean_work)
        jobs.append(
            Job(
                owner=owner,
                total_work=max(60.0, work),
                memory=rng.choice(list(profile.memory_choices)),
                req_arch=arch,
                req_opsys=opsys,
                want_checkpoint=rng.bernoulli(profile.want_checkpoint_fraction),
            )
        )
    return jobs


def poisson_arrival_times(
    rng: RngStream, count: int, rate: float, start: float = 0.0
) -> List[float]:
    """*count* Poisson arrival instants at *rate* jobs/second."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    times: List[float] = []
    t = start
    for _ in range(count):
        t += rng.expovariate(rate)
        times.append(t)
    return times
