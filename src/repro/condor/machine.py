"""The Resource-owner Agent (RA / startd) — S14 in DESIGN.md.

Section 4: "Resources in the Condor system are represented by
Resource-owner Agents (RAs), which are responsible for enforcing the
policies stipulated by resource owners.  An RA periodically probes the
resource to determine its current state, and encapsulates this
information in a classad along with the owner's usage policy."

Behaviour implemented here:

* periodic advertisement of a Figure-1-shaped classad, plus an immediate
  ad on every state change (Condor's behaviour; bounds staleness);
* owner arrival/departure dynamics driven by a pluggable activity model
  (keyboard idle time and load average follow the owner);
* an authorization ticket embedded in each ad, validated at claim time;
* claim verification exactly per the paper: ticket first, then both
  constraints against *current* state;
* eviction on owner return, and Rank-based preemption: a claimed RA
  still accepts claims from customers it ranks *strictly above* the
  current one ("it is still interested in hearing from higher priority
  customers ... completely under the control of the RA");
* job execution: wall time scales with the machine's Mips rating, and
  evicted jobs keep their progress only if they checkpoint.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..classads import ClassAd, fingerprint, parse, rank_value
from ..matchmaking.match import DEFAULT_POLICY, MatchPolicy, constraints_satisfied
from ..obs import event_log as _events, metrics as _metrics
from ..obs.causal import TraceContext, causal_log as _causal
from ..protocols import (
    VOLATILE_MACHINE_ATTRS,
    Advertisement,
    BackoffPolicy,
    ClaimRequest,
    ClaimResponse,
    MatchNotification,
    Refresh,
    ReleaseNotice,
    ResendRequest,
    Retransmitter,
    TicketAuthority,
    embed_ticket,
    refresh_enabled,
    retries_enabled,
    stable_equal,
    verify_claim,
    volatile_values,
)
from ..protocols.advertising import ADV_FULL_ADS, ADV_REFRESHES
from ..protocols.claiming import ClaimVerdict
from ..sim import Network, Simulator, Trace
from .jobs import REFERENCE_MIPS
from .messages import JobCompleted, JobEvicted, KeepAlive, LeaseAck, NoticeAck
from .states import Activity, MachineState, check_machine_transition

_RA_LEASES_RENEWED = _metrics.counter(
    "leases.renewed", "claim-lease renewals granted by RAs"
)
_RA_LEASES_EXPIRED = _metrics.counter(
    "leases.expired", "claims reaped because their lease lapsed"
)
_RA_DUP_CLAIMS = _metrics.counter(
    "machine.duplicate_claims",
    "retransmitted claim requests answered from the replay cache",
)

#: Replay-cache and notification-dedup bound: old entries are evicted
#: FIFO once this many are held (retransmit windows are far shorter
#: than the lifetime of 512 claims).
_REPLAY_CAP = 512

#: Default owner policy: accept anyone whenever the machine is not in
#: Owner state (the state machine handles owner presence; pools built
#: from Figure-1-style policies pass their own constraint).
DEFAULT_MACHINE_CONSTRAINT = 'other.Type == "Job"'
DEFAULT_MACHINE_RANK = "0"

#: The Owner-state START policy, parsed once and shared by every ad
#: build (shared Expr objects hit the change detector's identity check).
_FALSE_EXPR = parse("false")


@dataclass
class MachineSpec:
    """Static description of one workstation."""

    name: str
    arch: str = "INTEL"
    opsys: str = "SOLARIS251"
    memory: int = 64
    disk: int = 300_000
    mips: float = 100.0
    kflops: float = 20_000.0
    constraint: str = DEFAULT_MACHINE_CONSTRAINT
    rank: str = DEFAULT_MACHINE_RANK
    extra_attrs: Dict[str, object] = field(default_factory=dict)


class OwnerModel:
    """Owner presence model: when does the owner (de)occupy the machine?

    ``first_event`` returns (initially_active, seconds-until-change);
    afterwards the agent alternates, asking :meth:`active_duration` /
    :meth:`idle_duration` for each phase.  The default owner never shows
    up (a dedicated compute node).
    """

    def first_event(self, rng):
        return False, float("inf")

    def active_duration(self, rng) -> float:  # pragma: no cover - abstract-ish
        return 0.0

    def idle_duration(self, rng) -> float:  # pragma: no cover
        return float("inf")


@dataclass
class _Claim:
    """The RA's record of its current working relationship."""

    match_id: int
    customer_address: str
    job_ad: ClassAd
    job_id: int
    rank: float
    started_at: float
    wants_checkpoint: bool
    completion_handle: object = None
    last_alive: float = 0.0
    lease_expires: float = float("inf")
    #: Causal context of the accepted claim request; timer-fired
    #: completion/eviction notices parent on it so the teardown stays
    #: inside the job's trace.
    ctx: Optional[TraceContext] = None


class MachineAgent:
    """One simulated workstation and its resource-owner agent."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        spec: MachineSpec,
        collector_address: str,
        trace: Optional[Trace] = None,
        rng=None,
        owner_model: Optional[OwnerModel] = None,
        advertise_interval: float = 300.0,
        ad_lifetime: Optional[float] = None,
        policy: MatchPolicy = DEFAULT_POLICY,
        advertise_on_state_change: bool = True,
        on_claim_started: Optional[Callable[[str, str], None]] = None,
        on_claim_ended: Optional[Callable[[str, str], None]] = None,
    ):
        self.sim = sim
        self.net = net
        self.spec = spec
        self.collector_address = collector_address
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.rng = rng
        self.owner_model = owner_model or OwnerModel()
        self.advertise_interval = advertise_interval
        self.ad_lifetime = ad_lifetime if ad_lifetime is not None else 3 * advertise_interval
        self.policy = policy
        self.advertise_on_state_change = advertise_on_state_change
        self.on_claim_started = on_claim_started
        self.on_claim_ended = on_claim_ended

        self.address = f"startd@{spec.name}"
        self.authority = TicketAuthority(spec.name, spec.name.encode())
        self.state = MachineState.UNCLAIMED
        self.claim: Optional[_Claim] = None
        self.owner_active = False
        self.crashed = False
        self._owner_last_departure = sim.now
        self._sequence = 0
        # Refresh fast path: the last full ad sent and its fingerprint
        # (stable attributes only); while the current state still
        # matches, the periodic advertiser sends a compact Refresh.
        self._last_ad: Optional[ClassAd] = None
        self._last_fp: Optional[str] = None
        self._last_full_at: float = -1.0
        # Policy expressions parsed once per source text, not per build.
        self._policy_src: Optional[tuple] = None
        self._constraint_expr = None
        self._rank_expr = None
        self._pending_notices = {}
        # Receiver-side duplicate suppression (retransmits are blind, so
        # the RA must answer repeats idempotently): verdicts by
        # (match_id, sender, job_id), and match notifications seen.
        self._claim_verdicts: OrderedDict = OrderedDict()
        self._seen_notifications: OrderedDict = OrderedDict()
        retry_rng = rng.fork("retry") if rng is not None else None
        #: Blind retransmit of each advertisement (same sequence number;
        #: the collector's >=-sequence refresh makes copies idempotent).
        self._ad_retx = Retransmitter(
            sim,
            net,
            rng=retry_rng,
            kind="advertisement",
            policy=BackoffPolicy(
                base=advertise_interval / 8.0,
                factor=2.0,
                cap=advertise_interval / 2.0,
                jitter=0.25,
                max_tries=1,
            ),
        )
        self.notice_retry_interval = 30.0
        #: Give up teardown-notice delivery after this many resends (the
        #: peer is almost certainly gone; 50 tries beats 10% loss by
        #: 10^-50, and leases handle truly dead peers).
        self.max_notice_retries = 50
        #: Claim lease: evict if no KeepAlive arrives for this long.
        #: None disables leases (ablation knob; see E-ablation bench).
        self.claim_lease: float | None = 180.0
        #: Vacate grace: seconds the owner tolerates between arrival and
        #: the job being gone.  Writing a checkpoint takes
        #: memory / checkpoint_rate seconds; if that exceeds the grace,
        #: the checkpoint is abandoned and the work is lost.  None means
        #: the owner always waits out the checkpoint (the default, and
        #: the behaviour of a well-configured pool).
        self.vacate_grace: float | None = None
        self.checkpoint_rate_mb_s: float = 10.0

        # outcome counters (tests and E5 read these)
        self.jobs_completed = 0
        self.evictions_owner = 0
        self.evictions_preempted = 0
        self.evictions_lease = 0
        self.claims_accepted = 0
        self.claims_rejected = 0

        net.register(self.address, self._on_message)

    def start(self) -> None:
        """Arm the periodic advertiser and the owner-activity process."""
        self.authority.mint()
        self.sim.every(self.advertise_interval, self.advertise, start_delay=0.0)
        active, until_change = self.owner_model.first_event(self.rng)
        if active:
            # Owner present from t=0: enter Owner state before anything runs.
            self.owner_active = True
            self._set_state(MachineState.OWNER)
        if until_change != float("inf"):
            self.sim.schedule(until_change, self._owner_flip)

    # -- dynamic state -------------------------------------------------------

    @property
    def speed(self) -> float:
        return self.spec.mips / REFERENCE_MIPS

    @property
    def keyboard_idle(self) -> float:
        """Seconds since the owner last touched the machine."""
        if self.owner_active:
            return 0.0
        return self.sim.now - self._owner_last_departure

    @property
    def load_avg(self) -> float:
        """Owner-induced load (job load is excluded, as Condor's owner
        policies consult the non-Condor load average)."""
        return 1.25 if self.owner_active else 0.05

    @property
    def day_time(self) -> float:
        return self.sim.now % 86_400.0

    def _owner_flip(self) -> None:
        if self.owner_active:
            self.owner_active = False
            self._owner_last_departure = self.sim.now
            if self.state is MachineState.OWNER:
                self._set_state(MachineState.UNCLAIMED)
            self.trace.emit(self.sim.now, "owner-departed", machine=self.spec.name)
            next_in = self.owner_model.idle_duration(self.rng)
        else:
            self.owner_active = True
            self.trace.emit(self.sim.now, "owner-arrived", machine=self.spec.name)
            if self.claim is not None:
                self._evict("owner-returned")
                self.evictions_owner += 1
            self._set_state(MachineState.OWNER)
            next_in = self.owner_model.active_duration(self.rng)
        if next_in != float("inf"):
            self.sim.schedule(next_in, self._owner_flip)

    def _set_state(self, new: MachineState) -> None:
        if new is self.state and new is not MachineState.CLAIMED:
            return
        check_machine_transition(self.state, new)
        self.state = new
        if new is MachineState.UNCLAIMED:
            self.authority.mint()  # fresh ticket for the next customer
        elif new is MachineState.OWNER:
            self.authority.revoke()
        if self.advertise_on_state_change:
            # The immediate ad on state change is what bounds staleness in
            # deployed Condor; E2 disables it to sweep pure-periodic pools.
            self.advertise()

    # -- advertising (Figure 3, step 1) ---------------------------------------

    def build_ad(self) -> ClassAd:
        """The RA's current classad — the Figure 1 shape."""
        ad = ClassAd(
            {
                "Type": "Machine",
                "Name": self.spec.name,
                "State": self.state.value,
                "Activity": (
                    Activity.BUSY.value
                    if self.claim is not None or self.owner_active
                    else Activity.IDLE.value
                ),
                "Arch": self.spec.arch,
                "OpSys": self.spec.opsys,
                "Memory": self.spec.memory,
                "Disk": self.spec.disk,
                "Mips": self.spec.mips,
                "KFlops": self.spec.kflops,
                "LoadAvg": self.load_avg,
                "KeyboardIdle": self.keyboard_idle,
                "DayTime": self.day_time,
                "ContactAddress": self.address,
            }
        )
        for key, value in self.spec.extra_attrs.items():
            ad[key] = value
        src = (self.spec.constraint, self.spec.rank)
        if src != self._policy_src:
            self._policy_src = src
            self._constraint_expr = parse(src[0])
            self._rank_expr = parse(src[1])
        if self.state is MachineState.OWNER:
            # Owner present: the START policy is unsatisfiable, full stop.
            ad["Constraint"] = _FALSE_EXPR
        else:
            ad["Constraint"] = self._constraint_expr
        ad["Rank"] = self._rank_expr
        if self.claim is not None:
            ad["RemoteOwner"] = str(self.claim.job_ad.evaluate("Owner"))
            ad["CurrentRank"] = self.claim.rank
        ticket = self.authority.current
        if ticket is not None:
            embed_ticket(ad, ticket)
        return ad

    def advertise(self) -> None:
        self._sequence += 1
        seq = self._sequence
        ad = self.build_ad()
        message = None
        if (
            refresh_enabled()
            and self._last_fp is not None
            # Never refresh at the instant the referenced full ad was
            # sent: latency jitter could deliver the Refresh first and
            # force a needless resync round trip.
            and self.sim.now > self._last_full_at
            and stable_equal(ad, self._last_ad, VOLATILE_MACHINE_ATTRS)
        ):
            volatile = volatile_values(ad, VOLATILE_MACHINE_ATTRS)
            if volatile is not None:
                ADV_REFRESHES.inc()
                message = Refresh(
                    sender=self.address,
                    recipient=self.collector_address,
                    name=f"machine.{self.spec.name}",
                    fingerprint=self._last_fp,
                    lifetime=self.ad_lifetime,
                    sequence=seq,
                    volatile=volatile,
                )
        if message is None:
            if refresh_enabled():
                self._last_ad = ad
                self._last_fp = fingerprint(ad, exclude=VOLATILE_MACHINE_ATTRS)
                self._last_full_at = self.sim.now
            else:
                self._last_ad = None
                self._last_fp = None
            ADV_FULL_ADS.inc()
            message = Advertisement(
                sender=self.address,
                recipient=self.collector_address,
                name=f"machine.{self.spec.name}",
                ad=ad,
                lifetime=self.ad_lifetime,
                sequence=seq,
                fingerprint=self._last_fp,
            )
        # Retransmit unless a newer ad has superseded this one (the
        # collector would drop the stale sequence anyway) or we died.
        self._ad_retx.send(
            message, stop_when=lambda: self._sequence != seq or self.crashed
        )
        self.trace.emit(
            self.sim.now, "advertise-machine", machine=self.spec.name, state=self.state.value
        )

    # -- message handling ------------------------------------------------------

    def _on_message(self, message) -> None:
        if isinstance(message, ClaimRequest):
            self._on_claim_request(message)
        elif isinstance(message, MatchNotification):
            # Step 3 arrives here too; the RA just awaits the claim.
            # Notifications may be retransmitted — record each once.
            if message.match_id in self._seen_notifications:
                return
            self._remember(self._seen_notifications, message.match_id, True)
            self.trace.emit(
                self.sim.now, "match-notified-provider", machine=self.spec.name,
                match=message.match_id,
            )
        elif isinstance(message, ReleaseNotice):
            self._on_release(message)
        elif isinstance(message, ResendRequest):
            self._on_resend_request(message)
        elif isinstance(message, NoticeAck):
            self._pending_notices.pop(message.match_id, None)
        elif isinstance(message, KeepAlive):
            self._on_keepalive(message)

    def _on_resend_request(self, message: ResendRequest) -> None:
        """The collector cannot honour our Refresh (it crashed, expired
        the ad, or saw a different fingerprint): forget the cached state
        and re-advertise in full immediately — the one-round-trip resync
        that keeps crash recovery within an advertising period."""
        if message.name != f"machine.{self.spec.name}" or self.crashed:
            return
        self._last_ad = None
        self._last_fp = None
        self.advertise()

    def _on_keepalive(self, message: KeepAlive) -> None:
        claim = self.claim
        if claim is not None and claim.match_id == message.match_id:
            claim.last_alive = self.sim.now
            if self.claim_lease is not None:
                claim.lease_expires = self.sim.now + self.claim_lease
                _RA_LEASES_RENEWED.inc()
                if _events.enabled:
                    _events.emit(
                        "claim.lease.renewed",
                        t=self.sim.now,
                        machine=self.spec.name,
                        match=claim.match_id,
                        expires=claim.lease_expires,
                    )
                self.net.send(
                    LeaseAck(
                        sender=self.address,
                        recipient=message.sender,
                        match_id=message.match_id,
                        ok=True,
                        lease=self.claim_lease,
                    )
                )
        elif self.claim_lease is not None:
            # No such claim here: NACK so the customer stops renewing a
            # dead claim and recovers the job (e.g. after we crashed).
            self.net.send(
                LeaseAck(
                    sender=self.address,
                    recipient=message.sender,
                    match_id=message.match_id,
                    ok=False,
                )
            )

    @staticmethod
    def _remember(cache: OrderedDict, key, value) -> None:
        cache[key] = value
        while len(cache) > _REPLAY_CAP:
            cache.popitem(last=False)

    def _send_reliably(self, notice) -> None:
        """Send a claim-teardown notice, retrying until the CA acks.

        A lost JobCompleted/JobEvicted would strand the job at the CA, so
        these get at-least-once delivery (Condor relies on TCP here; our
        network is datagram-like).  Duplicates are fine: the CA
        de-duplicates by match id.
        """
        self._pending_notices[notice.match_id] = notice
        self.net.send(notice)
        if retries_enabled():
            self._schedule_notice_retry(notice.match_id, self.max_notice_retries)
        else:
            self._pending_notices.pop(notice.match_id, None)

    def _schedule_notice_retry(self, match_id: int, retries_left: int) -> None:
        self.sim.schedule(
            self.notice_retry_interval, self._notice_retry, (match_id, retries_left)
        )

    def _notice_retry(self, state) -> None:
        match_id, retries_left = state
        notice = self._pending_notices.get(match_id)
        if notice is None:
            return  # acked
        if retries_left <= 0 or not retries_enabled():
            self._pending_notices.pop(match_id, None)
            return  # peer presumed dead; leases cover the rest
        self.net.send(notice)
        self._schedule_notice_retry(match_id, retries_left - 1)

    def _claim_key(self, request: ClaimRequest):
        job_id = request.customer_ad.evaluate("JobId")
        return (
            request.match_id,
            request.sender,
            job_id if isinstance(job_id, int) else -1,
        )

    def _on_claim_request(self, request: ClaimRequest) -> None:
        # Duplicate suppression: a retransmitted request replays the
        # original verdict instead of colliding with the claim it itself
        # created (which would wrongly answer ALREADY_CLAIMED).  The
        # accept is only replayed while that exact claim is still live;
        # afterwards the honest answer is "that claim is gone".
        cached = self._claim_verdicts.get(self._claim_key(request))
        if cached is not None:
            _RA_DUP_CLAIMS.inc()
            accepted, reason = cached
            claim = self.claim
            if accepted and (claim is None or claim.match_id != request.match_id):
                accepted, reason = False, "stale-claim"
            self.net.send(
                ClaimResponse(
                    sender=self.address,
                    recipient=request.sender,
                    match_id=request.match_id,
                    accepted=accepted,
                    reason=reason,
                    lease_duration=self.claim_lease if accepted else None,
                )
            )
            return
        preempting = False
        if self.claim is not None:
            # Rank preemption: only a strictly better customer may displace
            # the current one; otherwise the claim is refused outright.
            current_ad = self.build_ad()
            new_rank = rank_value(current_ad.evaluate("Rank", other=request.customer_ad))
            if new_rank > self.claim.rank:
                preempting = True
            else:
                self._respond(request, False, ClaimVerdict.ALREADY_CLAIMED.value)
                return
        decision = verify_claim(
            request_ad=request.customer_ad,
            current_resource_ad=self.build_ad(),
            presented_ticket=request.ticket,
            authority=self.authority,
            already_claimed=False,
            policy=self.policy,
        )
        if not decision.accepted:
            self._respond(request, False, decision.verdict.value)
            return
        if preempting:
            self._evict("preempted-by-higher-rank")
            self.evictions_preempted += 1
        self._accept_claim(request)

    def _respond(self, request: ClaimRequest, accepted: bool, reason: str) -> None:
        if accepted:
            self.claims_accepted += 1
        else:
            self.claims_rejected += 1
        self._remember(self._claim_verdicts, self._claim_key(request), (accepted, reason))
        job_id = request.customer_ad.evaluate("JobId")
        self.trace.emit(
            self.sim.now,
            "claim-response",
            machine=self.spec.name,
            accepted=accepted,
            reason=reason,
            match=request.match_id,
            job=job_id if isinstance(job_id, int) else -1,
        )
        self.net.send(
            ClaimResponse(
                sender=self.address,
                recipient=request.sender,
                match_id=request.match_id,
                accepted=accepted,
                reason=reason,
                lease_duration=self.claim_lease if accepted else None,
            )
        )

    def _accept_claim(self, request: ClaimRequest) -> None:
        job_ad = request.customer_ad
        rank = rank_value(self.build_ad().evaluate("Rank", other=job_ad))
        remaining = job_ad.evaluate("RemainingWork")
        remaining = float(remaining) if isinstance(remaining, (int, float)) else 0.0
        wants_checkpoint = job_ad.evaluate("WantCheckpoint") in (1, True)
        job_id = job_ad.evaluate("JobId")
        claim = _Claim(
            match_id=request.match_id,
            customer_address=request.sender,
            job_ad=job_ad,
            job_id=job_id if isinstance(job_id, int) else -1,
            rank=rank,
            started_at=self.sim.now,
            wants_checkpoint=wants_checkpoint,
            ctx=_causal.current(),
        )
        wall_time = remaining * REFERENCE_MIPS / self.spec.mips
        claim.completion_handle = self.sim.schedule(wall_time, self._complete)
        claim.last_alive = self.sim.now
        self.claim = claim
        if self.claim_lease is not None:
            claim.lease_expires = self.sim.now + self.claim_lease
            self._arm_lease_reaper(claim)
            if _events.enabled:
                _events.emit(
                    "claim.lease.granted",
                    t=self.sim.now,
                    machine=self.spec.name,
                    match=claim.match_id,
                    job=claim.job_id,
                    lease=self.claim_lease,
                )
        # Rotate the ticket: the consumed one must not authorize a second
        # claim, and subsequent (Claimed-state) ads carry a fresh ticket
        # for potential preemptors.
        self.authority.mint()
        self._set_state(MachineState.CLAIMED)
        if self.on_claim_started is not None:
            self.on_claim_started(str(job_ad.evaluate("Owner")), self.spec.name)
        self._respond(
            ClaimRequest(
                sender=claim.customer_address,
                recipient=self.address,
                customer_ad=job_ad,
                ticket=None,
                match_id=claim.match_id,
            ),
            True,
            ClaimVerdict.ACCEPTED.value,
        )

    def _arm_lease_reaper(self, claim: _Claim) -> None:
        """Fire exactly when the lease would lapse; each renewal pushes
        ``lease_expires`` forward, so the reaper just re-arms itself
        until the deadline is real (Condor's ALIVE protocol, with a
        reaper instead of the old half-lease poll).  The claim itself
        rides the kernel's argument slot — no closure per re-arm."""
        delay = max(claim.lease_expires - self.sim.now, 0.0)
        self.sim.schedule(delay + 1e-9, self._lease_reap, claim)

    def _lease_reap(self, claim: _Claim) -> None:
        if self.claim is not claim:
            return  # claim already ended
        if self.sim.now >= claim.lease_expires:
            self.evictions_lease += 1
            _RA_LEASES_EXPIRED.inc()
            if _events.enabled:
                _events.emit(
                    "claim.lease.expired",
                    t=self.sim.now,
                    machine=self.spec.name,
                    match=claim.match_id,
                    job=claim.job_id,
                )
            self._evict("claim-lease-expired")
            if not self.owner_active:
                self._set_state(MachineState.UNCLAIMED)
        else:
            self._arm_lease_reaper(claim)

    def _work_done(self, claim: _Claim) -> float:
        """Reference CPU-seconds executed so far under *claim*."""
        return (self.sim.now - claim.started_at) * self.spec.mips / REFERENCE_MIPS

    def _complete(self) -> None:
        claim = self.claim
        if claim is None:
            return
        self.claim = None
        self.jobs_completed += 1
        self.trace.emit(
            self.sim.now, "job-completed", machine=self.spec.name, job=claim.job_id
        )
        with _causal.activate(claim.ctx if _causal.enabled else None):
            self._send_reliably(
                JobCompleted(
                    sender=self.address,
                    recipient=claim.customer_address,
                    match_id=claim.match_id,
                    job_id=claim.job_id,
                    work_done=self._work_done(claim),
                )
            )
        if self.on_claim_ended is not None:
            self.on_claim_ended(str(claim.job_ad.evaluate("Owner")), self.spec.name)
        if not self.owner_active:
            self._set_state(MachineState.UNCLAIMED)

    def _evict(self, reason: str) -> None:
        claim = self.claim
        if claim is None:
            return
        self.claim = None
        if claim.completion_handle is not None:
            self.sim.cancel(claim.completion_handle)
        checkpointed = claim.wants_checkpoint
        if checkpointed and self.vacate_grace is not None:
            memory = claim.job_ad.evaluate("Memory")
            memory = float(memory) if isinstance(memory, (int, float)) else 64.0
            checkpoint_time = memory / self.checkpoint_rate_mb_s
            checkpointed = checkpoint_time <= self.vacate_grace
        self.trace.emit(
            self.sim.now,
            "job-evicted",
            machine=self.spec.name,
            job=claim.job_id,
            reason=reason,
            checkpointed=checkpointed,
        )
        with _causal.activate(claim.ctx if _causal.enabled else None):
            self._send_reliably(
                JobEvicted(
                    sender=self.address,
                    recipient=claim.customer_address,
                    match_id=claim.match_id,
                    job_id=claim.job_id,
                    reason=reason,
                    checkpointed=checkpointed,
                    work_done=self._work_done(claim),
                )
            )
        if self.on_claim_ended is not None:
            self.on_claim_ended(str(claim.job_ad.evaluate("Owner")), self.spec.name)

    # -- failure injection (chaos crash schedules) -------------------------

    def crash(self) -> None:
        """The RA process dies: it stops transmitting, loses its claim
        and any pending teardown notices, and its ads go stale.  The
        customer learns of the loss only through the lease protocol."""
        if self.crashed:
            return
        self.crashed = True
        self.net.set_down(self.address)
        claim = self.claim
        if claim is not None:
            self.claim = None
            if claim.completion_handle is not None:
                self.sim.cancel(claim.completion_handle)
            if self.on_claim_ended is not None:
                self.on_claim_ended(str(claim.job_ad.evaluate("Owner")), self.spec.name)
        self._pending_notices.clear()
        self._claim_verdicts.clear()
        self._seen_notifications.clear()
        # The collector may expire our ad while we are down: the first
        # post-restart advertisement must be a full one.
        self._last_ad = None
        self._last_fp = None
        self.trace.emit(self.sim.now, "machine-crash", machine=self.spec.name)

    def restart(self) -> None:
        """Reboot after :meth:`crash`: fresh ticket, fresh ads, no
        memory of the old claim."""
        if not self.crashed:
            return
        self.crashed = False
        self.net.set_down(self.address, down=False)
        target = MachineState.OWNER if self.owner_active else MachineState.UNCLAIMED
        if self.state is not target:
            self._set_state(target)  # mints/revokes the ticket, re-advertises
        else:
            if target is MachineState.UNCLAIMED:
                self.authority.mint()
            self.advertise()
        self.trace.emit(self.sim.now, "machine-restart", machine=self.spec.name)

    def _on_release(self, notice: ReleaseNotice) -> None:
        """Customer relinquished the claim (Section 4)."""
        if self.claim is not None and self.claim.match_id == notice.match_id:
            claim = self.claim
            self.claim = None
            if claim.completion_handle is not None:
                self.sim.cancel(claim.completion_handle)
            self.trace.emit(
                self.sim.now, "claim-released", machine=self.spec.name, job=claim.job_id
            )
            if self.on_claim_ended is not None:
                self.on_claim_ended(str(claim.job_ad.evaluate("Owner")), self.spec.name)
            if not self.owner_active:
                self._set_state(MachineState.UNCLAIMED)
