"""The Condor-style pool — S14–S17 in DESIGN.md (paper Section 4).

Agents: :class:`MachineAgent` (resource-owner agent / startd),
:class:`CustomerAgent` (customer agent / schedd), :class:`Collector` and
:class:`Negotiator` (the pool manager).  :class:`CondorPool` wires a
whole pool onto one simulator; :mod:`repro.condor.workload` synthesizes
machines, owners and job streams.
"""

from .collector import Collector
from .flocking import Flock
from .jobs import REFERENCE_MIPS, Job, execution_time
from .machine import (
    DEFAULT_MACHINE_CONSTRAINT,
    MachineAgent,
    MachineSpec,
    OwnerModel,
)
from .messages import JobCompleted, JobEvicted
from .negotiator import Negotiator
from .pool import CondorPool, PoolConfig
from .schedd import CustomerAgent
from .states import Activity, JobState, MachineState, check_machine_transition
from .workload import (
    DEFAULT_PLATFORMS,
    FIGURE1_POLICY_CONSTRAINT,
    FIGURE1_POLICY_RANK,
    JobProfile,
    NeverPresentOwner,
    OfficeHoursOwner,
    PoissonOwner,
    PoolProfile,
    generate_jobs,
    generate_policy_pool,
    generate_pool,
    poisson_arrival_times,
)

__all__ = [
    "Activity",
    "Collector",
    "Flock",
    "CondorPool",
    "CustomerAgent",
    "DEFAULT_MACHINE_CONSTRAINT",
    "DEFAULT_PLATFORMS",
    "Job",
    "JobCompleted",
    "JobEvicted",
    "JobProfile",
    "JobState",
    "MachineAgent",
    "MachineSpec",
    "MachineState",
    "NeverPresentOwner",
    "Negotiator",
    "OfficeHoursOwner",
    "OwnerModel",
    "PoissonOwner",
    "PoolConfig",
    "PoolProfile",
    "REFERENCE_MIPS",
    "check_machine_transition",
    "execution_time",
    "FIGURE1_POLICY_CONSTRAINT",
    "FIGURE1_POLICY_RANK",
    "generate_jobs",
    "generate_policy_pool",
    "generate_pool",
    "poisson_arrival_times",
]
