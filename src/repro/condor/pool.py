"""The assembled Condor pool — wiring for S12–S17.

:class:`CondorPool` builds the whole system of Figure 3 on one
simulator: a central manager (collector + negotiator), one
:class:`~repro.condor.machine.MachineAgent` per workstation, one
:class:`~repro.condor.schedd.CustomerAgent` per submitter, and the
network between them.  Benchmarks and integration tests drive scenarios
through it (submit jobs, crash the central manager, sweep advertising
intervals) and read the shared :class:`~repro.sim.PoolMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..matchmaking import Accountant
from ..matchmaking.match import DEFAULT_POLICY, MatchPolicy
from ..sim import Network, PoolMetrics, RngStream, Simulator, Trace, UtilizationTracker
from ..sim.chaos import ChaosController, ChaosPlan, chaos_profile, plan_from_env
from .collector import Collector
from .jobs import Job
from .machine import MachineAgent, MachineSpec, OwnerModel
from .negotiator import Negotiator
from .schedd import CustomerAgent


@dataclass
class PoolConfig:
    """Timing and fault-model knobs for a pool simulation."""

    seed: int = 1
    advertise_interval: float = 300.0
    negotiation_interval: float = 300.0
    ad_lifetime: Optional[float] = None  # default: 3 × advertise interval
    claim_timeout: float = 30.0
    network_latency: float = 0.050
    network_jitter: float = 0.010
    network_loss: float = 0.0
    allow_preemption: bool = True
    advertise_on_state_change: bool = True
    use_index: bool = False
    with_session_key: bool = False
    priority_half_life: float = 3_600.0
    trace_enabled: bool = True
    #: Fault injection: a :class:`~repro.sim.chaos.ChaosPlan`, a profile
    #: name (``"lossy"``, ``"partition"``, ``"cm-crash"``), ``None`` to
    #: consult the ``REPRO_CHAOS`` environment hook, or ``False`` to run
    #: clean even when the env var is set.
    chaos: object = None
    chaos_horizon: float = 3_600.0


class CondorPool:
    """A complete simulated pool; the top-level experiment harness."""

    def __init__(
        self,
        machine_specs: Sequence[MachineSpec],
        config: Optional[PoolConfig] = None,
        owner_models: Optional[Dict[str, OwnerModel]] = None,
        policy: MatchPolicy = DEFAULT_POLICY,
        sim: Optional[Simulator] = None,
        net: Optional[Network] = None,
        rng: Optional[RngStream] = None,
        trace: Optional[Trace] = None,
        cm_name: str = "cm",
        flock_collectors: Sequence[str] = (),
    ):
        self.config = config or PoolConfig()
        cfg = self.config
        # sim/net/rng/trace may be shared with other pools (flocking).
        self.sim = sim if sim is not None else Simulator()
        self.rng = rng if rng is not None else RngStream(cfg.seed)
        self.trace = trace if trace is not None else Trace(enabled=cfg.trace_enabled)
        self.metrics = PoolMetrics()
        self.net = net if net is not None else Network(
            self.sim,
            rng=self.rng,
            latency=cfg.network_latency,
            jitter=cfg.network_jitter,
            loss=cfg.network_loss,
        )
        self.cm_name = cm_name
        self.flock_collectors = list(flock_collectors)
        self.accountant = Accountant(half_life=cfg.priority_half_life, now=self.sim.now)
        self.utilization = UtilizationTracker(
            capacity=len(machine_specs), _last_time=self.sim.now
        )

        self.collector = Collector(
            self.sim, self.net, trace=self.trace, address=f"collector@{cm_name}"
        )
        self.negotiator = Negotiator(
            self.sim,
            self.net,
            self.collector,
            trace=self.trace,
            address=f"negotiator@{cm_name}",
            cycle_interval=cfg.negotiation_interval,
            accountant=self.accountant,
            policy=policy,
            allow_preemption=cfg.allow_preemption,
            use_index=cfg.use_index,
            with_session_key=cfg.with_session_key,
            rng=self.rng.fork("negotiator"),
        )

        owner_models = owner_models or {}
        self.machines: Dict[str, MachineAgent] = {}
        for spec in machine_specs:
            agent = MachineAgent(
                self.sim,
                self.net,
                spec,
                collector_address=self.collector.address,
                trace=self.trace,
                rng=self.rng.fork(f"owner/{spec.name}"),
                owner_model=owner_models.get(spec.name),
                advertise_interval=cfg.advertise_interval,
                ad_lifetime=cfg.ad_lifetime,
                policy=policy,
                advertise_on_state_change=cfg.advertise_on_state_change,
                on_claim_started=self._claim_started,
                on_claim_ended=self._claim_ended,
            )
            self.machines[spec.name] = agent

        self.schedds: Dict[str, CustomerAgent] = {}
        self._started = False
        self._pending_submissions = 0
        self.chaos: Optional[ChaosController] = None
        self._arm_chaos(cfg)

    def _arm_chaos(self, cfg: PoolConfig) -> None:
        """Resolve ``cfg.chaos`` to a plan and attach it to the network."""
        spec = cfg.chaos
        if spec is False:
            return
        plan: Optional[ChaosPlan]
        if isinstance(spec, ChaosPlan):
            plan = spec
        elif isinstance(spec, str):
            plan = chaos_profile(spec, horizon=cfg.chaos_horizon)
        elif spec is None:
            plan = plan_from_env(horizon=cfg.chaos_horizon)
        else:
            raise TypeError(f"unsupported chaos spec: {spec!r}")
        if plan is None:
            return
        hooks = {
            "cm": (
                lambda: (self.collector.crash(), self.negotiator.crash()),
                lambda: (self.collector.recover(), self.negotiator.recover()),
            )
        }
        for agent in self.machines.values():
            hooks[agent.address] = (agent.crash, agent.restart)
        self.chaos = ChaosController(plan, rng=self.rng)
        self.chaos.arm(self.sim, self.net, crash_hooks=hooks)

    # -- accounting hooks ---------------------------------------------------

    def _claim_started(self, owner: str, machine: str) -> None:
        self.accountant.resource_claimed(owner, now=self.sim.now)
        self.utilization.claim(self.sim.now)

    def _claim_ended(self, owner: str, machine: str) -> None:
        self.accountant.resource_released(owner, now=self.sim.now)
        self.utilization.release(self.sim.now)

    # -- population -----------------------------------------------------------

    def schedd_for(self, owner: str) -> CustomerAgent:
        """The (lazily created) customer agent for *owner*."""
        agent = self.schedds.get(owner)
        if agent is None:
            agent = CustomerAgent(
                self.sim,
                self.net,
                owner,
                collector_address=self.collector.address,
                trace=self.trace,
                metrics=self.metrics,
                advertise_interval=self.config.advertise_interval,
                ad_lifetime=self.config.ad_lifetime,
                claim_timeout=self.config.claim_timeout,
                flock_collectors=self.flock_collectors,
                rng=self.rng.fork(f"ca/{owner}"),
            )
            self.schedds[owner] = agent
            if self._started:
                agent.start()
        return agent

    def submit(self, job: Job, at: Optional[float] = None) -> None:
        """Submit *job* now, or schedule its arrival for time *at*."""
        schedd = self.schedd_for(job.owner)
        if at is None:
            schedd.submit(job)
        else:
            self._pending_submissions += 1
            self.sim.schedule_at(at, self._arrive, (schedd, job))

    def _arrive(self, submission) -> None:
        schedd, job = submission
        self._pending_submissions -= 1
        schedd.submit(job)

    def submit_all(self, jobs: Sequence[Job], arrival_times: Optional[Sequence[float]] = None) -> None:
        if arrival_times is None:
            for job in jobs:
                self.submit(job)
            return
        if len(arrival_times) != len(jobs):
            raise ValueError("one arrival time per job required")
        for job, at in zip(jobs, arrival_times):
            self.submit(job, at=at)

    # -- execution ----------------------------------------------------------

    def start(self) -> None:
        """Arm every agent's timers (idempotent)."""
        if self._started:
            return
        self._started = True
        for machine in self.machines.values():
            machine.start()
        for schedd in self.schedds.values():
            schedd.start()

    def run_until(self, time: float) -> None:
        self.start()
        self.sim.run_until(time)

    def run_until_quiescent(
        self, check_interval: float = 300.0, max_time: float = 1e7
    ) -> float:
        """Run until every submitted job completed (or *max_time*).

        Returns the simulated completion time.
        """
        self.start()
        while self.sim.now < max_time:
            self.sim.run_until(self.sim.now + check_interval)
            if self._pending_submissions == 0 and all(
                s.unfinished() == 0 for s in self.schedds.values()
            ):
                return self.sim.now
        return self.sim.now

    # -- failure injection -----------------------------------------------------

    def crash_central_manager(self, at: float, duration: float) -> None:
        """Crash collector+negotiator at *at*, recover after *duration*.

        The collector loses its entire ad store (soft state); recovery is
        re-registration — the agents' periodic advertisements rebuild the
        rest without any recovery protocol (the E1 claim).
        """
        self.sim.schedule_at(at, self._cm_crash)
        self.sim.schedule_at(at + duration, self._cm_recover)

    def _cm_crash(self) -> None:
        self.collector.crash()
        self.negotiator.crash()

    def _cm_recover(self) -> None:
        self.collector.recover()
        self.negotiator.recover()

    def crash_schedd(self, owner: str, at: float, duration: Optional[float] = None) -> None:
        """Crash *owner*'s customer agent at *at*; revive after *duration*
        (None = never).  While down, its keep-alives stop, so machines
        running its jobs reclaim themselves when the claim lease lapses.
        """
        schedd = self.schedd_for(owner)
        self.sim.schedule_at(at, self.net.set_down, schedd.address)
        if duration is not None:
            self.sim.schedule_at(at + duration, self.net.revive, schedd.address)

    # -- reporting ----------------------------------------------------------

    def jobs(self) -> List[Job]:
        out: List[Job] = []
        for schedd in self.schedds.values():
            out.extend(schedd.jobs.values())
        return out

    def completed_jobs(self) -> List[Job]:
        return [job for job in self.jobs() if job.done]

    def preemption_count(self) -> int:
        """Total Rank preemptions across the pool (feeds metrics at report
        time; machines count them as they happen)."""
        count = sum(m.evictions_preempted for m in self.machines.values())
        self.metrics.preemptions = count
        return count

    def machine_share_by_owner(self) -> Dict[str, float]:
        """Fraction of total delivered CPU-work per submitter (for E4)."""
        totals: Dict[str, float] = {}
        for job in self.jobs():
            done = job.completed_work if not job.done else job.total_work
            totals[job.owner] = totals.get(job.owner, 0.0) + done
        grand = sum(totals.values())
        if grand == 0:
            return {owner: 0.0 for owner in totals}
        return {owner: value / grand for owner, value in totals.items()}
