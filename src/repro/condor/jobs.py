"""Jobs and their classads — part of S15/S17 in DESIGN.md.

A job is work measured in CPU-seconds at a 100-Mips reference machine
(so a 200-Mips machine finishes it in half the wall time).  Its request
classad follows Figure 2's shape: ``Type``, ``Owner``, ``QDate``,
``Memory``, a ``Constraint`` over machine attributes, and a ``Rank``
preferring faster machines.

``WantCheckpoint`` drives experiment E5: evicted checkpointing jobs keep
the work they completed (Condor's transparent checkpointing); others
restart from scratch and the lost work is badput.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..classads import ClassAd, parse
from .states import JobState

_job_ids = itertools.count(1)

#: Parsed Constraint/Rank expressions shared across every request ad
#: built from the same source text — jobs overwhelmingly use the two
#: defaults, and re-advertisement rebuilds the ad every period.  Shared
#: Expr objects also let the refresh fast path's change detector answer
#: by identity.  Bounded defensively; expressions are immutable.
_policy_memo: dict = {}


def _parsed_policy(source: str):
    expr = _policy_memo.get(source)
    if expr is None:
        if len(_policy_memo) > 4096:
            _policy_memo.clear()
        expr = _policy_memo[source] = parse(source)
    return expr

#: Reference speed against which job work is expressed.
REFERENCE_MIPS = 100.0

DEFAULT_JOB_CONSTRAINT = (
    'other.Type == "Machine" && Arch == self.ReqArch && OpSys == self.ReqOpSys '
    "&& other.Memory >= self.Memory"
)
DEFAULT_JOB_RANK = "other.KFlops / 1E3 + other.Memory / 32"


@dataclass
class Job:
    """One submitted job and its full lifecycle bookkeeping."""

    owner: str
    total_work: float  # CPU-seconds at REFERENCE_MIPS
    memory: int = 31
    req_arch: str = "INTEL"
    req_opsys: str = "SOLARIS251"
    want_checkpoint: bool = True
    #: User-assigned queue priority (Condor's JobPrio): higher runs
    #: first *within this submitter's own queue*; it never trumps
    #: another submitter's fair share.
    priority: int = 0
    cmd: str = "run_sim"
    constraint: str = DEFAULT_JOB_CONSTRAINT
    rank: str = DEFAULT_JOB_RANK
    job_id: int = field(default_factory=lambda: next(_job_ids))

    # lifecycle (owned by the customer agent)
    state: JobState = JobState.IDLE
    submit_time: float = 0.0
    completion_time: Optional[float] = None
    first_start_time: Optional[float] = None
    completed_work: float = 0.0  # checkpointed progress
    restarts: int = 0
    evictions: int = 0
    matches: int = 0
    claim_rejections: int = 0
    running_on: Optional[str] = None
    running_match_id: Optional[int] = None

    @property
    def remaining_work(self) -> float:
        return max(0.0, self.total_work - self.completed_work)

    @property
    def done(self) -> bool:
        return self.state is JobState.COMPLETED

    def wait_time(self) -> Optional[float]:
        """Queue wait before first execution, if it ever started."""
        if self.first_start_time is None:
            return None
        return self.first_start_time - self.submit_time

    def turnaround(self) -> Optional[float]:
        if self.completion_time is None:
            return None
        return self.completion_time - self.submit_time

    def to_classad(self, contact_address: str, now: float) -> ClassAd:
        """The request classad advertised to the matchmaker."""
        ad = ClassAd(
            {
                "Type": "Job",
                "JobId": self.job_id,
                "Owner": self.owner,
                "Cmd": self.cmd,
                "QDate": int(self.submit_time),
                "SubmittedAt": self.submit_time,
                "Memory": self.memory,
                "ReqArch": self.req_arch,
                "ReqOpSys": self.req_opsys,
                "WantCheckpoint": 1 if self.want_checkpoint else 0,
                "JobPrio": self.priority,
                "RemainingWork": self.remaining_work,
                "ContactAddress": contact_address,
                "AdvertisedAt": now,
            }
        )
        ad["Constraint"] = _parsed_policy(self.constraint)
        ad["Rank"] = _parsed_policy(self.rank)
        return ad


def execution_time(job: Job, mips: float) -> float:
    """Wall-clock seconds for *job*'s remaining work on a *mips* machine."""
    if mips <= 0:
        raise ValueError("machine speed must be positive")
    return job.remaining_work * REFERENCE_MIPS / mips
