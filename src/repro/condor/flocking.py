"""Flocking: load sharing across pools — the paper's reference [3].

"A Worldwide Flock of Condors: Load Sharing among Workstation Clusters"
(Epema, Livny, van Dantzig, Evers, Pruyne) is cited in Section 1's
framing of Condor as managing "very large heterogeneous collections of
distributively owned resources".  Flocking is the matchmaking framework
at inter-pool scale, and it needs *no new mechanism*: a customer agent
simply advertises its starving jobs to a remote pool's collector too.
The remote negotiator matches them like any local request, the claim
handshake runs directly CA↔RA across pool boundaries, and the remote
machines' own policies keep applying — exactly the evolvability story of
Section 3.2 (the matchmaker "does not depend on the kinds of services
and resources that are being matched").

:class:`Flock` wires several :class:`~repro.condor.pool.CondorPool`
instances onto one simulator/network; each pool keeps its own central
manager, accountant, and metrics.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..sim import Network, RngStream, Simulator, Trace
from .jobs import Job
from .machine import MachineSpec, OwnerModel
from .pool import CondorPool, PoolConfig


class Flock:
    """Several autonomous pools sharing one simulated internet."""

    def __init__(
        self,
        pool_specs: Dict[str, Sequence[MachineSpec]],
        config: Optional[PoolConfig] = None,
        owner_models: Optional[Dict[str, Dict[str, OwnerModel]]] = None,
        flock_threshold: float = 600.0,
    ):
        if not pool_specs:
            raise ValueError("a flock needs at least one pool")
        self.config = config or PoolConfig()
        self.sim = Simulator()
        self.rng = RngStream(self.config.seed)
        self.trace = Trace(enabled=self.config.trace_enabled)
        self.net = Network(
            self.sim,
            rng=self.rng,
            latency=self.config.network_latency,
            jitter=self.config.network_jitter,
            loss=self.config.network_loss,
        )
        owner_models = owner_models or {}
        names = list(pool_specs)
        self.pools: Dict[str, CondorPool] = {}
        for name in names:
            remote_collectors = [
                f"collector@{other}" for other in names if other != name
            ]
            pool = CondorPool(
                pool_specs[name],
                config=self.config,
                owner_models=owner_models.get(name),
                sim=self.sim,
                net=self.net,
                rng=self.rng.fork(f"pool/{name}"),
                trace=self.trace,
                cm_name=name,
                flock_collectors=remote_collectors,
            )
            self.pools[name] = pool
            for schedd in pool.schedds.values():  # pragma: no cover - none yet
                schedd.flock_threshold = flock_threshold
        self.flock_threshold = flock_threshold

    def submit(self, pool_name: str, job: Job, at: Optional[float] = None) -> None:
        """Submit *job* through its home pool's customer agent."""
        pool = self.pools[pool_name]
        schedd = pool.schedd_for(job.owner)
        schedd.flock_threshold = self.flock_threshold
        pool.submit(job, at=at)

    def start(self) -> None:
        for pool in self.pools.values():
            pool.start()

    def run_until(self, time: float) -> None:
        self.start()
        self.sim.run_until(time)

    def run_until_quiescent(
        self, check_interval: float = 300.0, max_time: float = 1e7
    ) -> float:
        self.start()
        while self.sim.now < max_time:
            self.sim.run_until(self.sim.now + check_interval)
            if all(
                pool._pending_submissions == 0
                and all(s.unfinished() == 0 for s in pool.schedds.values())
                for pool in self.pools.values()
            ):
                return self.sim.now
        return self.sim.now

    def jobs(self) -> List[Job]:
        out: List[Job] = []
        for pool in self.pools.values():
            out.extend(pool.jobs())
        return out

    def completed(self) -> int:
        return sum(1 for job in self.jobs() if job.done)
