#!/usr/bin/env python3
"""Quickstart: the matchmaking framework in ~60 lines.

Walks the full Figure 3 loop from the paper in-process:

  1. a provider and a requestor describe themselves in classads;
  2. the matchmaker identifies a compatible, best-ranked pair;
  3. both parties are notified and handed each other's ads (plus the
     provider's authorization ticket);
  4. the requestor claims the resource directly from the provider, which
     re-verifies everything against current state.

Run:  python examples/quickstart.py
"""

from repro.classads import ClassAd
from repro.matchmaking import Matchmaker
from repro.protocols import (
    TicketAuthority,
    build_notifications,
    embed_ticket,
    verify_claim,
)

# -- step 0: describe the entities ------------------------------------------

machine = ClassAd.parse("""[
    Type           = "Machine";
    Name           = "leonardo.cs.wisc.edu";
    Arch           = "INTEL";
    OpSys          = "SOLARIS251";
    Memory         = 64;            // megabytes
    KFlops         = 21893;
    State          = "Unclaimed";
    ContactAddress = "startd@leonardo";
    Untrusted      = { "rival", "riffraff" };
    Constraint     = other.Type == "Job" && !member(other.Owner, Untrusted);
    Rank           = other.Owner == "raman" ? 10 : 0
]""")

job = ClassAd.parse("""[
    Type           = "Job";
    Owner          = "raman";
    Cmd            = "run_sim";
    Memory         = 31;
    ContactAddress = "schedd@beak";
    Constraint     = other.Type == "Machine" && other.Arch == "INTEL"
                     && other.Memory >= self.Memory;
    Rank           = other.KFlops / 1E3
]""")

# The provider mints an authorization ticket and embeds it in its ad.
authority = TicketAuthority("leonardo", secret=b"owner-secret")
embed_ticket(machine, authority.mint())

# -- step 1: advertise --------------------------------------------------------

matchmaker = Matchmaker()
matchmaker.advertise("machine.leonardo", machine)
print("advertised 1 machine ad; matchmaker holds", len(matchmaker), "ad(s)")

# -- step 2: match ------------------------------------------------------------

match = matchmaker.match(job)
assert match is not None, "the job should match leonardo"
print(
    f"matched: job of {job.evaluate('Owner')!r} <-> "
    f"{match.provider.evaluate('Name')!r} "
    f"(job ranks it {match.customer_rank}, machine ranks the job {match.provider_rank})"
)

# -- step 3: notify both parties ----------------------------------------------

to_customer, to_provider = build_notifications("matchmaker@cm", job, match.provider)
print(
    f"notification to customer carries peer address {to_customer.peer_address!r} "
    f"and a ticket from {to_customer.ticket.issuer!r}"
)

# -- step 4: claim, end-to-end --------------------------------------------------

decision = verify_claim(
    request_ad=job,                      # the CA sends its *current* ad
    current_resource_ad=machine,         # the RA checks its *current* state
    presented_ticket=to_customer.ticket,
    authority=authority,
)
print("claim verdict:", decision.verdict.value)
assert decision.accepted

# The match was only a hint: had the machine's state changed, the claim
# would have been refused.  Demonstrate with an untrusted user:
intruder = job.copy()
intruder["Owner"] = "riffraff"
refused = verify_claim(intruder, machine, to_customer.ticket, authority)
print("riffraff's claim verdict:", refused.verdict.value)
assert not refused.accepted

print("\nquickstart OK: advertise -> match -> notify -> claim all worked")
