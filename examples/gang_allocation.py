#!/usr/bin/env python3
"""Co-allocation with gangmatching — the Section 5 extension (experiment E9).

A simulation job needs TWO resources at once: a compute machine and a
floating license for the application, and the license must be valid on
the host that runs the job.  Nested classads + multi-port matching
express this naturally ("a natural language for expressing resource
aggregates or co-allocation requests", Section 3.1).

Run:  python examples/gang_allocation.py
"""

from repro.classads import ClassAd
from repro.matchmaking import GangRequest, GangStats, Port, gang_match, gang_match_all


def machine(name, arch, memory, kflops):
    ad = ClassAd(
        {
            "Type": "Machine",
            "Name": name,
            "Arch": arch,
            "Memory": memory,
            "KFlops": kflops,
        }
    )
    ad.set_expr("Constraint", 'other.Type == "Job"')
    return ad


def license_ad(app, host, allowed):
    ad = ClassAd({"Type": "License", "App": app, "Host": host, "Allowed": allowed})
    # The license server has its own policy: only licensed users.
    ad.set_expr("Constraint", "member(other.Owner, Allowed)")
    return ad


def main():
    providers = [
        machine("grinder", "INTEL", 64, 21_000),
        machine("tank", "INTEL", 256, 48_000),
        machine("slug", "SPARC", 128, 9_000),
        license_ad("fluent", host="grinder", allowed=["raman", "miron"]),
        license_ad("fluent", host="slug", allowed=["raman"]),
        license_ad("matlab", host="tank", allowed=["jbasney"]),
    ]
    print(f"pool: {len(providers)} ads (3 machines, 3 licenses)\n")

    request = GangRequest(
        base=ClassAd({"Type": "Job", "Owner": "raman", "Memory": 32}),
        ports=[
            Port(
                "cpu",
                'other.Type == "Machine" && other.Memory >= self.Memory',
                rank="other.KFlops / 1E3",
            ),
            Port(
                "license",
                'other.Type == "License" && other.App == "fluent" '
                "&& other.Host == cpu.Name",
            ),
        ],
    )

    stats = GangStats()
    match = gang_match(request, providers, stats=stats)
    assert match is not None
    print("raman's fluent job co-allocated:")
    print(f"  cpu     -> {match.provider('cpu').evaluate('Name')}")
    print(
        f"  license -> fluent on host {match.provider('license').evaluate('Host')}"
    )
    print(
        f"  search: {stats.nodes_explored} nodes, "
        f"{stats.candidates_evaluated} candidate evaluations, "
        f"{stats.backtracks} backtracks"
    )
    # Note the backtracking: `tank` is the best-ranked machine, but no
    # fluent license is valid there, so the search fell back to grinder.
    assert match.provider("cpu").evaluate("Name") == "grinder"
    print()

    # An unlicensed user cannot assemble the gang at all (the license
    # server's bilateral constraint refuses them).
    outsider = GangRequest(
        base=ClassAd({"Type": "Job", "Owner": "outsider", "Memory": 32}),
        ports=request.ports,
    )
    print("outsider's fluent job:", "matched" if gang_match(outsider, providers) else "NO MATCH (not on any license's Allowed list)")
    print()

    # Several gangs in one negotiation pass: providers are consumed.
    batch = [
        GangRequest(
            base=ClassAd({"Type": "Job", "Owner": "raman", "Memory": 32}),
            ports=request.ports,
        )
        for _ in range(3)
    ]
    results = gang_match_all(batch, providers)
    served = sum(1 for r in results if r is not None)
    print(f"batch of 3 identical gangs: {served} served "
          f"(only 2 fluent licenses exist, and each host has one)")


if __name__ == "__main__":
    main()
