#!/usr/bin/env python3
"""Why won't my job match? — the Section 5 diagnostic tool (experiment E8).

Builds a realistic pool, then analyzes three problem jobs:

  1. a job demanding an architecture the pool does not have,
  2. a job whose memory requirement exceeds every machine,
  3. a job that *is* satisfiable but is rejected by owner policies.

Also prints the pool "hidden characteristics" census.

Run:  python examples/diagnostics_tool.py
"""

from repro.classads import ClassAd
from repro.condor import PoolProfile, generate_pool
from repro.matchmaking import diagnose, is_unsatisfiable, pool_attribute_census
from repro.sim import RngStream


def machine_ads(specs):
    ads = []
    for spec in specs:
        ad = ClassAd(
            {
                "Type": "Machine",
                "Name": spec.name,
                "Arch": spec.arch,
                "OpSys": spec.opsys,
                "Memory": spec.memory,
                "Disk": spec.disk,
                "Mips": spec.mips,
                "KFlops": spec.kflops,
            }
        )
        ad.set_expr("Constraint", spec.constraint)
        research_group = ["raman", "miron"]
        ad["ResearchGroup"] = research_group
        ads.append(ad)
    return ads


def job(owner, constraint, **attrs):
    ad = ClassAd({"Type": "Job", "Owner": owner, "JobId": attrs.pop("job_id", 1), **attrs})
    ad.set_expr("Constraint", constraint)
    return ad


def main():
    rng = RngStream(7)
    specs = generate_pool(rng, 50, PoolProfile())
    pool = machine_ads(specs)

    # Make a third of the pool research-group-only (bilateral policy).
    for ad in pool[::3]:
        ad.set_expr("Constraint", "member(other.Owner, ResearchGroup)")

    print(f"pool: {len(pool)} machines\n")

    print("pool census (the 'hidden characteristics' of Section 5):")
    census = pool_attribute_census(pool, ["Arch", "OpSys", "Memory"])
    for attr, counts in census.items():
        rendered = ", ".join(f"{v}×{c}" for v, c in counts.most_common())
        print(f"  {attr:<8}: {rendered}")
    print()

    cases = [
        (
            "wrong architecture",
            job(
                "raman",
                'other.Type == "Machine" && other.Arch == "VAX" && other.Memory >= 32',
                job_id=101,
            ),
        ),
        (
            "impossible memory",
            job(
                "raman",
                'other.Type == "Machine" && other.Memory >= 4096',
                job_id=102,
            ),
        ),
        (
            "policy rejections (stranger)",
            job(
                "outsider",
                'other.Type == "Machine" && other.Arch == "INTEL"',
                job_id=103,
            ),
        ),
    ]

    for title, request in cases:
        print("=" * 72)
        print(f"case: {title}")
        print("=" * 72)
        report = diagnose(request, pool)
        print(report.render())
        print(
            "verdict:",
            "UNSATISFIABLE by this pool"
            if is_unsatisfiable(request, pool)
            else "satisfiable",
        )
        print()


if __name__ == "__main__":
    main()
