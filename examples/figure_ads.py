#!/usr/bin/env python3
"""The paper's Figures 1 and 2, reproduced and exercised (experiments F1/F2).

Prints the two classads, then sweeps the Figure 1 owner policy over the
scenarios Section 4 narrates: research group / friends / strangers /
untrusted users, across machine states and times of day.

Run:  python examples/figure_ads.py
"""

from repro.classads import is_true, rank_value, unparse_classad
from repro.paper import figure1_machine, figure1_machine_at, figure2_job, job_from

NOON, NIGHT = 12 * 3600, 22 * 3600
IDLE, TYPING = 1800, 10


def verdict(machine, owner):
    job = job_from(owner)
    ok = is_true(machine.evaluate("Constraint", other=job))
    rank = rank_value(machine.evaluate("Rank", other=job))
    return ("YES" if ok else "no "), rank


def main():
    machine = figure1_machine()
    job = figure2_job()

    print("=" * 72)
    print("Figure 1 — a classad describing a workstation")
    print("=" * 72)
    print(unparse_classad(machine))
    print()
    print("=" * 72)
    print("Figure 2 — a classad describing a submitted job")
    print("=" * 72)
    print(unparse_classad(job))
    print()

    print("Bilateral match of the two figures:")
    print("  machine accepts job :", is_true(machine.evaluate("Constraint", other=job)))
    print("  job accepts machine :", is_true(job.evaluate("Constraint", other=machine)))
    print("  machine's Rank of job   :", machine.evaluate("Rank", other=job))
    print("  job's Rank of machine   :", round(rank_value(job.evaluate("Rank", other=machine)), 3))
    print()

    print("Figure 1 policy matrix (Section 4's narration):")
    print(f"  {'requester':<12} {'machine state':<34} {'match':<6} rank")
    scenarios = [
        ("raman", "noon, owner typing, loaded", figure1_machine_at(NOON, TYPING, 2.0)),
        ("tannenba", "noon, idle 30 min, load 0.05", figure1_machine_at(NOON, IDLE, 0.05)),
        ("tannenba", "noon, owner typing", figure1_machine_at(NOON, TYPING, 0.05)),
        ("stranger", "noon, idle 30 min", figure1_machine_at(NOON, IDLE, 0.05)),
        ("stranger", "10 pm, owner typing", figure1_machine_at(NIGHT, TYPING, 2.0)),
        ("rival", "10 pm, idle 30 min", figure1_machine_at(NIGHT, IDLE, 0.0)),
    ]
    for owner, description, m in scenarios:
        ok, rank = verdict(m, owner)
        print(f"  {owner:<12} {description:<34} {ok:<6} {rank:g}")

    print()
    print("Tiers (Section 4): research > friends > others — ranks:",
          [rank_value(machine.evaluate("Rank", other=job_from(o)))
           for o in ("miron", "wright", "stranger")])


if __name__ == "__main__":
    main()
