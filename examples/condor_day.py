#!/usr/bin/env python3
"""A day in the life of a Condor pool (Section 4, end to end).

Simulates 24 hours of a 20-workstation pool: most machines have
office-hours owners, two are dedicated; three users submit batches of
checkpointing simulation jobs.  Prints pool metrics, the fair-share
ledger, and an excerpt of the protocol trace.

Run:  python examples/condor_day.py
"""

from repro.condor import (
    CondorPool,
    JobProfile,
    OfficeHoursOwner,
    PoolConfig,
    PoolProfile,
    generate_jobs,
    generate_pool,
    poisson_arrival_times,
)
from repro.sim import RngStream

DAY = 86_400.0


def main():
    rng = RngStream(2026)

    # -- the pool: 18 owned workstations + 2 dedicated servers -------------
    specs = generate_pool(rng.fork("machines"), 18, PoolProfile())
    specs += generate_pool(
        rng.fork("servers"),
        2,
        PoolProfile(mips_range=(250.0, 400.0)),
        name_prefix="server",
    )
    owner_models = {
        spec.name: OfficeHoursOwner(start=9 * 3600, end=17 * 3600)
        for spec in specs
        if spec.name.startswith("vm")
    }

    pool = CondorPool(
        specs,
        PoolConfig(seed=2026, advertise_interval=300.0, negotiation_interval=300.0),
        owner_models=owner_models,
    )

    # -- the workload: three users, Poisson arrivals through the morning ---
    for user, count in (("raman", 60), ("miron", 40), ("jbasney", 20)):
        jobs = generate_jobs(
            rng.fork(f"jobs/{user}"), user, count, JobProfile(mean_work=4_800.0)
        )
        # Jobs arrive through the workday (from 8:30am), so the pool
        # must work around the owners — opportunistic scheduling on show.
        arrivals = poisson_arrival_times(
            rng.fork(f"arrivals/{user}"), count, rate=count / (6 * 3600.0),
            start=8.5 * 3600.0,
        )
        pool.submit_all(jobs, arrivals)

    print(f"simulating {len(specs)} machines, 120 jobs, 24 hours ...")
    pool.run_until(DAY)

    # -- results ----------------------------------------------------------
    print()
    print("pool metrics:")
    print("  " + pool.metrics.summary().replace("\n", "\n  "))
    print(f"  utilization        : {pool.utilization.utilization(DAY):.1%}")
    print(f"  rank preemptions   : {pool.preemption_count()}")
    print()

    print("fair-share ledger (condor_userprio view):")
    print(f"  {'user':<10} {'eff. priority':>14} {'usage (cpu·s)':>14} {'in use':>7}")
    for name, priority, usage, in_use in pool.accountant.usage_report():
        print(f"  {name:<10} {priority:>14.2f} {usage:>14.0f} {in_use:>7}")
    print()

    print("protocol trace excerpt (first match of the day):")
    first_match = pool.trace.first("match")
    window = pool.trace.between(first_match.time - 0.5, first_match.time + 120.0)
    for event in window[:12]:
        print("  " + str(event))

    print()
    unfinished = [j for j in pool.jobs() if not j.done]
    if unfinished:
        from repro.matchmaking import diagnose

        print(f"{len(unfinished)} job(s) did not finish; diagnosing the first:")
        job_ad = unfinished[0].to_classad("schedd@x", pool.sim.now)
        report = diagnose(job_ad, pool.collector.machine_ads())
        print("  " + report.render().replace("\n", "\n  "))
        print()

    completed = pool.completed_jobs()
    if completed:
        slowest = max(completed, key=lambda j: j.turnaround())
        print(
            f"slowest job: #{slowest.job_id} of {slowest.owner}: "
            f"{slowest.turnaround():.0f}s turnaround, "
            f"{slowest.evictions} eviction(s), {slowest.matches} match(es)"
        )


if __name__ == "__main__":
    main()
