#!/usr/bin/env python3
"""Flocking: two autonomous pools share load with no new protocol.

A small "home" pool is saturated; its customer agent starts advertising
starving jobs to a bigger "remote" pool's collector as well.  The remote
negotiator matches them like any local request, the claim handshake runs
directly across the pool boundary, and remote owner policies keep
applying — the matchmaking framework at inter-pool scale (the paper's
reference [3], "A Worldwide Flock of Condors").

Run:  python examples/flock_overflow.py
"""

from repro.condor import Job, MachineSpec, PoolConfig
from repro.condor.flocking import Flock


def main():
    pools = {
        "home": [MachineSpec(name=f"h{i}") for i in range(2)],
        "remote": [MachineSpec(name=f"r{i}") for i in range(6)],
    }
    # The remote pool's machines only serve raman and miron — flocked
    # jobs are still subject to the remote owners' bilateral policies.
    for spec in pools["remote"]:
        spec.constraint = 'member(other.Owner, { "raman", "miron" })'

    flock = Flock(
        pools,
        PoolConfig(seed=61, advertise_interval=120.0, negotiation_interval=120.0),
        flock_threshold=300.0,
    )
    for _ in range(10):
        flock.submit("home", Job(owner="raman", total_work=2_400.0))
    for _ in range(3):
        flock.submit("home", Job(owner="stranger", total_work=2_400.0))

    makespan = flock.run_until_quiescent(check_interval=120.0, max_time=500_000.0)

    accepted = flock.trace.of_kind("claim-accepted")
    home_runs = sum(1 for e in accepted if e.fields["machine"].startswith("h"))
    remote_runs = sum(1 for e in accepted if e.fields["machine"].startswith("r"))
    flock_ads = flock.trace.count("advertise-job-flock")

    print("flock of 2 pools: 2 home machines, 6 remote (group-only policy)")
    print(f"13 jobs drained in {makespan:.0f}s of simulated time")
    print(f"  claims served at home   : {home_runs}")
    print(f"  claims served remotely  : {remote_runs}")
    print(f"  flocked advertisements  : {flock_ads}")

    by_owner = {}
    for e in accepted:
        machine = e.fields["machine"]
        owner = e.fields["owner"]
        by_owner.setdefault(owner, set()).add("remote" if machine.startswith("r") else "home")
    print(f"  raman ran in pools      : {sorted(by_owner.get('raman', []))}")
    print(f"  stranger ran in pools   : {sorted(by_owner.get('stranger', []))}"
          "   <- remote policy kept the stranger out")

    assert remote_runs > 0
    assert by_owner.get("stranger") == {"home"}
    print("\nflocking OK: overflow shared, autonomy preserved")


if __name__ == "__main__":
    main()
