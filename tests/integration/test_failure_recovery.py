"""Integration: matchmaker statelessness ⇒ trivial crash recovery (E1).

Section 3.2: "The matchmaker does not need to retain any state about the
match, a fact that simplifies recovery in case of failure and makes the
system more scalable."

We crash the central manager (collector loses its entire ad store,
negotiator stops cycling), let it recover, and verify:

* running claims are untouched (claiming is end-to-end);
* the ad store is rebuilt purely by periodic re-advertisement;
* queued jobs eventually run with no recovery protocol of any kind.
"""

import pytest

from repro.condor import CondorPool, Job, MachineSpec, PoolConfig


def build_pool(n_machines=4, seed=11):
    specs = [MachineSpec(name=f"m{i}", mips=100.0) for i in range(n_machines)]
    return CondorPool(
        specs,
        PoolConfig(seed=seed, advertise_interval=60.0, negotiation_interval=60.0),
    )


class TestCentralManagerCrash:
    def test_jobs_complete_despite_mid_run_crash(self):
        pool = build_pool()
        for i in range(8):
            pool.submit(Job(owner="alice", total_work=400.0))
        pool.crash_central_manager(at=90.0, duration=300.0)
        pool.run_until_quiescent(check_interval=60.0, max_time=100_000.0)
        assert pool.metrics.jobs_completed == 8

    def test_running_jobs_survive_the_crash(self):
        # One long job is claimed before the crash and completes *during*
        # the outage: the claim never involved the matchmaker again.
        pool = build_pool(n_machines=1)
        pool.submit(Job(owner="alice", total_work=500.0))
        pool.crash_central_manager(at=120.0, duration=500.0)  # down 120-620
        pool.run_until(700.0)
        assert pool.metrics.jobs_completed == 1
        done = pool.trace.first("job-completed")
        crash = pool.trace.first("collector-crash")
        recover = pool.trace.first("collector-recover")
        assert crash.time < done.time < recover.time

    def test_ad_store_rebuilt_by_readvertisement_alone(self):
        pool = build_pool(n_machines=4)
        pool.start()
        pool.sim.run_until(100.0)
        assert len(pool.collector.store) >= 4
        pool.crash_central_manager(at=100.0, duration=120.0)
        pool.sim.run_until(221.0)  # recovered at 220
        # Within one advertising interval of recovery, all machines are back.
        pool.sim.run_until(300.0)
        assert len(pool.collector.machine_ads()) == 4

    def test_time_to_recover_bounded_by_advertising_interval(self):
        pool = build_pool(n_machines=4)
        pool.submit(Job(owner="alice", total_work=100.0), at=500.0)
        pool.crash_central_manager(at=90.0, duration=200.0)  # down 90–290
        pool.run_until_quiescent(check_interval=60.0, max_time=100_000.0)
        assert pool.metrics.jobs_completed == 1
        # The job submitted at t=500 must have been matched in the first
        # cycle after its ad arrived — recovery left no lingering damage.
        match = pool.trace.first("match")
        assert match.time < 700.0

    def test_no_matches_happen_while_down(self):
        pool = build_pool()
        for _ in range(4):
            pool.submit(Job(owner="alice", total_work=5_000.0))
        pool.crash_central_manager(at=30.0, duration=600.0)
        pool.start()
        pool.sim.run_until(600.0)
        matches = pool.trace.of_kind("match")
        assert all(not (30.0 <= m.time <= 630.0) for m in matches)


class TestMessageLossRobustness:
    def test_pool_completes_work_under_heavy_loss(self):
        """10% message loss: ads, notifications, claims and completions
        all get dropped, yet periodic re-advertisement and claim timeouts
        let every job finish (the soft-state argument)."""
        specs = [MachineSpec(name=f"m{i}") for i in range(4)]
        pool = CondorPool(
            specs,
            PoolConfig(
                seed=5,
                advertise_interval=60.0,
                negotiation_interval=60.0,
                network_loss=0.10,
                claim_timeout=20.0,
            ),
        )
        for _ in range(10):
            pool.submit(Job(owner="alice", total_work=300.0))
        pool.run_until_quiescent(check_interval=60.0, max_time=200_000.0)
        assert pool.metrics.jobs_completed == 10
        assert pool.net.stats.dropped_loss > 0  # the chaos actually happened

    def test_teardown_notices_are_retried_until_acked(self):
        """A lost JobCompleted would strand the job as RUNNING forever;
        the RA therefore retries teardown notices until the CA acks
        (Condor gets this from TCP; our network is datagram-like)."""
        from repro.condor.machine import MachineAgent
        from repro.condor.messages import JobCompleted, NoticeAck
        from repro.protocols import ClaimRequest
        from repro.sim import Network, RngStream, Simulator

        sim = Simulator()
        net = Network(sim, rng=RngStream(1), latency=0.01)
        inbox = []
        net.register("collector@cm", lambda m: None)
        net.register("schedd@alice", inbox.append)
        agent = MachineAgent(
            sim, net, MachineSpec(name="m0"), collector_address="collector@cm",
            rng=RngStream(2),
        )
        agent.start()
        sim.run_until(1.0)
        job = Job(owner="alice", total_work=10.0)
        net.send(
            ClaimRequest(
                sender="schedd@alice",
                recipient=agent.address,
                customer_ad=job.to_classad("schedd@alice", sim.now),
                ticket=agent.authority.current,
                match_id=42,
            )
        )
        # The CA never acks (we registered a dumb inbox): the notice must
        # be resent every retry interval.
        sim.run_until(1.0 + 10.0 + 3 * agent.notice_retry_interval + 1.0)
        completions = [m for m in inbox if isinstance(m, JobCompleted)]
        assert len(completions) >= 3
        # Once acked, retries stop.
        net.send(
            NoticeAck(sender="schedd@alice", recipient=agent.address, match_id=42)
        )
        sim.run_until(sim.now + 0.1)
        count_after_ack = len([m for m in inbox if isinstance(m, JobCompleted)])
        sim.run_until(sim.now + 5 * agent.notice_retry_interval)
        assert (
            len([m for m in inbox if isinstance(m, JobCompleted)]) == count_after_ack
        )
