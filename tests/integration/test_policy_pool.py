"""Integration: a pool of Figure-1-policy workstations, end to end.

This is the situation Section 1 motivates: every machine has its own
sophisticated owner policy (group / friends-when-idle / strangers-at-
night / untrusted-never), and the *same* pool serves all of them
simultaneously — "several dissimilar allocation models coexist[ing] in
the same resource management environment" (bilateral specialization,
Section 3.2).
"""

import pytest

from repro.condor import (
    CondorPool,
    Job,
    MachineSpec,
    PoolConfig,
    generate_policy_pool,
)
from repro.sim import RngStream

pytestmark = pytest.mark.slow

GROUP_A = ["raman", "miron"]
GROUP_B = ["solomon", "jbasney"]


def policy_pool(n=6, seed=77, **config):
    specs = generate_policy_pool(
        RngStream(seed),
        n,
        groups=[GROUP_A, GROUP_B],
        friends=["tannenba"],
        untrusted=["riffraff"],
    )
    # Uniform platform so only the *policies* differentiate machines.
    for spec in specs:
        spec.arch, spec.opsys, spec.memory = "INTEL", "SOLARIS251", 128
        spec.mips = 100.0
    defaults = dict(seed=seed, advertise_interval=120.0, negotiation_interval=120.0)
    defaults.update(config)
    return CondorPool(specs, PoolConfig(**defaults))


def at_daytime(hours):
    """Simulated-clock offset landing at the given hour of day 1."""
    return hours * 3600.0



class TestGroupPolicies:
    def test_group_member_runs_during_the_day(self):
        pool = policy_pool()
        job = Job(owner="raman", total_work=600.0)
        pool.submit(job, at=at_daytime(11))  # 11:00, machines idle
        pool.run_until(at_daytime(13))
        assert job.done
        # And it ran on a GROUP_A machine (even indices).
        assert job.job_id is not None

    def test_stranger_waits_for_night(self):
        pool = policy_pool()
        job = Job(owner="outsider", total_work=600.0)
        pool.submit(job, at=at_daytime(11))
        pool.run_until(at_daytime(17))
        assert not job.done  # daytime: every policy rejects a stranger
        pool.run_until(at_daytime(20))
        assert job.done  # after 18:00 the night branch opens

    def test_untrusted_never_runs(self):
        pool = policy_pool()
        job = Job(owner="riffraff", total_work=600.0)
        pool.submit(job, at=at_daytime(11))
        pool.run_until(at_daytime(30))  # through a full night
        assert not job.done
        assert job.first_start_time is None

    def test_group_jobs_land_on_their_groups_machines(self):
        pool = policy_pool(n=6)
        jobs_a = [Job(owner="raman", total_work=900.0) for _ in range(3)]
        jobs_b = [Job(owner="solomon", total_work=900.0) for _ in range(3)]
        for job in jobs_a + jobs_b:
            pool.submit(job, at=at_daytime(10))
        pool.run_until(at_daytime(14))
        group_a_machines = {f"ws{i:04d}" for i in (0, 2, 4)}
        group_b_machines = {f"ws{i:04d}" for i in (1, 3, 5)}
        for job in jobs_a:
            assert job.done
            ran_on = {e.fields["machine"] for e in pool.trace.of_kind("claim-accepted")
                      if e.fields["job"] == job.job_id}
            assert ran_on <= group_a_machines
        for job in jobs_b:
            assert job.done

    def test_friend_runs_only_on_idle_machines(self):
        # All machines idle (no owner models): friends pass the
        # keyboard/load test everywhere.
        pool = policy_pool()
        job = Job(owner="tannenba", total_work=600.0)
        pool.submit(job, at=at_daytime(11))
        pool.run_until(at_daytime(13))
        assert job.done

    def test_machine_rank_prefers_group_over_friend(self):
        # One machine, one friend job running, a group job arrives and
        # preempts (machine Rank 10 beats friend's 1).
        pool = policy_pool(n=1)
        friend = Job(owner="tannenba", total_work=20_000.0, want_checkpoint=True)
        member = Job(owner="raman", total_work=600.0)
        pool.submit(friend, at=at_daytime(10))
        pool.submit(member, at=at_daytime(11))
        pool.run_until(at_daytime(14))
        assert member.done
        assert friend.evictions == 1
        assert pool.preemption_count() == 1
