"""Integration: matchmaking vs. conventional baselines (E3).

Section 2's structural critique, made quantitative on one shared
scenario: a heterogeneous, mostly distributively-owned pool and a mixed
job stream.

* The **queue baseline** fragments the pool: the administrator
  partitioned machines into platform × department queues, and each
  job is stuck with its department's queue.
* The **central baseline** only ever receives the dedicated machines
  (owners won't join a system that cannot express their policy).
* **Matchmaking** sees every machine, constraints are bilateral, and
  opportunism harvests the owned machines' idle time.

Expected shape (EXPERIMENTS.md E3): matchmaking ≥ queues ≥ central in
completed work, with matchmaking's margin growing with the fraction of
distributively-owned machines.
"""

import pytest

from repro.baselines import CentralAllocator, QueueBasedScheduler
from repro.condor import (
    CondorPool,
    Job,
    MachineSpec,
    OfficeHoursOwner,
    PoolConfig,
)

pytestmark = pytest.mark.slow

HORIZON = 86_400.0  # one simulated day


def scenario():
    """(machine specs, owner models, jobs).

    Pool: 2 dedicated machines (one per platform) + 6 distributively
    owned ones (office-hours owners), mixed platform.

    Workload: more work than a day of pool capacity, and *imbalanced*
    across departments (group A submits 3× group B) — the situation in
    which a static partition must strand capacity: B's queues run dry
    while A's backlog cannot touch B's machines.
    """
    owners = {}
    specs = [MachineSpec(name="ded0", arch="INTEL"), MachineSpec(name="ded1", arch="SPARC")]
    for i in range(6):
        arch = "INTEL" if i % 2 == 0 else "SPARC"
        spec = MachineSpec(name=f"own{i}", arch=arch)
        specs.append(spec)
        owners[spec.name] = OfficeHoursOwner(start=9 * 3600, end=17 * 3600, jitter=0.0)

    jobs = []
    for i in range(150):  # group A: platform-mixed
        jobs.append(
            Job(
                owner="groupA",
                total_work=3_600.0,
                req_arch="INTEL" if i % 2 == 0 else "SPARC",
                want_checkpoint=True,
            )
        )
    for i in range(50):  # group B: platform-mixed, a third the volume
        jobs.append(
            Job(
                owner="groupB",
                total_work=3_600.0,
                req_arch="INTEL" if i % 2 == 0 else "SPARC",
                want_checkpoint=True,
            )
        )
    return specs, owners, jobs


def fresh_jobs(jobs):
    return [
        Job(
            owner=j.owner,
            total_work=j.total_work,
            req_arch=j.req_arch,
            req_opsys=j.req_opsys,
            memory=j.memory,
            want_checkpoint=j.want_checkpoint,
        )
        for j in jobs
    ]


def run_matchmaking(specs, owners, jobs):
    pool = CondorPool(
        specs,
        PoolConfig(seed=101, advertise_interval=300.0, negotiation_interval=300.0),
        owner_models=dict(owners),
    )
    for job in jobs:
        pool.submit(job)
    pool.run_until(HORIZON)
    return pool.metrics


def run_queues(specs, owners, jobs):
    """Platform × department queues; each group's jobs locked to its
    department's machines."""
    system = QueueBasedScheduler(seed=101)
    for spec in specs:
        system.add_machine(spec, owner_model=owners.get(spec.name))
    names = [s.name for s in specs]
    # The admin split the pool: department A got the even-indexed
    # machines, department B the odd ones; queues are per platform within
    # each department.
    dept = {name: ("A" if i % 2 == 0 else "B") for i, name in enumerate(names)}
    for d in ("A", "B"):
        for arch in ("INTEL", "SPARC"):
            members = [
                s.name for s in specs if dept[s.name] == d and s.arch == arch
            ]
            system.add_queue(f"q_{d}_{arch}", members)
    for job in jobs:
        d = "A" if job.owner == "groupA" else "B"
        system.submit(job, f"q_{d}_{job.req_arch}")
    system.start()
    system.run_until(HORIZON)
    return system.metrics


def run_central(specs, owners, jobs):
    system = CentralAllocator(seed=101)
    for spec in specs:
        system.add_machine(spec, owner_model=owners.get(spec.name))
    for job in jobs:
        system.submit(job)
    system.start()
    system.run_until(HORIZON)
    return system.metrics


class TestArchitectureComparison:
    @pytest.fixture(scope="class")
    def results(self):
        specs, owners, jobs = scenario()
        return {
            "matchmaking": run_matchmaking(specs, owners, fresh_jobs(jobs)),
            "queues": run_queues(specs, owners, fresh_jobs(jobs)),
            "central": run_central(specs, owners, fresh_jobs(jobs)),
        }

    def test_matchmaking_completes_the_most_work(self, results):
        good = {k: m.goodput for k, m in results.items()}
        assert good["matchmaking"] > good["queues"]
        assert good["matchmaking"] > good["central"]

    def test_central_is_capped_by_dedicated_machines(self, results):
        # 2 dedicated machines × 1 day is the hard ceiling (≈ 2 × 86400
        # reference-seconds at 1.0 speed).
        assert results["central"].goodput <= 2 * HORIZON + 1.0

    def test_matchmaking_harvests_owned_machines(self, results):
        # Matchmaking exceeds the dedicated-only ceiling: it must have
        # used owner-idle time.
        assert results["matchmaking"].goodput > 2 * HORIZON

    def test_queues_beat_central_but_strand_capacity(self, results):
        # The queue system does use the owned machines, so it beats the
        # central model — but fragmentation costs it real throughput
        # against matchmaking under imbalanced demand.
        assert results["queues"].goodput > results["central"].goodput
        assert results["matchmaking"].goodput > 1.05 * results["queues"].goodput

    def test_every_system_respects_platform_constraints(self, results):
        # Sanity: nobody "wins" by running jobs on incompatible machines.
        for name, metrics in results.items():
            assert metrics.jobs_completed <= 200
