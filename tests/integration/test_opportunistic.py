"""Integration: opportunistic scheduling, preemption, checkpointing (E5).

Section 1: "Resources are used as soon as they become available and
applications are migrated when resources need to be preempted."
Section 4: owner return ⇒ eviction; Rank preemption; checkpoint/resume.
"""

import pytest

from repro.condor import (
    CondorPool,
    Job,
    MachineSpec,
    OfficeHoursOwner,
    PoolConfig,
)
from repro.condor.machine import OwnerModel

pytestmark = pytest.mark.slow


class ScriptedOwner(OwnerModel):
    def __init__(self, first_arrival, active_for, idle_for=1e9):
        self.first_arrival = first_arrival
        self.active_for = active_for
        self.idle_for = idle_for

    def first_event(self, rng):
        return False, self.first_arrival

    def active_duration(self, rng):
        return self.active_for

    def idle_duration(self, rng):
        return self.idle_for


class TestOwnerReturnMigration:
    def run_migration_scenario(self, want_checkpoint):
        """A job starts on m0; the owner returns mid-run; the job migrates
        to m1 and finishes."""
        specs = [MachineSpec(name="m0"), MachineSpec(name="m1")]
        pool = CondorPool(
            specs,
            PoolConfig(seed=4, advertise_interval=60.0, negotiation_interval=60.0),
            owner_models={
                "m0": ScriptedOwner(first_arrival=400.0, active_for=1e9),
                # m1's owner arrives at t=30 and leaves at t=500, so the
                # first match must land on m0.
                "m1": ScriptedOwner(first_arrival=30.0, active_for=470.0),
            },
        )
        job = Job(owner="alice", total_work=600.0, want_checkpoint=want_checkpoint)
        pool.submit(job)
        pool.run_until_quiescent(check_interval=60.0, max_time=100_000.0)
        return pool, job

    def test_checkpointing_job_migrates_and_keeps_progress(self):
        pool, job = self.run_migration_scenario(want_checkpoint=True)
        assert job.done
        assert job.evictions == 1
        assert pool.metrics.badput == 0.0
        assert pool.metrics.goodput == pytest.approx(600.0, abs=2.0)
        assert pool.metrics.evictions_checkpointed == 1

    def test_non_checkpointing_job_redoes_work(self):
        pool, job = self.run_migration_scenario(want_checkpoint=False)
        assert job.done
        assert job.evictions == 1
        assert job.restarts == 1
        # Work done before the owner returned (claim ≈ t=60 → evict t=400)
        # is lost: roughly 340 reference-seconds of badput.
        assert pool.metrics.badput == pytest.approx(340.0, abs=10.0)
        # Goodput is the full job, executed after restart.
        assert pool.metrics.goodput == pytest.approx(600.0, abs=2.0)

    def test_checkpointing_improves_turnaround(self):
        _, with_ckpt = self.run_migration_scenario(want_checkpoint=True)
        _, without = self.run_migration_scenario(want_checkpoint=False)
        assert with_ckpt.turnaround() < without.turnaround()


class TestRankPreemptionEndToEnd:
    def test_preferred_customer_displaces_stranger(self):
        """m0 prefers the research group; a stranger's long job is running
        when a research job shows up — the negotiator matches the claimed
        machine (strictly higher machine Rank) and the RA preempts."""
        spec = MachineSpec(
            name="m0",
            rank='member(other.Owner, { "raman", "miron" }) * 10',
        )
        pool = CondorPool(
            [spec],
            PoolConfig(seed=6, advertise_interval=60.0, negotiation_interval=60.0),
        )
        pool.submit(Job(owner="stranger", total_work=5_000.0, want_checkpoint=True))
        pool.submit(Job(owner="raman", total_work=300.0), at=200.0)
        pool.run_until(2_000.0)
        assert pool.preemption_count() == 1
        raman_jobs = [j for j in pool.jobs() if j.owner == "raman"]
        assert raman_jobs[0].done
        evicted = pool.trace.first("job-evicted")
        assert evicted.fields["reason"] == "preempted-by-higher-rank"

    def test_stranger_resumes_after_preferred_finishes(self):
        spec = MachineSpec(
            name="m0",
            rank='member(other.Owner, { "raman" }) * 10',
        )
        pool = CondorPool(
            [spec],
            PoolConfig(seed=6, advertise_interval=60.0, negotiation_interval=60.0),
        )
        stranger_job = Job(owner="stranger", total_work=1_000.0, want_checkpoint=True)
        pool.submit(stranger_job)
        pool.submit(Job(owner="raman", total_work=300.0), at=200.0)
        pool.run_until_quiescent(check_interval=60.0, max_time=100_000.0)
        assert stranger_job.done
        assert stranger_job.evictions == 1
        assert stranger_job.completed_work > 0  # checkpoint retained

    def test_preemption_disabled_pool_never_preempts(self):
        spec = MachineSpec(name="m0", rank='member(other.Owner, { "raman" }) * 10')
        pool = CondorPool(
            [spec],
            PoolConfig(
                seed=6,
                advertise_interval=60.0,
                negotiation_interval=60.0,
                allow_preemption=False,
            ),
        )
        pool.submit(Job(owner="stranger", total_work=2_000.0))
        pool.submit(Job(owner="raman", total_work=300.0), at=200.0)
        pool.run_until_quiescent(check_interval=60.0, max_time=100_000.0)
        assert pool.preemption_count() == 0


class TestOfficeHoursHarvest:
    def test_cycles_harvested_outside_office_hours(self):
        """Workstations owned 9–17 by their owners still deliver most of
        their cycles to batch jobs — the paper's core value proposition
        (high throughput from idle workstations)."""
        specs = [MachineSpec(name=f"ws{i}") for i in range(4)]
        pool = CondorPool(
            specs,
            PoolConfig(seed=9, advertise_interval=300.0, negotiation_interval=300.0),
            owner_models={
                spec.name: OfficeHoursOwner(start=9 * 3600, end=17 * 3600, jitter=0.0)
                for spec in specs
            },
        )
        # More work than the pool can finish in 2 days, so it stays
        # saturated (4 machines × 48h × ~1x speed < 100 × 2h of work).
        for _ in range(100):
            pool.submit(Job(owner="alice", total_work=7_200.0, want_checkpoint=True))
        pool.run_until(2 * 86_400.0)
        # 16 of 24 hours are owner-free: utilization can approach 2/3.
        utilization = pool.utilization.utilization(pool.sim.now)
        assert utilization > 0.55
        # And no claim ever ran while an owner was active (safety).
        assert pool.metrics.goodput > 0

    def test_owner_machine_time_is_respected(self):
        """While the owner is present (9–17), the machine sits in Owner
        state with no claim; batch work resumes after hours."""
        from repro.condor import MachineState

        spec = MachineSpec(name="ws0")
        pool = CondorPool(
            [spec],
            PoolConfig(seed=10, advertise_interval=120.0, negotiation_interval=120.0),
            owner_models={"ws0": OfficeHoursOwner(start=9 * 3600, end=17 * 3600, jitter=0.0)},
        )
        pool.submit(Job(owner="alice", total_work=50_000.0, want_checkpoint=True))
        machine = pool.machines["ws0"]
        pool.run_until(8 * 3600.0)  # before office hours: job running
        assert machine.state is MachineState.CLAIMED
        pool.run_until(13 * 3600.0)  # owner at the keyboard
        assert machine.state is MachineState.OWNER
        assert machine.claim is None
        pool.run_until(18 * 3600.0)  # evening: harvest resumes
        assert machine.state is MachineState.CLAIMED
