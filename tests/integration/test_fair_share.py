"""Integration: fair matching from past usage (E4).

Section 4: "The matchmaking algorithm also uses past resource usage
information to enforce a fair matching policy."

Two users contending for a saturated pool should converge to shares
weighted by their priority factors; a newcomer should be served before
an incumbent heavy user.
"""

import pytest

from repro.condor import CondorPool, Job, MachineSpec, PoolConfig

pytestmark = pytest.mark.slow


def contended_pool(n_machines=4, seed=17, half_life=1_800.0):
    specs = [MachineSpec(name=f"m{i}", mips=100.0) for i in range(n_machines)]
    return CondorPool(
        specs,
        PoolConfig(
            seed=seed,
            advertise_interval=120.0,
            negotiation_interval=120.0,
            priority_half_life=half_life,
            allow_preemption=False,  # isolate fair-share ordering
        ),
    )


def flood(pool, owner, n_jobs, work=600.0, at=None):
    for _ in range(n_jobs):
        pool.submit(Job(owner=owner, total_work=work), at=at)


class TestEqualUsersSplitEvenly:
    def test_two_equal_users_get_similar_shares(self):
        pool = contended_pool()
        flood(pool, "alice", 60)
        flood(pool, "bob", 60)
        pool.run_until(24 * 3600.0)
        shares = pool.machine_share_by_owner()
        assert shares["alice"] == pytest.approx(0.5, abs=0.12)
        assert shares["bob"] == pytest.approx(0.5, abs=0.12)

    def test_priorities_track_usage(self):
        pool = contended_pool()
        flood(pool, "alice", 60)
        flood(pool, "bob", 60)
        pool.run_until(6 * 3600.0)
        # Both used ~half the pool; both priorities well above the floor.
        for user in ("alice", "bob"):
            assert pool.accountant.effective_priority(user) > 1.0


class TestNewcomerBeatsIncumbent:
    def test_fresh_user_served_first_after_heavy_usage(self):
        pool = contended_pool(n_machines=2)
        flood(pool, "hog", 40)
        pool.run_until(4 * 3600.0)  # hog has monopolized the pool
        hog_priority = pool.accountant.effective_priority("hog")
        assert hog_priority > 1.5
        flood(pool, "newbie", 2, work=300.0, at=4 * 3600.0 + 1.0)
        pool.run_until(4 * 3600.0 + 1_800.0)
        newbie_jobs = [j for j in pool.jobs() if j.owner == "newbie"]
        # The newcomer's jobs ran promptly despite the hog's full queue.
        assert any(j.done or j.first_start_time is not None for j in newbie_jobs)
        started = [j for j in newbie_jobs if j.first_start_time is not None]
        assert started
        # They were matched in the first or second cycle after arrival.
        assert min(j.first_start_time for j in started) < 4 * 3600.0 + 600.0


class TestPriorityFactors:
    def test_factor_weighted_shares(self):
        """A user with priority factor 4 should receive roughly a quarter
        of the share of a factor-1 user in steady state."""
        pool = contended_pool(n_machines=4, half_life=900.0)
        pool.accountant.set_priority_factor("vip", 1.0)
        pool.accountant.set_priority_factor("guest", 4.0)
        # Far more work than 12h of pool capacity: the backlog never
        # drains, so delivered shares reflect the fair-share policy
        # rather than everyone simply finishing.
        flood(pool, "vip", 120, work=3_600.0)
        flood(pool, "guest", 120, work=3_600.0)
        pool.run_until(12 * 3600.0)
        shares = pool.machine_share_by_owner()
        assert shares["vip"] > shares["guest"]
        ratio = shares["vip"] / max(shares["guest"], 1e-9)
        # The up-down algorithm oscillates; accept a broad band around 4×.
        assert 1.5 < ratio < 10.0

    def test_usage_report_orders_users(self):
        pool = contended_pool(n_machines=2)
        flood(pool, "worker", 20)
        pool.accountant.record("idler")  # known submitter, zero usage
        pool.run_until(2 * 3600.0)
        report = pool.accountant.usage_report()
        names = [row[0] for row in report]
        assert names.index("idler") < names.index("worker")
