"""Integration: claim leases — surviving a dead customer agent.

Condor's ALIVE protocol: the schedd refreshes every active claim
periodically; a startd whose claim stops hearing keep-alives concludes
the customer is gone and reclaims the machine.  Without this, a crashed
CA would strand a workstation in Claimed state forever — violating the
owner's expectations, which the whole system exists to protect.
"""

import pytest

from repro.condor import CondorPool, Job, MachineSpec, MachineState, PoolConfig
from repro.condor.machine import MachineAgent
from repro.condor.messages import KeepAlive
from repro.protocols import ClaimRequest
from repro.sim import Network, RngStream, Simulator


class TestLeaseMechanism:
    def make_claimed_agent(self, claim_lease=120.0):
        sim = Simulator()
        net = Network(sim, rng=RngStream(1), latency=0.01)
        net.register("collector@cm", lambda m: None)
        inbox = []
        net.register("schedd@alice", inbox.append)
        agent = MachineAgent(
            sim, net, MachineSpec(name="m0"), collector_address="collector@cm",
            rng=RngStream(2),
        )
        agent.claim_lease = claim_lease
        agent.start()
        sim.run_until(1.0)
        job = Job(owner="alice", total_work=100_000.0)
        net.send(
            ClaimRequest(
                sender="schedd@alice",
                recipient=agent.address,
                customer_ad=job.to_classad("schedd@alice", sim.now),
                ticket=agent.authority.current,
                match_id=77,
            )
        )
        sim.run_until(2.0)
        assert agent.state is MachineState.CLAIMED
        return sim, net, agent

    def test_lease_expires_without_keepalives(self):
        sim, net, agent = self.make_claimed_agent(claim_lease=120.0)
        sim.run_until(400.0)  # > lease with no ALIVEs
        assert agent.state is MachineState.UNCLAIMED
        assert agent.evictions_lease == 1

    def test_keepalives_sustain_the_claim(self):
        sim, net, agent = self.make_claimed_agent(claim_lease=120.0)
        # Simulate the CA's ALIVE stream by hand.
        def alive():
            net.send(
                KeepAlive(sender="schedd@alice", recipient=agent.address, match_id=77)
            )

        sim.every(60.0, alive)
        sim.run_until(1_000.0)
        assert agent.state is MachineState.CLAIMED
        assert agent.evictions_lease == 0

    def test_keepalive_for_wrong_match_ignored(self):
        sim, net, agent = self.make_claimed_agent(claim_lease=120.0)
        sim.every(
            60.0,
            lambda: net.send(
                KeepAlive(sender="x", recipient=agent.address, match_id=999)
            ),
        )
        sim.run_until(400.0)
        assert agent.evictions_lease == 1

    def test_lease_disabled(self):
        sim, net, agent = self.make_claimed_agent(claim_lease=None)
        sim.run_until(2_000.0)
        assert agent.state is MachineState.CLAIMED  # stranded, by design


class TestDeadScheddRecovery:
    def test_machine_reclaimed_and_reused_after_ca_crash(self):
        """alice's CA dies mid-run; her claim leases out; bob's queued
        job then gets the machine."""
        pool = CondorPool(
            [MachineSpec(name="m0")],
            PoolConfig(seed=8, advertise_interval=60.0, negotiation_interval=60.0),
        )
        pool.submit(Job(owner="alice", total_work=50_000.0))
        pool.submit(Job(owner="bob", total_work=300.0), at=100.0)
        pool.crash_schedd("alice", at=90.0)  # never comes back
        pool.run_until(3_000.0)
        machine = pool.machines["m0"]
        assert machine.evictions_lease == 1
        bob_jobs = [j for j in pool.jobs() if j.owner == "bob"]
        assert bob_jobs[0].done

    def test_revived_schedd_requeues_and_finishes(self):
        """The CA comes back after its claim leased out: the job (whose
        eviction notice it never received) would be stuck RUNNING — the
        periodic ad refresh doesn't cover running jobs — so recovery
        relies on the machine's capped teardown retries reaching the
        revived CA."""
        pool = CondorPool(
            [MachineSpec(name="m0")],
            PoolConfig(seed=8, advertise_interval=60.0, negotiation_interval=60.0),
        )
        job = Job(owner="alice", total_work=5_000.0, want_checkpoint=True)
        pool.submit(job)
        pool.crash_schedd("alice", at=90.0, duration=600.0)
        pool.run_until_quiescent(check_interval=300.0, max_time=100_000.0)
        assert job.done
        assert pool.machines["m0"].evictions_lease == 1
