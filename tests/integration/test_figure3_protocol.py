"""Integration: the Figure 3 protocol, end to end (experiment F3).

One provider, one requestor, one matchmaker.  The trace must show the
paper's four steps in causal order:

  (1) advertisement → (2) match → (3) match notification → (4) claiming

and the claim must carry the authorization ticket the RA supplied with
its ad (Section 4).
"""

import pytest

from repro.condor import CondorPool, Job, MachineSpec, PoolConfig


@pytest.fixture()
def pool():
    pool = CondorPool(
        [MachineSpec(name="leonardo", mips=104.0, kflops=21893.0)],
        PoolConfig(seed=7, advertise_interval=60.0, negotiation_interval=60.0),
    )
    pool.submit(Job(owner="raman", total_work=300.0, memory=31))
    pool.run_until_quiescent(check_interval=60.0, max_time=50_000.0)
    return pool


class TestFigure3Sequence:
    def test_all_four_steps_present(self, pool):
        trace = pool.trace
        assert trace.count("advertise-machine") > 0  # step 1 (provider)
        assert trace.count("advertise-job") > 0  # step 1 (requestor)
        assert trace.count("match") == 1  # step 2
        assert trace.count("match-notified-customer") == 1  # step 3
        assert trace.count("match-notified-provider") == 1  # step 3
        assert trace.count("claim-request") == 1  # step 4
        assert trace.count("claim-accepted") == 1
        assert trace.count("job-completed") == 1

    def test_steps_causally_ordered(self, pool):
        trace = pool.trace
        t_ad = min(
            trace.first("advertise-machine").time, trace.first("advertise-job").time
        )
        t_match = trace.first("match").time
        t_notify = min(
            trace.first("match-notified-customer").time,
            trace.first("match-notified-provider").time,
        )
        t_claim = trace.first("claim-request").time
        t_accept = trace.first("claim-accepted").time
        t_done = trace.first("job-completed").time
        assert t_ad <= t_match <= t_notify <= t_claim <= t_accept <= t_done

    def test_claiming_bypasses_matchmaker(self, pool):
        # Step 4 messages flow CA↔RA directly; the matchmaker addresses
        # never appear as claim participants.
        claim = pool.trace.first("claim-request")
        assert claim.fields["machine"] == "leonardo"

    def test_both_parties_got_each_others_ads(self, pool):
        note = pool.trace.first("match-notified-customer")
        assert note.fields["machine"] == "leonardo"
        assert note.fields["owner"] == "raman"

    def test_job_completed_with_full_goodput(self, pool):
        assert pool.metrics.jobs_completed == 1
        assert pool.metrics.goodput == pytest.approx(300.0, abs=1.0)
        assert pool.metrics.badput == 0.0


class TestMatchmakerStatelessness:
    def test_no_match_state_survives_in_matchmaker(self):
        """After notification the matchmaker's responsibility ceases: the
        negotiator object holds no per-match state at all."""
        pool = CondorPool(
            [MachineSpec(name="m0")],
            PoolConfig(seed=1, advertise_interval=60.0, negotiation_interval=60.0),
        )
        pool.submit(Job(owner="raman", total_work=100.0))
        pool.run_until_quiescent(check_interval=60.0, max_time=50_000.0)
        negotiator = pool.negotiator
        # Everything the negotiator retains is counters + the accountant.
        state_attrs = {
            k: v
            for k, v in vars(negotiator).items()
            if "match" in k.lower() and k != "total_matches"
        }
        assert state_attrs == {}

    def test_match_is_only_a_hint(self):
        """A match against a machine that turned Owner before the claim is
        simply rejected at claim time; nothing breaks and the job is
        rematched later."""
        from repro.condor.machine import OwnerModel

        class ArrivesDuringClaim(OwnerModel):
            # Owner shows up just after the negotiation at t=60 fired but
            # before the claim handshake lands, then leaves again.
            def first_event(self, rng):
                return False, 60.02

            def active_duration(self, rng):
                return 120.0

            def idle_duration(self, rng):
                return 1e9

        pool = CondorPool(
            [MachineSpec(name="m0")],
            PoolConfig(seed=3, advertise_interval=600.0, negotiation_interval=60.0),
            owner_models={"m0": ArrivesDuringClaim()},
        )
        pool.submit(Job(owner="raman", total_work=60.0))
        pool.run_until_quiescent(check_interval=60.0, max_time=50_000.0)
        assert pool.metrics.jobs_completed == 1
        assert pool.metrics.claims_rejected >= 1
        reasons = pool.metrics.claim_rejections_by_reason
        assert "bad-ticket" in reasons or "constraint-violated" in reasons


class TestSessionKeys:
    def test_session_key_handoff(self):
        pool = CondorPool(
            [MachineSpec(name="m0")],
            PoolConfig(
                seed=1,
                advertise_interval=60.0,
                negotiation_interval=60.0,
                with_session_key=True,
            ),
        )
        pool.submit(Job(owner="raman", total_work=50.0))
        pool.run_until_quiescent(check_interval=60.0, max_time=50_000.0)
        assert pool.metrics.jobs_completed == 1
