"""Integration: flocking — load sharing across autonomous pools.

The framework scales past one pool with no new mechanism: a starving
job's ad is simply sent to a remote collector too; matching, tickets,
claiming, and the remote owners' policies all work unchanged.
"""

import pytest

from repro.classads import is_true
from repro.condor import Job, MachineSpec, PoolConfig
from repro.condor.flocking import Flock


def two_pools(n_home=1, n_remote=3, seed=55, flock_threshold=300.0, **remote_spec):
    pools = {
        "home": [MachineSpec(name=f"h{i}") for i in range(n_home)],
        "remote": [
            MachineSpec(name=f"r{i}", **remote_spec) for i in range(n_remote)
        ],
    }
    return Flock(
        pools,
        PoolConfig(seed=seed, advertise_interval=120.0, negotiation_interval=120.0),
        flock_threshold=flock_threshold,
    )


class TestFlockingBasics:
    def test_local_jobs_stay_local_when_capacity_suffices(self):
        flock = two_pools(n_home=2)
        jobs = [Job(owner="alice", total_work=600.0) for _ in range(2)]
        for job in jobs:
            flock.submit("home", job)
        flock.run_until_quiescent(check_interval=120.0, max_time=50_000.0)
        assert all(j.done for j in jobs)
        assert all(j.running_on is None for j in jobs)
        assert flock.trace.count("advertise-job-flock") == 0
        # Everything executed on home machines.
        accepted = flock.trace.of_kind("claim-accepted")
        assert all(e.fields["machine"].startswith("h") for e in accepted)

    def test_starving_jobs_overflow_to_remote_pool(self):
        flock = two_pools(n_home=1, n_remote=3)
        jobs = [Job(owner="alice", total_work=3_000.0) for _ in range(4)]
        for job in jobs:
            flock.submit("home", job)
        flock.run_until_quiescent(check_interval=120.0, max_time=100_000.0)
        assert all(j.done for j in jobs)
        assert flock.trace.count("advertise-job-flock") > 0
        accepted = flock.trace.of_kind("claim-accepted")
        machines_used = {e.fields["machine"] for e in accepted}
        assert any(m.startswith("r") for m in machines_used)
        assert any(m.startswith("h") for m in machines_used)

    def test_flocking_faster_than_single_pool(self):
        # The same backlog drains sooner with a remote pool to flock to.
        def makespan(n_remote):
            flock = two_pools(n_home=1, n_remote=n_remote)
            for _ in range(6):
                flock.submit("home", Job(owner="alice", total_work=1_800.0))
            return flock.run_until_quiescent(check_interval=120.0, max_time=200_000.0)

        assert makespan(n_remote=3) < makespan(n_remote=0)


class TestRemoteAutonomy:
    def test_remote_policies_still_apply(self):
        """A remote pool that only serves its own group rejects flocked
        strangers — autonomy survives flocking."""
        flock = two_pools(
            n_home=1,
            n_remote=2,
            constraint='member(other.Owner, { "remoteuser" })',
        )
        stranger_jobs = [Job(owner="alice", total_work=2_000.0) for _ in range(3)]
        for job in stranger_jobs:
            flock.submit("home", job)
        flock.run_until(20_000.0)
        accepted = flock.trace.of_kind("claim-accepted")
        assert all(not e.fields["machine"].startswith("r") for e in accepted)

    def test_remote_accountant_charges_the_flocked_user(self):
        flock = two_pools(n_home=1, n_remote=2)
        for _ in range(4):
            flock.submit("home", Job(owner="alice", total_work=2_000.0))
        flock.run_until_quiescent(check_interval=120.0, max_time=100_000.0)
        remote = flock.pools["remote"]
        assert remote.accountant.record("alice").accumulated_usage > 0

    def test_double_match_across_pools_is_safe(self):
        """Both negotiators may match the same flocked job in overlapping
        cycles; the CA claims once and ignores the second introduction —
        matches are hints, even across pools."""
        flock = two_pools(n_home=1, n_remote=1, flock_threshold=0.0)
        job = Job(owner="alice", total_work=1_000.0)
        flock.submit("home", job)
        flock.run_until_quiescent(check_interval=120.0, max_time=50_000.0)
        assert job.done
        # It ran exactly once: goodput equals total work.
        total_goodput = sum(p.metrics.goodput for p in flock.pools.values())
        assert total_goodput == pytest.approx(1_000.0, abs=2.0)
