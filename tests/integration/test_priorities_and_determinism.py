"""Integration: job priorities, pool snapshots, and run determinism."""

import pytest

from repro.cli import load_pool
from repro.condor import CondorPool, Job, MachineSpec, PoissonOwner, PoolConfig


class TestJobPriorities:
    def test_high_priority_job_jumps_its_own_queue(self):
        pool = CondorPool(
            [MachineSpec(name="m0")],
            PoolConfig(seed=4, advertise_interval=60.0, negotiation_interval=60.0),
        )
        background = [Job(owner="alice", total_work=600.0) for _ in range(3)]
        urgent = Job(owner="alice", total_work=600.0, priority=10)
        for job in background:
            pool.submit(job)
        pool.submit(urgent)  # submitted last, but highest priority
        pool.run_until_quiescent(check_interval=60.0, max_time=50_000.0)
        assert urgent.completion_time < min(j.completion_time for j in background)

    def test_priority_does_not_trump_other_submitters_share(self):
        # bob's priority-100 job must not starve alice on a fair pool.
        pool = CondorPool(
            [MachineSpec(name="m0"), MachineSpec(name="m1")],
            PoolConfig(seed=4, advertise_interval=60.0, negotiation_interval=60.0),
        )
        alice = Job(owner="alice", total_work=600.0)
        bob_urgent = [Job(owner="bob", total_work=600.0, priority=100) for _ in range(2)]
        pool.submit(alice)
        for job in bob_urgent:
            pool.submit(job)
        pool.run_until(120.0)
        # First cycle: both submitters got one machine each (pie slices).
        running = [j for j in pool.jobs() if j.first_start_time is not None]
        owners = {j.owner for j in running}
        assert owners == {"alice", "bob"}

    def test_fcfs_among_equal_priorities(self):
        pool = CondorPool(
            [MachineSpec(name="m0")],
            PoolConfig(seed=4, advertise_interval=60.0, negotiation_interval=60.0),
        )
        first = Job(owner="alice", total_work=600.0)
        second = Job(owner="alice", total_work=600.0)
        pool.submit(first)
        pool.submit(second)
        pool.run_until_quiescent(check_interval=60.0, max_time=50_000.0)
        assert first.completion_time < second.completion_time


class TestSnapshot:
    def test_snapshot_round_trips_through_cli_loader(self, tmp_path):
        pool = CondorPool(
            [MachineSpec(name=f"m{i}") for i in range(3)],
            PoolConfig(seed=2, advertise_interval=60.0, negotiation_interval=60.0),
        )
        pool.submit(Job(owner="alice", total_work=50_000.0))
        pool.run_until(65.0)
        text = pool.collector.snapshot()
        path = tmp_path / "pool.jsonl"
        path.write_text(text)
        ads = load_pool(str(path))
        machines = [ad for ad in ads if ad.evaluate("Type") == "Machine"]
        assert len(machines) == 3

    def test_snapshot_feeds_status_tool(self):
        from repro.condor.status import machine_status

        pool = CondorPool(
            [MachineSpec(name=f"m{i}") for i in range(2)],
            PoolConfig(seed=2, advertise_interval=60.0, negotiation_interval=60.0),
        )
        pool.run_until(65.0)
        import json

        from repro.classads.serialize import from_json_obj

        ads = [from_json_obj(json.loads(line)) for line in pool.collector.snapshot().splitlines()]
        assert "Total 2 machines" in machine_status(ads)


class TestDeterminism:
    def run_once(self, seed=99):
        specs = [MachineSpec(name=f"m{i}") for i in range(5)]
        owner_models = {
            spec.name: PoissonOwner(mean_active=600.0, mean_idle=900.0)
            for spec in specs
        }
        pool = CondorPool(
            specs,
            PoolConfig(
                seed=seed,
                advertise_interval=120.0,
                negotiation_interval=120.0,
                network_loss=0.05,
                network_jitter=0.5,
            ),
            owner_models=owner_models,
        )
        for i in range(15):
            pool.submit(Job(owner="alice" if i % 2 else "bob", total_work=700.0))
        pool.run_until(20_000.0)
        m = pool.metrics
        return (
            m.jobs_completed,
            m.claims_attempted,
            m.claims_rejected,
            round(m.goodput, 6),
            round(m.badput, 6),
            pool.sim.events_processed,
        )

    def test_same_seed_same_history(self):
        assert self.run_once(seed=99) == self.run_once(seed=99)

    def test_different_seed_different_history(self):
        assert self.run_once(seed=99) != self.run_once(seed=100)
