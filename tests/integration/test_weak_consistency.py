"""Integration: weak consistency and claim-time re-verification (E2).

Section 3.2: "Since the state of service providers and requesters may be
continuously changing, there is a possibility that the matchmaker made a
match with a stale advertisement.  Claiming allows the provider and
customer to verify their constraints with respect to their current
state."

The safety property is absolute: *no job ever runs on a machine whose
current policy rejects it*, no matter how stale the matched ads were.
The performance property is graded: staler ads ⇒ more wasted claim
attempts, but never incorrect execution.
"""

import pytest

from repro.classads import is_true
from repro.condor import CondorPool, Job, MachineSpec, PoolConfig, PoissonOwner


def flaky_pool(advertise_interval, seed=13, n_machines=6, loss=0.0):
    """A pool whose owners come and go on ~10-minute timescales.

    State-change advertisements are disabled so the collector's view is
    purely periodic — exactly the staleness E2 sweeps.  (Deployed Condor
    sends an immediate ad on state change, which is itself the first
    defence against staleness; the claim-time check is the second and
    the one under test here.)
    """
    specs = [MachineSpec(name=f"m{i}") for i in range(n_machines)]
    owner_models = {
        spec.name: PoissonOwner(mean_active=600.0, mean_idle=1200.0)
        for spec in specs
    }
    pool = CondorPool(
        specs,
        PoolConfig(
            seed=seed,
            advertise_interval=advertise_interval,
            negotiation_interval=300.0,
            network_loss=loss,
            advertise_on_state_change=False,
        ),
        owner_models=owner_models,
    )
    return pool


class TestSafetyUnderStaleness:
    def test_no_job_ever_starts_against_owner_occupied_machine(self):
        """Cross-check the event trace: every claim acceptance happened on
        a machine that was not owner-occupied at that instant."""
        pool = flaky_pool(advertise_interval=600.0)  # very stale ads
        for _ in range(12):
            pool.submit(Job(owner="alice", total_work=900.0))
        pool.start()
        # Track owner presence intervals per machine from the trace after
        # the fact; claims accepted by the machine agent consult current
        # state, so none may land inside an owner-present interval.
        pool.sim.run_until(30_000.0)
        presence = {name: [] for name in pool.machines}
        active_since = {}
        for event in pool.trace:
            if event.kind == "owner-arrived":
                active_since[event.fields["machine"]] = event.time
            elif event.kind == "owner-departed":
                machine = event.fields["machine"]
                start = active_since.pop(machine, None)
                if start is not None:
                    presence[machine].append((start, event.time))
        for machine, start in active_since.items():
            presence[machine].append((start, float("inf")))

        accepts = pool.trace.of_kind("claim-response")
        accepted = [e for e in accepts if e.fields["accepted"]]
        assert accepted, "scenario must actually exercise claims"
        for event in accepted:
            machine = event.fields["machine"]
            for start, end in presence[machine]:
                assert not (start < event.time < end), (
                    f"claim accepted on {machine} at {event.time} while owner "
                    f"present during ({start}, {end})"
                )

    def test_stale_matches_rejected_not_executed(self):
        """With ads an order of magnitude staler than owner dynamics,
        claim-time verification must produce rejections — the system
        corrects staleness at the claim step rather than misallocating."""
        pool = flaky_pool(advertise_interval=3000.0, seed=20)
        for _ in range(20):
            pool.submit(Job(owner="alice", total_work=1200.0))
        pool.start()
        pool.sim.run_until(60_000.0)
        reasons = pool.metrics.claim_rejections_by_reason
        stale_rejections = reasons.get("bad-ticket", 0) + reasons.get(
            "constraint-violated", 0
        ) + reasons.get("already-claimed", 0)
        assert stale_rejections > 0

    def test_rejected_claims_eventually_complete(self):
        pool = flaky_pool(advertise_interval=900.0, seed=21, n_machines=8)
        for _ in range(10):
            pool.submit(Job(owner="alice", total_work=600.0))
        pool.run_until_quiescent(check_interval=300.0, max_time=500_000.0)
        assert pool.metrics.jobs_completed == 10


class TestStalenessGradient:
    def test_fresher_ads_mean_fewer_wasted_claims(self):
        """E2's headline shape: claim rejection rate grows with the
        advertising interval (staleness), comparing a fresh pool against
        a very stale one under identical workload and owner dynamics."""

        def rejection_rate(interval):
            pool = flaky_pool(advertise_interval=interval, seed=33)
            for _ in range(20):
                pool.submit(Job(owner="alice", total_work=900.0))
            pool.start()
            pool.sim.run_until(80_000.0)
            return pool.metrics.claim_rejection_rate, pool.metrics.claims_attempted

        fresh_rate, fresh_n = rejection_rate(60.0)
        stale_rate, stale_n = rejection_rate(3600.0)
        assert fresh_n > 0 and stale_n > 0
        assert stale_rate >= fresh_rate

    def test_zero_staleness_zero_constraint_rejections(self):
        """A pool with no owner dynamics and instant consistency never
        rejects for constraint reasons."""
        specs = [MachineSpec(name=f"m{i}") for i in range(4)]
        pool = CondorPool(
            specs,
            PoolConfig(seed=2, advertise_interval=60.0, negotiation_interval=60.0),
        )
        for _ in range(8):
            pool.submit(Job(owner="alice", total_work=300.0))
        pool.run_until_quiescent(check_interval=60.0, max_time=100_000.0)
        assert pool.metrics.jobs_completed == 8
        assert pool.metrics.claim_rejections_by_reason.get("constraint-violated", 0) == 0
