"""Unit + property tests for ad aggregation / group matching (S21)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classads import ClassAd
from repro.matchmaking import (
    AdAggregation,
    GroupMatchStats,
    constraints_satisfied,
    group_best_match,
    group_match,
    group_signature,
)


def machine(name, arch="INTEL", memory=64, constraint='other.Type == "Job"'):
    ad = ClassAd(
        {
            "Type": "Machine",
            "Name": name,
            "ContactAddress": f"startd@{name}",
            "Arch": arch,
            "Memory": memory,
        }
    )
    ad.set_expr("Constraint", constraint)
    return ad


def job(constraint='other.Type == "Machine"', **attrs):
    ad = ClassAd({"Type": "Job", "Owner": "raman", **attrs})
    ad.set_expr("Constraint", constraint)
    return ad


class TestSignatures:
    def test_identity_attrs_ignored(self):
        a, b = machine("m0"), machine("m1")
        assert group_signature(a) == group_signature(b)

    def test_matching_relevant_attrs_distinguish(self):
        assert group_signature(machine("m0", memory=64)) != group_signature(
            machine("m1", memory=128)
        )

    def test_policy_expressions_distinguish(self):
        a = machine("m0", constraint="true")
        b = machine("m1", constraint='other.Owner == "raman"')
        assert group_signature(a) != group_signature(b)

    def test_attribute_order_irrelevant(self):
        a = ClassAd({"x": 1, "y": 2})
        b = ClassAd({"y": 2, "x": 1})
        assert group_signature(a) == group_signature(b)


class TestAggregation:
    def test_grouping_by_class(self):
        ads = (
            [machine(f"i{k}", arch="INTEL") for k in range(5)]
            + [machine(f"s{k}", arch="SPARC") for k in range(3)]
        )
        agg = AdAggregation(ads)
        assert len(agg.groups) == 2
        assert agg.total_ads == 8
        assert agg.compression == 4.0

    def test_singleton_groups(self):
        ads = [machine(f"m{k}", memory=2 ** (5 + k)) for k in range(4)]
        agg = AdAggregation(ads)
        assert len(agg.groups) == 4
        assert agg.compression == 1.0

    def test_safe_for_rejects_identity_references(self):
        agg = AdAggregation([machine("m0")])
        assert agg.safe_for(job('other.Arch == "INTEL"'))
        assert not agg.safe_for(job('other.Name == "m0"'))

    def test_safe_for_checks_rank_too(self):
        agg = AdAggregation([machine("m0")])
        picky = job()
        picky.set_expr("Rank", 'other.Name == "m0" ? 10 : 0')
        assert not agg.safe_for(picky)


class TestGroupMatching:
    def test_matches_fan_out_to_members(self):
        ads = [machine(f"i{k}") for k in range(5)] + [
            machine(f"s{k}", arch="SPARC") for k in range(3)
        ]
        agg = AdAggregation(ads)
        stats = GroupMatchStats()
        found = group_match(job('other.Arch == "INTEL"'), agg, stats=stats)
        assert len(found) == 5
        assert stats.constraint_evaluations == 2  # one per group, not per ad

    def test_unsafe_customer_falls_back_to_exact(self):
        ads = [machine(f"m{k}") for k in range(4)]
        agg = AdAggregation(ads)
        stats = GroupMatchStats()
        found = group_match(job('other.Name == "m2"'), agg, stats=stats)
        assert [ad.evaluate("Name") for ad in found] == ["m2"]
        assert stats.fallbacks == 1

    def test_group_best_match(self):
        ads = [machine(f"i{k}", memory=64) for k in range(3)] + [
            machine(f"b{k}", memory=256) for k in range(2)
        ]
        agg = AdAggregation(ads)
        customer = job("other.Memory >= 32")
        customer.set_expr("Rank", "other.Memory")
        best = group_best_match(customer, agg)
        assert best is not None
        assert best.provider.evaluate("Memory") == 256

    def test_group_best_match_none(self):
        agg = AdAggregation([machine("m0", memory=16)])
        assert group_best_match(job("other.Memory >= 64"), agg) is None


# -- the equivalence property -------------------------------------------------

archs = st.sampled_from(["INTEL", "SPARC"])
memories = st.sampled_from([32, 64, 128])
constraint_texts = st.sampled_from(
    [
        'other.Type == "Machine"',
        'other.Arch == "INTEL"',
        "other.Memory >= 64",
        'other.Arch == "SPARC" && other.Memory >= 64',
        'other.Name == "m1"',  # identity reference → fallback path
        "true",
    ]
)


class TestEquivalenceProperty:
    @given(
        st.lists(st.tuples(archs, memories), max_size=15),
        constraint_texts,
    )
    @settings(max_examples=150, deadline=None)
    def test_group_match_equals_naive_filter(self, machine_params, text):
        ads = [
            machine(f"m{i}", arch=a, memory=m)
            for i, (a, m) in enumerate(machine_params)
        ]
        agg = AdAggregation(ads)
        customer = job(text)
        grouped = group_match(customer, agg)
        naive = [ad for ad in ads if constraints_satisfied(customer, ad)]
        assert sorted(ad.evaluate("Name") for ad in grouped) == sorted(
            ad.evaluate("Name") for ad in naive
        )
