"""Property-based tests for the negotiation cycle's invariants (S6)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classads import ClassAd, rank_value
from repro.matchmaking import Accountant, constraints_satisfied, negotiation_cycle


def machine(name, arch, memory, state="Unclaimed", current_rank=0.0, remote_owner=None):
    ad = ClassAd(
        {
            "Type": "Machine",
            "Name": name,
            "Arch": arch,
            "Memory": memory,
            "State": state,
        }
    )
    ad.set_expr("Constraint", 'other.Type == "Job"')
    ad.set_expr("Rank", 'other.Owner == "vip" ? 5 : 0')
    if state == "Claimed":
        ad["CurrentRank"] = current_rank
        ad["RemoteOwner"] = remote_owner or "someone"
    return ad


def request(owner, job_id, arch, memory):
    ad = ClassAd(
        {"Type": "Job", "JobId": job_id, "Owner": owner, "Memory": memory, "ReqArch": arch}
    )
    ad.set_expr(
        "Constraint",
        'other.Type == "Machine" && other.Arch == self.ReqArch '
        "&& other.Memory >= self.Memory",
    )
    ad.set_expr("Rank", "other.Memory")
    return ad


archs = st.sampled_from(["INTEL", "SPARC"])
memories = st.sampled_from([32, 64, 128])
states = st.sampled_from(["Unclaimed", "Claimed", "Owner"])
owners = st.sampled_from(["alice", "bob", "vip"])

machines_strategy = st.lists(
    st.tuples(archs, memories, states, st.floats(min_value=0, max_value=10)),
    max_size=10,
)
requests_strategy = st.lists(st.tuples(owners, archs, memories), max_size=12)


def build(machine_params, request_params):
    providers = [
        machine(f"m{i}", a, m, state=s, current_rank=r)
        for i, (a, m, s, r) in enumerate(machine_params)
    ]
    grouped = {}
    for i, (owner, arch, memory) in enumerate(request_params):
        grouped.setdefault(owner, []).append(request(owner, i, arch, memory))
    return providers, grouped


class TestNegotiationInvariants:
    @given(machines_strategy, requests_strategy)
    @settings(max_examples=150, deadline=None)
    def test_no_provider_double_booked(self, machine_params, request_params):
        providers, grouped = build(machine_params, request_params)
        assignments = negotiation_cycle(grouped, providers)
        booked = [id(a.provider) for a in assignments]
        assert len(booked) == len(set(booked))

    @given(machines_strategy, requests_strategy)
    @settings(max_examples=150, deadline=None)
    def test_no_request_served_twice(self, machine_params, request_params):
        providers, grouped = build(machine_params, request_params)
        assignments = negotiation_cycle(grouped, providers)
        served = [id(a.request) for a in assignments]
        assert len(served) == len(set(served))

    @given(machines_strategy, requests_strategy)
    @settings(max_examples=150, deadline=None)
    def test_every_assignment_is_a_real_bilateral_match(self, machine_params, request_params):
        providers, grouped = build(machine_params, request_params)
        for a in negotiation_cycle(grouped, providers):
            assert constraints_satisfied(a.request, a.provider)

    @given(machines_strategy, requests_strategy)
    @settings(max_examples=150, deadline=None)
    def test_owner_state_machines_never_assigned(self, machine_params, request_params):
        providers, grouped = build(machine_params, request_params)
        for a in negotiation_cycle(grouped, providers):
            assert a.provider.evaluate("State") != "Owner"

    @given(machines_strategy, requests_strategy)
    @settings(max_examples=150, deadline=None)
    def test_preemption_only_for_strictly_higher_rank(self, machine_params, request_params):
        providers, grouped = build(machine_params, request_params)
        for a in negotiation_cycle(grouped, providers):
            if a.preempts is not None:
                current = rank_value(a.provider.evaluate("CurrentRank"))
                assert a.provider_rank > current

    @given(machines_strategy, requests_strategy)
    @settings(max_examples=100, deadline=None)
    def test_preemption_flag_matches_provider_state(self, machine_params, request_params):
        providers, grouped = build(machine_params, request_params)
        for a in negotiation_cycle(grouped, providers):
            state = a.provider.evaluate("State")
            if state == "Claimed":
                assert a.preempts is not None
            else:
                assert a.preempts is None

    @given(machines_strategy, requests_strategy, st.booleans())
    @settings(max_examples=150, deadline=None)
    def test_no_wasted_capacity(self, machine_params, request_params, use_accountant):
        """After a cycle (with or without fair-share pie slices), no
        unserved request may have a compatible, available, un-taken
        provider left — quota cuts are always back-filled by the
        leftovers pass, so fairness never strands capacity."""
        providers, grouped = build(machine_params, request_params)
        acc = Accountant(half_life=100.0) if use_accountant else None
        assignments = negotiation_cycle(grouped, providers, accountant=acc)
        taken = {id(a.provider) for a in assignments}
        served = {id(a.request) for a in assignments}
        for owner, requests in grouped.items():
            for req in requests:
                if id(req) in served:
                    continue
                for provider in providers:
                    if id(provider) in taken:
                        continue
                    if provider.evaluate("State") != "Unclaimed":
                        continue
                    assert not constraints_satisfied(req, provider), (
                        "unserved request had an idle compatible provider"
                    )

    @given(machines_strategy, requests_strategy)
    @settings(max_examples=100, deadline=None)
    def test_deterministic(self, machine_params, request_params):
        providers, grouped = build(machine_params, request_params)
        first = negotiation_cycle(grouped, providers)
        second = negotiation_cycle(grouped, providers)
        assert [
            (a.submitter, a.provider.evaluate("Name")) for a in first
        ] == [(a.submitter, a.provider.evaluate("Name")) for a in second]
