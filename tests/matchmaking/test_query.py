"""Unit tests for one-way matching (status tools, Section 4)."""

from repro.classads import ClassAd
from repro.matchmaking import count_matching, one_way_match, select


def pool():
    def m(name, arch, state, memory):
        return ClassAd(
            {"Type": "Machine", "Name": name, "Arch": arch, "State": state, "Memory": memory}
        )

    return [
        m("a", "INTEL", "Unclaimed", 64),
        m("b", "INTEL", "Claimed", 128),
        m("c", "SPARC", "Unclaimed", 32),
        m("d", "SPARC", "Owner", 64),
    ]


class TestSelect:
    def test_filters_by_expression(self):
        found = select(pool(), 'Arch == "INTEL"')
        assert [ad.evaluate("Name") for ad in found] == ["a", "b"]

    def test_compound_expression(self):
        found = select(pool(), 'State == "Unclaimed" && Memory >= 64')
        assert [ad.evaluate("Name") for ad in found] == ["a"]

    def test_undefined_excluded(self):
        ads = pool()
        del ads[0]["State"]
        found = select(ads, 'State == "Unclaimed"')
        assert [ad.evaluate("Name") for ad in found] == ["c"]

    def test_limit(self):
        assert len(select(pool(), "true", limit=2)) == 2

    def test_accepts_parsed_expression(self):
        from repro.classads import parse

        assert len(select(pool(), parse("Memory > 32"))) == 3

    def test_count_matching(self):
        assert count_matching(pool(), 'Arch == "SPARC"') == 2


class TestOneWayMatch:
    def test_query_ad_with_self_attributes(self):
        query = ClassAd({"MinMemory": 64})
        query.set_expr("Constraint", "other.Memory >= self.MinMemory")
        found = one_way_match(query, pool())
        assert [ad.evaluate("Name") for ad in found] == ["a", "b", "d"]

    def test_target_constraint_not_consulted(self):
        # One-way: even a target that would reject the query is returned.
        target = ClassAd({"Type": "Machine", "Memory": 64})
        target.set_expr("Constraint", "false")
        query = ClassAd({})
        query.set_expr("Constraint", "other.Memory == 64")
        assert one_way_match(query, [target]) == [target]

    def test_unconstrained_query_returns_all(self):
        assert len(one_way_match(ClassAd({}), pool())) == 4

    def test_limit(self):
        query = ClassAd({})
        query.set_expr("Constraint", "true")
        assert len(one_way_match(query, pool(), limit=3)) == 3
