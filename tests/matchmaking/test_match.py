"""Unit tests for the bilateral match algorithm (S5)."""

import pytest

from repro.classads import ClassAd
from repro.matchmaking import (
    MatchPolicy,
    best_match,
    constraint_holds,
    constraints_satisfied,
    evaluate_rank,
    rank_candidates,
    symmetric_match,
)
from repro.paper import figure1_machine, figure2_job


def machine(**overrides):
    ad = ClassAd(
        {
            "Type": "Machine",
            "Arch": "INTEL",
            "OpSys": "SOLARIS251",
            "Memory": 64,
            "Disk": 100_000,
            "KFlops": 20_000,
        }
    )
    ad.set_expr("Constraint", "other.Type == \"Job\"")
    for key, value in overrides.items():
        ad[key] = value
    return ad


def job(**overrides):
    ad = ClassAd({"Type": "Job", "Owner": "raman", "Memory": 31})
    ad.set_expr("Constraint", 'other.Type == "Machine" && other.Memory >= self.Memory')
    for key, value in overrides.items():
        ad[key] = value
    return ad


class TestConstraintHolds:
    def test_basic_acceptance(self):
        assert constraint_holds(job(), machine())

    def test_rejection(self):
        assert not constraint_holds(job(Memory=128), machine())

    def test_undefined_constraint_fails_match(self):
        needy = job()
        needy.set_expr("Constraint", "other.NoSuchAttr > 5")
        assert not constraint_holds(needy, machine())

    def test_error_constraint_fails_match(self):
        broken = job()
        broken.set_expr("Constraint", '1 / 0 == 1')
        assert not constraint_holds(broken, machine())

    def test_nonboolean_constraint_fails_match(self):
        weird = job()
        weird["Constraint"] = 42
        assert not constraint_holds(weird, machine())

    def test_missing_constraint_accepts_everything(self):
        unconstrained = ClassAd({"Type": "Job"})
        assert constraint_holds(unconstrained, machine())

    def test_requirements_alias(self):
        ad = ClassAd({"Type": "Job"})
        ad.set_expr("Requirements", "other.Memory >= 32")
        assert constraint_holds(ad, machine())
        assert not constraint_holds(ad, machine(Memory=16))

    def test_constraint_preferred_over_requirements(self):
        ad = ClassAd({"Type": "Job"})
        ad.set_expr("Constraint", "false")
        ad.set_expr("Requirements", "true")
        assert not constraint_holds(ad, machine())

    def test_custom_policy_names(self):
        policy = MatchPolicy(constraint_attrs=("Wants",), rank_attr="Prefers")
        ad = ClassAd({})
        ad.set_expr("Wants", "other.Memory >= 32")
        assert constraint_holds(ad, machine(), policy)


class TestSymmetry:
    def test_both_sides_must_accept(self):
        picky_machine = machine()
        picky_machine.set_expr("Constraint", 'other.Owner == "miron"')
        assert not constraints_satisfied(job(Owner="raman"), picky_machine)
        assert constraints_satisfied(job(Owner="miron"), picky_machine)

    def test_symmetric_in_argument_order(self):
        m, j = machine(), job()
        assert constraints_satisfied(m, j) == constraints_satisfied(j, m)

    def test_alias(self):
        assert symmetric_match(job(), machine())

    def test_paper_figures_match(self):
        assert constraints_satisfied(figure2_job(), figure1_machine())


class TestRank:
    def test_numeric_rank(self):
        j = job()
        j.set_expr("Rank", "other.KFlops / 1000.0")
        assert evaluate_rank(j, machine(KFlops=5000)) == 5.0

    def test_missing_rank_is_zero(self):
        assert evaluate_rank(job(), machine()) == 0.0

    def test_non_numeric_rank_is_zero(self):
        j = job()
        j["Rank"] = "very good"
        assert evaluate_rank(j, machine()) == 0.0

    def test_undefined_rank_is_zero(self):
        j = job()
        j.set_expr("Rank", "other.NoSuch * 2")
        assert evaluate_rank(j, machine()) == 0.0

    def test_boolean_rank_promotes(self):
        j = job()
        j.set_expr("Rank", "other.Memory >= 32")
        assert evaluate_rank(j, machine()) == 1.0


class TestRankCandidates:
    def test_orders_by_customer_rank(self):
        j = job()
        j.set_expr("Rank", "other.KFlops")
        slow, fast = machine(KFlops=1000), machine(KFlops=9000)
        matches = rank_candidates(j, [slow, fast])
        assert [m.provider for m in matches] == [fast, slow]

    def test_incompatible_excluded(self):
        j = job()
        machines = [machine(), machine(Memory=8)]
        matches = rank_candidates(j, machines)
        assert len(matches) == 1
        assert matches[0].provider is machines[0]

    def test_provider_rank_breaks_ties(self):
        j = job()  # no Rank: all customer ranks are 0
        indifferent = machine()
        eager = machine()
        eager.set_expr("Rank", "10")
        matches = rank_candidates(j, [indifferent, eager])
        assert matches[0].provider is eager

    def test_input_order_breaks_full_ties(self):
        j = job()
        first, second = machine(), machine()
        matches = rank_candidates(j, [first, second])
        assert matches[0].provider is first

    def test_empty_provider_list(self):
        assert rank_candidates(job(), []) == []


class TestBestMatch:
    def test_agrees_with_rank_candidates(self):
        j = job()
        j.set_expr("Rank", "other.KFlops")
        machines = [machine(KFlops=k) for k in (3000, 9000, 1000, 9000)]
        assert best_match(j, machines).provider is rank_candidates(j, machines)[0].provider

    def test_none_when_no_compatible_provider(self):
        assert best_match(job(Memory=10_000), [machine()]) is None

    def test_single_pass_prefers_higher_provider_rank_on_tie(self):
        j = job()
        reluctant = machine()
        reluctant.set_expr("Rank", "-5")
        keen = machine()
        keen.set_expr("Rank", "5")
        assert best_match(j, [reluctant, keen]).provider is keen
