"""Property-based tests for gangmatching invariants (S20)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.classads import ClassAd, is_true
from repro.matchmaking import GangRequest, Port, gang_match, gang_match_all


def machine(name, arch, memory):
    ad = ClassAd({"Type": "Machine", "Name": name, "Arch": arch, "Memory": memory})
    ad.set_expr("Constraint", 'other.Type == "Job"')
    return ad


def license_ad(host, app="fluent"):
    ad = ClassAd({"Type": "License", "App": app, "Host": host})
    ad.set_expr("Constraint", 'other.Type == "Job"')
    return ad


archs = st.sampled_from(["INTEL", "SPARC"])
memories = st.sampled_from([32, 64, 128])

machine_params = st.lists(st.tuples(archs, memories), max_size=8)
license_hosts = st.lists(st.integers(min_value=0, max_value=7), max_size=4)


def build_providers(machines, hosts):
    providers = [machine(f"m{i}", a, mem) for i, (a, mem) in enumerate(machines)]
    for host_index in hosts:
        if host_index < len(machines):
            providers.append(license_ad(f"m{host_index}"))
    return providers


def co_allocation_gang(memory):
    return GangRequest(
        base=ClassAd({"Type": "Job", "Owner": "alice", "Memory": memory}),
        ports=[
            Port("cpu", 'other.Type == "Machine" && other.Memory >= self.Memory',
                 rank="other.Memory"),
            Port("license",
                 'other.Type == "License" && other.Host == cpu.Name'),
        ],
    )


class TestGangInvariants:
    @given(machine_params, license_hosts, memories)
    @settings(max_examples=150, deadline=None)
    def test_solution_satisfies_every_port(self, machines, hosts, memory):
        providers = build_providers(machines, hosts)
        gang = co_allocation_gang(memory)
        match = gang_match(gang, providers)
        if match is None:
            return
        working = gang.base.copy()
        for label, provider in match.bindings.items():
            working[label] = provider
        for port in gang.ports:
            assert is_true(
                working.eval_expr(port._constraint_expr, other=match.bindings[port.label])
            )

    @given(machine_params, license_hosts, memories)
    @settings(max_examples=150, deadline=None)
    def test_bindings_are_distinct_providers(self, machines, hosts, memory):
        providers = build_providers(machines, hosts)
        match = gang_match(co_allocation_gang(memory), providers)
        if match is None:
            return
        bound = [id(ad) for ad in match.bindings.values()]
        assert len(bound) == len(set(bound))

    @given(machine_params, license_hosts, memories)
    @settings(max_examples=150, deadline=None)
    def test_completeness_no_missed_solution_for_two_ports(self, machines, hosts, memory):
        """Backtracking search finds a solution whenever a brute-force
        enumeration over provider pairs finds one."""
        providers = build_providers(machines, hosts)
        gang = co_allocation_gang(memory)
        found = gang_match(gang, providers)

        def brute_force():
            for cpu in providers:
                if cpu.evaluate("Type") != "Machine":
                    continue
                mem = cpu.evaluate("Memory")
                if not isinstance(mem, int) or mem < memory:
                    continue
                for lic in providers:
                    if lic is cpu or lic.evaluate("Type") != "License":
                        continue
                    if lic.evaluate("Host") == cpu.evaluate("Name"):
                        return True
            return False

        assert (found is not None) == brute_force()

    @given(machine_params, license_hosts, st.integers(min_value=1, max_value=4))
    @settings(max_examples=100, deadline=None)
    def test_gang_match_all_never_shares_providers(self, machines, hosts, n_requests):
        providers = build_providers(machines, hosts)
        requests = [co_allocation_gang(32) for _ in range(n_requests)]
        results = gang_match_all(requests, providers)
        bound = []
        for result in results:
            if result is not None:
                bound.extend(id(ad) for ad in result.bindings.values())
        assert len(bound) == len(set(bound))
