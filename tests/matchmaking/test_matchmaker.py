"""Unit tests for the Matchmaker service and the negotiation cycle (S6)."""

import pytest

from repro.classads import ClassAd
from repro.matchmaking import (
    Accountant,
    CycleStats,
    Matchmaker,
    ProviderIndex,
    negotiation_cycle,
)


def machine(name, memory=64, state="Unclaimed", **extra):
    ad = ClassAd(
        {
            "Type": "Machine",
            "Name": name,
            "Arch": "INTEL",
            "OpSys": "SOLARIS251",
            "Memory": memory,
            "State": state,
        }
    )
    ad.set_expr("Constraint", 'other.Type == "Job"')
    for key, value in extra.items():
        ad[key] = value
    return ad


def request(owner, memory=32, **extra):
    ad = ClassAd({"Type": "Job", "Owner": owner, "Memory": memory})
    ad.set_expr("Constraint", 'other.Type == "Machine" && other.Memory >= self.Memory')
    for key, value in extra.items():
        ad[key] = value
    return ad


class TestMatchmakerAdStore:
    def test_advertise_and_query(self):
        mm = Matchmaker()
        mm.advertise("m1", machine("m1"))
        mm.advertise("m2", machine("m2", memory=16))
        assert len(mm) == 2
        assert "m1" in mm
        assert len(mm.query("Memory >= 32")) == 1

    def test_readvertise_replaces(self):
        mm = Matchmaker()
        mm.advertise("m1", machine("m1", memory=16))
        mm.advertise("m1", machine("m1", memory=64))
        assert len(mm) == 1
        assert mm.query("Memory == 64")

    def test_withdraw_idempotent(self):
        mm = Matchmaker()
        mm.advertise("m1", machine("m1"))
        mm.withdraw("m1")
        mm.withdraw("m1")
        assert len(mm) == 0

    def test_clear_forgets_everything(self):
        mm = Matchmaker()
        mm.advertise("m1", machine("m1"))
        mm.clear()
        assert len(mm) == 0

    def test_match_single_customer(self):
        mm = Matchmaker()
        mm.advertise("m1", machine("m1", memory=16))
        mm.advertise("m2", machine("m2", memory=64))
        best = mm.match(request("raman"))
        assert best.provider.evaluate("Name") == "m2"

    def test_match_none(self):
        mm = Matchmaker()
        mm.advertise("m1", machine("m1", memory=16))
        assert mm.match(request("raman", memory=512)) is None

    def test_matches_all_sorted(self):
        mm = Matchmaker()
        mm.advertise("m1", machine("m1", memory=64))
        mm.advertise("m2", machine("m2", memory=128))
        customer = request("raman")
        customer.set_expr("Rank", "other.Memory")
        matches = mm.matches(customer)
        assert [m.provider.evaluate("Name") for m in matches] == ["m2", "m1"]


class TestNegotiationCycle:
    def test_each_provider_matched_at_most_once(self):
        providers = [machine("m1")]
        requests = {"alice": [request("alice"), request("alice")]}
        assignments = negotiation_cycle(requests, providers)
        assert len(assignments) == 1

    def test_all_requests_served_when_capacity_allows(self):
        providers = [machine(f"m{i}") for i in range(4)]
        requests = {"alice": [request("alice") for _ in range(3)]}
        assert len(negotiation_cycle(requests, providers)) == 3

    def test_best_rank_wins(self):
        providers = [machine("slow", KFlops=1000), machine("fast", KFlops=9000)]
        req = request("alice")
        req.set_expr("Rank", "other.KFlops")
        [assignment] = negotiation_cycle({"alice": [req]}, providers)
        assert assignment.provider.evaluate("Name") == "fast"

    def test_fair_share_order(self):
        # One machine, two submitters; the light user gets it.
        acc = Accountant(half_life=100)
        acc.resource_claimed("heavy")
        acc.resource_claimed("heavy")
        acc.record("light")
        acc.advance_to(300)
        providers = [machine("m1")]
        requests = {"heavy": [request("heavy")], "light": [request("light")]}
        [assignment] = negotiation_cycle(requests, providers, accountant=acc)
        assert assignment.submitter == "light"

    def test_without_accountant_order_is_alphabetical(self):
        providers = [machine("m1")]
        requests = {"zoe": [request("zoe")], "amy": [request("amy")]}
        [assignment] = negotiation_cycle(requests, providers)
        assert assignment.submitter == "amy"

    def test_machine_constraint_respected(self):
        fussy = machine("fussy")
        fussy.set_expr("Constraint", 'other.Owner == "miron"')
        requests = {"raman": [request("raman")], "miron": [request("miron")]}
        assignments = negotiation_cycle(requests, [fussy])
        assert len(assignments) == 1
        assert assignments[0].submitter == "miron"

    def test_stats_collected(self):
        stats = CycleStats()
        providers = [machine("m1"), machine("m2", memory=8)]
        negotiation_cycle({"a": [request("a")]}, providers, stats=stats)
        assert stats.requests_considered == 1
        assert stats.matched == 1


class TestPreemption:
    def claimed_machine(self, name, current_rank, owner="bob"):
        ad = machine(name, state="Claimed")
        ad["CurrentRank"] = current_rank
        ad["RemoteOwner"] = owner
        ad.set_expr("Rank", 'member(other.Owner, { "raman", "miron" }) * 10')
        return ad

    def test_higher_rank_customer_preempts(self):
        provider = self.claimed_machine("m1", current_rank=0)
        [assignment] = negotiation_cycle({"raman": [request("raman")]}, [provider])
        assert assignment.preempts == "bob"

    def test_equal_rank_does_not_preempt(self):
        provider = self.claimed_machine("m1", current_rank=10)
        assignments = negotiation_cycle({"raman": [request("raman")]}, [provider])
        assert assignments == []

    def test_lower_rank_does_not_preempt(self):
        provider = self.claimed_machine("m1", current_rank=5)
        assignments = negotiation_cycle({"stranger": [request("stranger")]}, [provider])
        assert assignments == []

    def test_preemption_disabled(self):
        provider = self.claimed_machine("m1", current_rank=0)
        assignments = negotiation_cycle(
            {"raman": [request("raman")]}, [provider], allow_preemption=False
        )
        assert assignments == []

    def test_unclaimed_machine_preferred_over_preemption(self):
        claimed = self.claimed_machine("claimed", current_rank=0)
        idle = machine("idle")
        idle.set_expr("Rank", 'member(other.Owner, { "raman", "miron" }) * 10')
        [assignment] = negotiation_cycle(
            {"raman": [request("raman")]}, [claimed, idle]
        )
        # Equal ranks: input-order tie-break must not matter here because
        # both rank the job 10; the claimed one requires strict preference
        # but both pass. Input order gives the claimed machine — unless we
        # prefer idle. The paper does not mandate a preference, so we only
        # assert a single match happened.
        assert assignment.preempts in (None, "bob")

    def test_stats_count_preemptions(self):
        stats = CycleStats()
        provider = self.claimed_machine("m1", current_rank=0)
        negotiation_cycle({"raman": [request("raman")]}, [provider], stats=stats)
        assert stats.preemptions == 1


class TestNegotiateWithIndex:
    def test_index_gives_same_assignments(self):
        providers = [machine(f"m{i}", memory=16 * (i + 1)) for i in range(8)]
        requests = {
            "alice": [request("alice", memory=64)],
            "bob": [request("bob", memory=16)],
        }
        plain = negotiation_cycle(requests, providers)
        stats = CycleStats()
        indexed = negotiation_cycle(
            requests, providers, index=ProviderIndex(providers), stats=stats
        )
        assert [(a.submitter, a.provider.evaluate("Name")) for a in plain] == [
            (a.submitter, a.provider.evaluate("Name")) for a in indexed
        ]
        assert stats.constraint_evaluations_saved > 0

    def test_matchmaker_negotiate_wrapper(self):
        mm = Matchmaker()
        for i in range(3):
            mm.advertise(f"m{i}", machine(f"m{i}"))
        mm.advertise("q", ClassAd({"Type": "Query"}))  # non-machine ignored
        assignments = mm.negotiate({"alice": [request("alice")]}, use_index=True)
        assert len(assignments) == 1
