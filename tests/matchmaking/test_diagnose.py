"""Unit tests for constraint diagnostics (S22)."""

import pytest

from repro.classads import ClassAd
from repro.matchmaking import diagnose, is_unsatisfiable, pool_attribute_census


def machine(name, arch="INTEL", opsys="SOLARIS251", memory=64, constraint="true"):
    ad = ClassAd(
        {
            "Type": "Machine",
            "Name": name,
            "Arch": arch,
            "OpSys": opsys,
            "Memory": memory,
        }
    )
    ad.set_expr("Constraint", constraint)
    return ad


def pool():
    return (
        [machine(f"i{k}", arch="INTEL", memory=64) for k in range(6)]
        + [machine(f"s{k}", arch="SPARC", memory=128) for k in range(3)]
        + [machine("old0", arch="INTEL", memory=16)]
    )


def job(constraint, owner="raman", job_id=7, **attrs):
    ad = ClassAd({"Type": "Job", "Owner": owner, "JobId": job_id, **attrs})
    ad.set_expr("Constraint", constraint)
    return ad


class TestClauseAnalysis:
    def test_per_clause_counts(self):
        request = job(
            'other.Type == "Machine" && other.Arch == "INTEL" && other.Memory >= 64'
        )
        report = diagnose(request, pool())
        counts = {c.expression: c.satisfied for c in report.clauses}
        assert counts['other.Type == "Machine"'] == 10
        assert counts['other.Arch == "INTEL"'] == 7
        assert counts["other.Memory >= 64"] == 9

    def test_full_constraint_matches(self):
        request = job('other.Arch == "INTEL" && other.Memory >= 64')
        report = diagnose(request, pool())
        assert report.full_constraint_matches == 6
        assert report.bilateral_matches == 6
        assert not report.never_matches

    def test_unsatisfiable_clause_identified(self):
        request = job('other.Arch == "ALPHA" && other.Memory >= 32')
        report = diagnose(request, pool())
        bad = report.unsatisfiable_clauses
        assert len(bad) == 1
        assert 'other.Arch == "ALPHA"' in bad[0].expression
        assert report.never_matches

    def test_suggestion_lists_pool_values(self):
        request = job('other.Arch == "ALPHA"')
        report = diagnose(request, pool())
        suggestion = report.unsatisfiable_clauses[0].suggestion
        assert suggestion is not None
        assert "INTEL" in suggestion and "SPARC" in suggestion

    def test_undefined_reference_counts_as_unsatisfied(self):
        request = job("other.GPUs >= 1")
        report = diagnose(request, pool())
        assert report.clauses[0].satisfied == 0
        assert "<undefined>" in (report.clauses[0].suggestion or "")


class TestProviderSideRejections:
    def test_policy_rejections_counted_separately(self):
        fussy_pool = [
            machine("m0", constraint='other.Owner == "miron"'),
            machine("m1", constraint="true"),
        ]
        request = job('other.Type == "Machine"', owner="raman")
        report = diagnose(request, fussy_pool)
        assert report.full_constraint_matches == 2
        assert report.rejected_by_provider_policy == 1
        assert report.bilateral_matches == 1

    def test_everyone_rejects_the_requester(self):
        hostile = [machine("m0", constraint="false")]
        request = job('other.Type == "Machine"')
        report = diagnose(request, hostile)
        assert report.never_matches
        assert report.unsatisfiable_clauses == []  # the *clauses* are fine
        assert report.rejected_by_provider_policy == 1

    def test_reverse_rejections_name_the_failing_conjunct(self):
        fussy_pool = [
            machine("m0", constraint='other.Type == "Job" && other.Owner == "miron"'),
            machine("m1", constraint='other.Type == "Job" && other.Owner == "miron"'),
            machine("m2", constraint="true"),
        ]
        request = job('other.Type == "Machine"', owner="raman")
        report = diagnose(request, fussy_pool)
        assert len(report.provider_rejections) == 1
        reverse = report.provider_rejections[0]
        assert reverse.expression == 'other.Owner == "miron"'
        assert reverse.value == "false"
        assert reverse.count == 2
        assert set(reverse.examples) == {"m0", "m1"}

    def test_reverse_rejections_surface_undefined(self):
        fussy_pool = [machine("m0", constraint="other.CpuSecondsPaid >= 100")]
        request = job('other.Type == "Machine"')
        report = diagnose(request, fussy_pool)
        assert len(report.provider_rejections) == 1
        assert report.provider_rejections[0].value == "undefined"

    def test_render_shows_provider_side_section(self):
        fussy_pool = [
            machine("m0", constraint='other.Owner == "miron"'),
            machine("m1", constraint="true"),
        ]
        text = diagnose(job('other.Type == "Machine"'), fussy_pool).render()
        assert "provider-side rejections" in text
        assert 'other.Owner == "miron"' in text


class TestUnsatisfiableDetector:
    def test_satisfiable(self):
        assert not is_unsatisfiable(job('other.Arch == "INTEL"'), pool())

    def test_unsatisfiable(self):
        assert is_unsatisfiable(job("other.Memory >= 1024"), pool())

    def test_empty_pool(self):
        assert is_unsatisfiable(job("true"), [])

    def test_unconstrained_request_on_accepting_pool(self):
        request = ClassAd({"Type": "Job", "Owner": "x"})
        assert not is_unsatisfiable(request, pool())


class TestRendering:
    def test_render_mentions_everything(self):
        request = job('other.Arch == "ALPHA" && other.Memory >= 32')
        text = diagnose(request, pool()).render()
        assert "job 7 of raman" in text
        assert "UNSATISFIABLE" in text
        assert "bilateral matches                  : 0" in text

    def test_render_without_problems(self):
        text = diagnose(job('other.Arch == "INTEL"'), pool()).render()
        assert "UNSATISFIABLE" not in text


class TestPoolCensus:
    def test_census(self):
        census = pool_attribute_census(pool(), ["Arch", "Memory", "GPUs"])
        assert census["Arch"]["INTEL"] == 7
        assert census["Arch"]["SPARC"] == 3
        assert census["Memory"][64] == 6
        assert census["GPUs"]["<undefined>"] == 10
