"""Differential tests for the parallel scoring tier (PR 7).

The contract under test: a cycle that fans candidate scoring out to
worker processes is *bit-for-bit identical* to the serial engine —
same assignments, same preemptions, same fair-share outcomes, same
``repro-events/1`` forensic stream — because workers only evaluate
pure (class, provider) pairings and the parent commits serially in
the same order.  Also under test: the kill-switch, the pair-count
threshold fallback, dead-pool degradation, and determinism of two
same-seed chaos recordings with workers enabled.
"""

import json

import pytest
from hypothesis import given, settings

from repro.cli import main
from repro.matchmaking import Accountant, ProviderIndex
from repro.matchmaking import parallel as par
from repro.obs import event_log

from tests.matchmaking.test_batch_equivalence import (
    assignment_key,
    build,
    machine,
    machines_strategy,
    request,
    requests_strategy,
    run_cycle,
)

#: ``cycle.end`` fields legitimately differing between serial/parallel
#: runs (wall clock, batching yield, worker bookkeeping).
VARIABLE_FIELDS = {
    "cycle", "batched", "duration_s", "evals_saved", "request_classes",
    "pairings_saved", "workers", "chunks",
}


@pytest.fixture(autouse=True)
def _worker_pool():
    """Force a 2-worker pool with no fallback threshold, restore after."""
    prev_workers = par.scoring_workers()
    prev_threshold = par.pair_threshold()
    prev_enabled = par.parallelism_enabled()
    par.set_parallelism(True)
    par.set_scoring_workers(2)
    par.set_pair_threshold(0)
    yield
    par.set_scoring_workers(prev_workers)
    par.set_pair_threshold(prev_threshold)
    par.set_parallelism(prev_enabled)
    par.shutdown_scoring_pool()


def run_pair(providers, grouped, use_index=False, accountant=None,
             allow_preemption=True):
    """(serial assignments, parallel assignments) for one scenario."""
    serial, _ = run_cycle(
        providers, grouped, batch=True, use_index=use_index,
        accountant=accountant() if callable(accountant) else None,
        allow_preemption=allow_preemption,
    )
    # run_cycle drives negotiation_cycle with the module switches in
    # effect; the fixture guarantees workers are on for this call.
    parallel, _ = run_cycle(
        providers, grouped, batch=True, use_index=use_index,
        accountant=accountant() if callable(accountant) else None,
        allow_preemption=allow_preemption,
    )
    return serial, parallel


def scenario():
    """A handcrafted pool covering every disposition: matches, taken,
    unavailable, preemption (allowed/disabled/rank-blocked), constraint
    rejection, unmatched jobs."""
    providers = [
        machine("m1", memory=128),
        machine("m2", memory=64, state="Claimed", current_rank=5.0,
                remote_owner="alice", rank='other.Owner == "bob" ? 10 : 0'),
        machine("m3", memory=256, state="Claimed", current_rank=100.0,
                remote_owner="bob"),
        machine("m4", memory=32),
        machine("m5", memory=512, state="Owner"),
        machine("picky", memory=96, constraint='other.Owner == "vip"'),
    ]
    grouped = {
        "alice": [request("alice", 1), request("alice", 2),
                  request("alice", 3, memory=48)],
        "bob": [request("bob", 4), request("bob", 5, memory=200)],
        "vip": [request("vip", 6, memory=48), request("vip", 7, memory=48)],
    }
    return providers, grouped


def fair_share_accountant(owners=("alice", "bob", "vip")):
    acc = Accountant(half_life=100.0)
    for i, owner in enumerate(owners):
        acc.record(owner)
        for _ in range(i * 2):
            acc.resource_claimed(owner)
    acc.advance_to(50.0)
    return acc


class TestParallelEqualsSerial:
    def test_handcrafted_scenario_all_dispositions(self):
        providers, grouped = scenario()
        for use_index in (False, True):
            serial, _ = run_cycle(providers, grouped, batch=True,
                                  use_index=use_index)
            par.set_parallelism(False)
            try:
                off, _ = run_cycle(providers, grouped, batch=True,
                                   use_index=use_index)
            finally:
                par.set_parallelism(True)
            assert assignment_key(serial) == assignment_key(off)

    def test_preemption_disabled_matches(self):
        providers, grouped = scenario()
        with_workers, _ = run_cycle(providers, grouped, batch=True,
                                    use_index=False, allow_preemption=False)
        par.set_parallelism(False)
        try:
            serial, _ = run_cycle(providers, grouped, batch=True,
                                  use_index=False, allow_preemption=False)
        finally:
            par.set_parallelism(True)
        assert assignment_key(with_workers) == assignment_key(serial)

    def test_fair_share_outcomes_match(self):
        providers, grouped = scenario()
        with_workers, _ = run_cycle(
            providers, grouped, batch=True, use_index=False,
            accountant=fair_share_accountant(),
        )
        par.set_parallelism(False)
        try:
            serial, _ = run_cycle(
                providers, grouped, batch=True, use_index=False,
                accountant=fair_share_accountant(),
            )
        finally:
            par.set_parallelism(True)
        assert assignment_key(with_workers) == assignment_key(serial)

    def test_scoring_actually_engaged_workers(self):
        providers, grouped = scenario()
        from repro.matchmaking import CycleStats, negotiation_cycle
        stats = CycleStats()
        negotiation_cycle(grouped, providers, stats=stats, batch=True)
        assert stats.parallel_pairs_scored > 0
        assert stats.parallel_chunks > 0

    @given(machines_strategy, requests_strategy)
    @settings(max_examples=25, deadline=None)
    def test_hypothesis_pools_match(self, machine_params, request_params):
        providers, grouped = build(machine_params, request_params)
        with_workers, _ = run_cycle(providers, grouped, batch=True,
                                    use_index=False)
        par.set_parallelism(False)
        try:
            serial, _ = run_cycle(providers, grouped, batch=True,
                                  use_index=False)
        finally:
            par.set_parallelism(True)
        assert assignment_key(with_workers) == assignment_key(serial)

    @given(machines_strategy, requests_strategy)
    @settings(max_examples=15, deadline=None)
    def test_hypothesis_pools_match_indexed(self, machine_params, request_params):
        providers, grouped = build(machine_params, request_params)
        with_workers, _ = run_cycle(providers, grouped, batch=True,
                                    use_index=True)
        par.set_parallelism(False)
        try:
            serial, _ = run_cycle(providers, grouped, batch=True,
                                  use_index=True)
        finally:
            par.set_parallelism(True)
        assert assignment_key(with_workers) == assignment_key(serial)


class TestEventStreamParity:
    def _events_of(self, providers, grouped, parallel, use_index=False):
        event_log.reset()
        event_log.enable()
        try:
            par.set_parallelism(parallel)
            run_cycle(providers, grouped, batch=True, use_index=use_index,
                      accountant=fair_share_accountant())
            return [
                (
                    e.kind,
                    tuple(sorted(
                        (k, v) for k, v in e.fields.items()
                        if k not in VARIABLE_FIELDS
                    )),
                )
                for e in event_log.events()
            ]
        finally:
            par.set_parallelism(True)
            event_log.disable()
            event_log.reset()

    def test_streams_identical(self):
        providers, grouped = scenario()
        for use_index in (False, True):
            serial = self._events_of(providers, grouped, False, use_index)
            parallel = self._events_of(providers, grouped, True, use_index)
            assert serial == parallel
            kinds = {kind for kind, _ in serial}
            # the scenario must actually exercise the interesting paths
            assert {"match.made", "match.reject", "cycle.end"} <= kinds

    def test_cycle_end_reports_worker_engagement(self):
        providers, grouped = scenario()
        event_log.reset()
        event_log.enable()
        try:
            run_cycle(providers, grouped, batch=True, use_index=False)
            (end,) = [e for e in event_log.events() if e.kind == "cycle.end"]
        finally:
            event_log.disable()
            event_log.reset()
        assert end.fields["workers"] == 2
        assert end.fields["chunks"] > 0


class TestKillSwitchAndFallback:
    def test_kill_switch_routes_serial(self):
        providers, grouped = scenario()
        par.set_parallelism(False)
        try:
            from repro.matchmaking import CycleStats, negotiation_cycle
            stats = CycleStats()
            negotiation_cycle(grouped, providers, stats=stats, batch=True)
            assert stats.parallel_pairs_scored == 0
            assert stats.parallel_chunks == 0
        finally:
            par.set_parallelism(True)

    def test_per_cycle_parallel_override_beats_module_switch(self):
        providers, grouped = scenario()
        from repro.matchmaking import CycleStats, negotiation_cycle
        par.set_parallelism(False)
        try:
            stats = CycleStats()
            negotiation_cycle(grouped, providers, stats=stats, batch=True,
                              parallel=True)
            assert stats.parallel_pairs_scored > 0
        finally:
            par.set_parallelism(True)
        stats = CycleStats()
        negotiation_cycle(grouped, providers, stats=stats, batch=True,
                          parallel=False)
        assert stats.parallel_pairs_scored == 0

    def test_threshold_fallback_scores_serially(self):
        providers, grouped = scenario()
        par.set_pair_threshold(10_000)  # pools far below this bar
        try:
            from repro.matchmaking import CycleStats, negotiation_cycle
            stats = CycleStats()
            assignments = negotiation_cycle(grouped, providers, stats=stats,
                                            batch=True)
            assert stats.parallel_pairs_scored == 0
            assert stats.parallel_fallbacks > 0
        finally:
            par.set_pair_threshold(0)
        par.set_parallelism(False)
        try:
            serial, _ = run_cycle(providers, grouped, batch=True,
                                  use_index=False)
        finally:
            par.set_parallelism(True)
        assert assignment_key(assignments) == assignment_key(serial)

    def test_dead_pool_degrades_to_serial(self):
        providers, grouped = scenario()
        pool = par.scoring_pool()
        assert pool is not None and pool.ping()
        pool.close()  # simulate a crashed pool mid-flight
        pool.alive = False
        from repro.matchmaking import CycleStats, negotiation_cycle
        # scoring_pool() respawns on next request; force the dead handle
        scoring = par.CycleScoring(pool, providers, threshold=0)
        rep = request("alice", 99)
        assert scoring.score_class(rep, providers) is None
        assert scoring.fallbacks == 1
        # ...and a full cycle still completes correctly via respawn
        stats = CycleStats()
        assignments = negotiation_cycle(grouped, providers, stats=stats,
                                        batch=True)
        par.set_parallelism(False)
        try:
            serial, _ = run_cycle(providers, grouped, batch=True,
                                  use_index=False)
        finally:
            par.set_parallelism(True)
        assert assignment_key(assignments) == assignment_key(serial)

    def test_worker_misalignment_marks_pool_dead(self):
        providers, _ = scenario()
        pool = par.scoring_pool()
        assert pool is not None
        scoring = par.CycleScoring(pool, providers, threshold=0)
        rep = request("alice", 99)
        # candidates not drawn from the cycle's provider list violate
        # the caller contract -> KeyError -> serial fallback, dead pool
        foreign = [machine("foreign", memory=64)]
        assert scoring.score_class(rep, foreign) is None
        assert scoring.fallbacks == 1
        assert not pool.alive

    def test_zero_workers_disables_scoring(self):
        par.set_scoring_workers(0)
        assert par.scoring_pool() is None
        assert par.cycle_scoring([machine("m", memory=64)]) is None


class TestPoolLifecycle:
    def test_pool_persists_across_cycles(self):
        providers, grouped = scenario()
        run_cycle(providers, grouped, batch=True, use_index=False)
        first = par.scoring_pool()
        run_cycle(providers, grouped, batch=True, use_index=False)
        assert par.scoring_pool() is first

    def test_pool_respawns_on_worker_count_change(self):
        providers, grouped = scenario()
        run_cycle(providers, grouped, batch=True, use_index=False)
        first = par.scoring_pool()
        par.set_scoring_workers(3)
        second = par.scoring_pool()
        assert second is not first
        assert second.workers == 3
        with_3, _ = run_cycle(providers, grouped, batch=True, use_index=False)
        par.set_parallelism(False)
        try:
            serial, _ = run_cycle(providers, grouped, batch=True,
                                  use_index=False)
        finally:
            par.set_parallelism(True)
        assert assignment_key(with_3) == assignment_key(serial)

    def test_mutated_ad_reserializes(self):
        # the wire memo must notice in-place mutation (expression
        # rebinding), not serve the stale encoding
        providers, grouped = scenario()
        run_cycle(providers, grouped, batch=True, use_index=False)
        providers[0]["Memory"] = 1  # alice's 128MB machine vanishes
        with_workers, _ = run_cycle(providers, grouped, batch=True,
                                    use_index=False)
        par.set_parallelism(False)
        try:
            serial, _ = run_cycle(providers, grouped, batch=True,
                                  use_index=False)
        finally:
            par.set_parallelism(True)
        assert assignment_key(with_workers) == assignment_key(serial)


@pytest.mark.slow
class TestChaosDeterminism:
    """Acceptance: two same-seed chaos recordings with workers enabled
    are bitwise identical (modulo the wall-clock duration_s field), and
    identical to a serial recording of the same seed."""

    def _record(self, tmp_path, name):
        out = str(tmp_path / f"{name}.jsonl")
        code = main(
            ["chaos", "cm-crash", "--machines", "6", "--jobs", "8",
             "--horizon", "1800", "--out", out]
        )
        assert code == 0
        return out

    @staticmethod
    def _normalized(path):
        # evals_saved is a serial-path memo statistic the workers have
        # no reason to accrue; like duration_s/workers/chunks on
        # cycle.end and the parallel_* totals on run.stats it is engine
        # bookkeeping, not a matching outcome.
        records = []
        with open(path) as handle:
            for line in handle:
                record = json.loads(line)
                fields = record.get("fields", {})
                for key in ("duration_s", "workers", "chunks", "evals_saved"):
                    fields.pop(key, None)
                for key in [k for k in fields if k.startswith("parallel_")]:
                    fields.pop(key)
                records.append(record)
        return records

    def test_same_seed_recordings_bitwise_identical(self, tmp_path):
        first = self._record(tmp_path, "one")
        second = self._record(tmp_path, "two")
        with open(first) as a, open(second) as b:
            lines_a, lines_b = a.readlines(), b.readlines()
        assert len(lines_a) == len(lines_b)
        for la, lb in zip(lines_a, lines_b):
            ra, rb = json.loads(la), json.loads(lb)
            ra.get("fields", {}).pop("duration_s", None)
            rb.get("fields", {}).pop("duration_s", None)
            assert ra == rb

    def test_parallel_recording_matches_serial(self, tmp_path):
        with_workers = self._record(tmp_path, "parallel")
        par.set_parallelism(False)
        try:
            serial = self._record(tmp_path, "serial")
        finally:
            par.set_parallelism(True)
        assert self._normalized(with_workers) == self._normalized(serial)


class TestIndexedSubsetMapping:
    def test_index_pruned_pools_map_to_global_ids(self):
        # many providers, sharply-pruning index -> the subset path
        providers = [
            machine(f"m{i}", arch="INTEL" if i % 2 else "SPARC",
                    memory=32 * (1 + i % 4))
            for i in range(30)
        ]
        grouped = {"alice": [request("alice", i, arch="INTEL") for i in range(5)]}
        index = ProviderIndex(providers)
        from repro.matchmaking import negotiation_cycle
        with_workers = negotiation_cycle(grouped, providers, index=index,
                                         batch=True)
        serial = negotiation_cycle(grouped, providers,
                                   index=ProviderIndex(providers),
                                   batch=True, parallel=False)
        assert assignment_key(with_workers) == assignment_key(serial)
